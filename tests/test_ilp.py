"""Tests for the ILP modelling layer and branch-and-bound solver."""

from __future__ import annotations

import pytest

from repro.ilp import BranchAndBoundSolver, IlpProblem, SolveStatus


class TestIlpProblemModelling:
    def test_add_variables_and_constraints(self):
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0, upper=10)
        problem.add_binary("y")
        problem.set_objective({"x": 1.0, "y": 5.0})
        problem.add_constraint({"x": 1.0, "y": 2.0}, "<=", 8.0)
        assert set(problem.variable_names) == {"x", "y"}
        assert problem.integer_variables == ["y"]
        assert not problem.is_pure_lp()

    def test_duplicate_variable_rejected(self):
        problem = IlpProblem()
        problem.add_variable("x")
        with pytest.raises(ValueError):
            problem.add_variable("x")

    def test_unknown_variable_in_objective(self):
        problem = IlpProblem()
        problem.add_variable("x")
        with pytest.raises(KeyError):
            problem.set_objective({"z": 1.0})

    def test_unknown_variable_in_constraint(self):
        problem = IlpProblem()
        problem.add_variable("x")
        with pytest.raises(KeyError):
            problem.add_constraint({"z": 1.0}, "<=", 1.0)

    def test_invalid_sense(self):
        problem = IlpProblem()
        problem.add_variable("x")
        with pytest.raises(ValueError):
            problem.add_constraint({"x": 1.0}, "<", 1.0)

    def test_invalid_bounds(self):
        problem = IlpProblem()
        with pytest.raises(ValueError):
            problem.add_variable("x", lower=5.0, upper=1.0)


class TestLpSolve:
    def test_simple_lp_maximization(self):
        # max 3x + 2y st x + y <= 4, x <= 2  ->  x=2, y=2, obj=10.
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0)
        problem.add_variable("y", lower=0)
        problem.set_objective({"x": 3.0, "y": 2.0})
        problem.add_constraint({"x": 1.0, "y": 1.0}, "<=", 4.0)
        problem.add_constraint({"x": 1.0}, "<=", 2.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(10.0)
        assert solution.value("x") == pytest.approx(2.0)
        assert solution.value("y") == pytest.approx(2.0)

    def test_minimization(self):
        # min x + y st x + y >= 3 -> obj = 3.
        problem = IlpProblem(maximize=False)
        problem.add_variable("x", lower=0)
        problem.add_variable("y", lower=0)
        problem.set_objective({"x": 1.0, "y": 1.0})
        problem.add_constraint({"x": 1.0, "y": 1.0}, ">=", 3.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(3.0)

    def test_equality_constraint(self):
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0, upper=10)
        problem.set_objective({"x": 1.0})
        problem.add_constraint({"x": 1.0}, "==", 4.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.value("x") == pytest.approx(4.0)

    def test_infeasible_lp(self):
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0, upper=1)
        problem.set_objective({"x": 1.0})
        problem.add_constraint({"x": 1.0}, ">=", 5.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_empty_problem(self):
        solution = BranchAndBoundSolver().solve(IlpProblem())
        assert solution.is_optimal
        assert solution.objective == 0.0


class TestBranchAndBound:
    def test_knapsack(self):
        # Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50.
        values = [60.0, 100.0, 120.0]
        weights = [10.0, 20.0, 30.0]
        problem = IlpProblem(maximize=True)
        for i in range(3):
            problem.add_binary(f"x{i}")
        problem.set_objective({f"x{i}": values[i] for i in range(3)})
        problem.add_constraint({f"x{i}": weights[i] for i in range(3)}, "<=", 50.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(220.0)
        assert solution.value("x0") == pytest.approx(0.0)
        assert solution.value("x1") == pytest.approx(1.0)
        assert solution.value("x2") == pytest.approx(1.0)

    def test_integrality_enforced(self):
        # LP relaxation would pick x = 2.5; integer optimum is 2.
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0, upper=10, integer=True)
        problem.set_objective({"x": 1.0})
        problem.add_constraint({"x": 2.0}, "<=", 5.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.value("x") == pytest.approx(2.0)

    def test_mixed_integer(self):
        # max 5b + y st y <= 3.5, b binary, y <= 10*b  -> b=1, y=3.5.
        problem = IlpProblem(maximize=True)
        problem.add_binary("b")
        problem.add_variable("y", lower=0)
        problem.set_objective({"b": 5.0, "y": 1.0})
        problem.add_constraint({"y": 1.0}, "<=", 3.5)
        problem.add_constraint({"y": 1.0, "b": -10.0}, "<=", 0.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.objective == pytest.approx(8.5)
        assert solution.value("b") == pytest.approx(1.0)

    def test_infeasible_integer_problem(self):
        problem = IlpProblem(maximize=True)
        problem.add_variable("x", lower=0, upper=1, integer=True)
        problem.set_objective({"x": 1.0})
        problem.add_constraint({"x": 2.0}, "==", 1.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_assignment_problem(self):
        # 3 workers x 3 tasks, each worker one task, maximize total score.
        scores = [[9, 2, 7], [6, 4, 3], [5, 8, 1]]
        problem = IlpProblem(maximize=True)
        for w in range(3):
            for t in range(3):
                problem.add_binary(f"x_{w}_{t}")
        problem.set_objective(
            {f"x_{w}_{t}": float(scores[w][t]) for w in range(3) for t in range(3)}
        )
        for w in range(3):
            problem.add_constraint({f"x_{w}_{t}": 1.0 for t in range(3)}, "==", 1.0)
        for t in range(3):
            problem.add_constraint({f"x_{w}_{t}": 1.0 for w in range(3)}, "==", 1.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.is_optimal
        # Optimal: w0->t2 (7), w1->t0 (6), w2->t1 (8).
        assert solution.objective == pytest.approx(21.0)
        assert solution.value("x_2_1") == pytest.approx(1.0)

    def test_nodes_explored_reported(self):
        problem = IlpProblem(maximize=True)
        for i in range(6):
            problem.add_binary(f"x{i}")
        problem.set_objective({f"x{i}": float(i + 1) for i in range(6)})
        problem.add_constraint({f"x{i}": 1.0 for i in range(6)}, "<=", 3.0)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.is_optimal
        assert solution.nodes_explored >= 1
