"""Tests for the elastic heterogeneous fleet and the closed-loop autoscaler.

Covers per-worker GPU specs (Fig. 5 speed scaling, native memory sizes),
the elastic worker lifecycle (provisioning delay + warm-up, drain-without-
drop, retirement), enrolled-and-healthy utilisation accounting, the
dispatch/requeue race fix, the heterogeneity-aware solver capacity model,
the autoscaler's hysteresis/debounce decisions, fleet/cost accounting in
RunSummary, and the end-to-end guarantee that an autoscaled fleet outgrows
the fixed pool's throughput ceiling under overload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import GpuCluster
from repro.cluster.requests import Request
from repro.cluster.worker import Worker, WorkerState
from repro.core.allocator import Allocator
from repro.core.autoscaler import Autoscaler
from repro.core.config import ArgusConfig
from repro.core.scheduler import PromptScheduler, WorkerSelector
from repro.core.solver import AllocationSolver
from repro.core.system import ArgusSystem
from repro.experiments.runner import ExperimentRunner
from repro.models.gpus import GPU_SPECS
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.simulation import messages
from repro.simulation.engine import SimulationEngine
from repro.workloads.traces import TraceLibrary


def make_request(prompt, request_id=0, arrival=0.0, strategy=Strategy.SM, rank=0):
    return Request(
        request_id=request_id,
        prompt=prompt,
        arrival_time_s=arrival,
        strategy=strategy,
        predicted_rank=rank,
        assigned_rank=rank,
    )


@pytest.fixture()
def engine():
    return SimulationEngine(seed=0)


@pytest.fixture()
def prompts():
    return PromptDataset.synthetic(count=40, seed=13).prompts


class TestHeterogeneousWorkers:
    def test_default_gpu_is_reference_and_neutral(self, engine, zoo):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        assert worker.gpu.name == "A100"
        assert worker.speed_factor == 1.0
        assert worker.level_latency_s() == worker.level.latency_s

    def test_slower_gpu_stretches_service_time(self, engine, zoo, prompts):
        completed = []
        level = zoo.exact_level(Strategy.SM)
        worker = Worker(
            0,
            engine,
            zoo,
            level=level,
            gpu="A10G",
            on_complete=completed.append,
            service_jitter=0.0,
        )
        worker.enqueue(make_request(prompts[0]))
        engine.run()
        expected = level.latency_s / GPU_SPECS["A10G"].relative_speed
        assert completed[0].service_time_s == pytest.approx(expected)

    def test_memory_defaults_to_gpu_native_size(self, engine, zoo):
        a10g = Worker(
            0, engine, zoo, level=zoo.exact_level(Strategy.SM), gpu="A10G",
            memory_capacity_gib=None,
        )
        v100 = Worker(
            1, engine, zoo, level=zoo.exact_level(Strategy.SM), gpu="V100",
            memory_capacity_gib=None,
        )
        assert a10g.memory.capacity_gib == pytest.approx(24.0)
        assert v100.memory.capacity_gib == pytest.approx(32.0)

    def test_peak_qpm_scales_with_gpu_speed(self, engine, zoo):
        level = zoo.fastest_level(Strategy.AC)
        fast = Worker(0, engine, zoo, level=level)
        slow = Worker(1, engine, zoo, level=level, gpu="V100")
        ratio = slow.peak_qpm(level) / fast.peak_qpm(level)
        assert ratio == pytest.approx(GPU_SPECS["V100"].relative_speed)

    def test_eq3_selector_prefers_faster_gpu_at_equal_queue(self, engine, zoo, prompts):
        level = zoo.exact_level(Strategy.SM)
        a100 = Worker(0, engine, zoo, level=level)
        v100 = Worker(1, engine, zoo, level=level, gpu="V100")
        for i in range(3):
            a100._queue.append(make_request(prompts[i], request_id=i))
            v100._queue.append(make_request(prompts[3 + i], request_id=3 + i))
        assert v100.estimated_backlog_s() > a100.estimated_backlog_s()
        assert WorkerSelector().select([v100, a100]) is a100

    def test_cluster_gpu_mix_construction(self, engine, zoo):
        cluster = GpuCluster(
            engine,
            zoo,
            num_workers=3,
            gpu_types=["A100", "A10G", "V100"],
            memory_capacity_gib=None,
        )
        assert [w.gpu.name for w in cluster.workers] == ["A100", "A10G", "V100"]
        assert cluster.total_speed_factor() == pytest.approx(1.0 + 0.42 + 0.38)
        assert cluster.fleet_log[0].by_gpu == {"A100": 1, "A10G": 1, "V100": 1}

    def test_gpu_mix_length_validated(self, engine, zoo):
        with pytest.raises(ValueError):
            GpuCluster(engine, zoo, num_workers=2, gpu_types=["A100"])

    def test_heterogeneous_ceiling_sums_per_worker(self, engine, zoo):
        homo = GpuCluster(engine, zoo, num_workers=2)
        hetero = GpuCluster(engine, zoo, num_workers=2, gpu_types=["A100", "V100"])
        full = homo.fleet_ceiling_qpm(Strategy.AC)
        mixed = hetero.fleet_ceiling_qpm(Strategy.AC)
        assert mixed == pytest.approx(full / 2.0 * (1.0 + 0.38))


class TestHeterogeneousSolver:
    def test_homogeneous_speeds_match_uniform_solve(self):
        solver = AllocationSolver()
        quality = np.array([1.0, 0.8, 0.6])
        peak = np.array([10.0, 20.0, 40.0])
        uniform = solver.solve(70.0, quality, peak, 4)
        unit_speeds = solver.solve(70.0, quality, peak, 4, speed_factors=[1.0] * 4)
        assert uniform == unit_speeds

    def test_slow_fleet_needs_more_approximation(self):
        solver = AllocationSolver()
        quality = np.array([1.0, 0.8, 0.6])
        peak = np.array([10.0, 20.0, 40.0])
        fast = solver.solve(60.0, quality, peak, 4, speed_factors=[1.0] * 4)
        slow = solver.solve(60.0, quality, peak, 4, speed_factors=[0.5] * 4)
        assert fast.feasible and slow.feasible
        assert slow.expected_quality < fast.expected_quality

    def test_capacity_uses_per_worker_speeds(self):
        solver = AllocationSolver()
        quality = np.array([1.0, 0.5])
        peak = np.array([10.0, 30.0])
        # Two workers at speeds 1.0 and 0.5: everything at the fast level
        # caps at 30 + 15 = 45 QPM, not 2 x 30.
        plan = solver.solve(50.0, quality, peak, 2, speed_factors=[1.0, 0.5])
        assert not plan.feasible
        assert plan.total_capacity_qpm == pytest.approx(45.0)

    def test_speed_factor_validation(self):
        solver = AllocationSolver()
        quality = np.array([1.0])
        peak = np.array([10.0])
        with pytest.raises(ValueError):
            solver.solve(5.0, quality, peak, 2, speed_factors=[1.0])
        with pytest.raises(ValueError):
            solver.solve(5.0, quality, peak, 2, speed_factors=[1.0, -1.0])


class TestElasticLifecycle:
    def test_provisioned_worker_enters_rotation_after_delay(self, engine, zoo, prompts):
        cluster = GpuCluster(engine, zoo, num_workers=1, initial_level=zoo.exact_level(Strategy.SM))
        worker = cluster.provision_worker(provision_delay_s=30.0)
        assert worker.is_provisioning
        assert len(cluster.healthy_workers) == 1
        assert cluster.provisioning_workers == [worker]
        engine.run(until=29.0)
        assert worker.is_provisioning
        # Ready after the delay plus the SD-XL warm-up load.
        engine.run(until=30.0 + 10.0)
        assert worker.is_active
        assert len(cluster.healthy_workers) == 2
        assert cluster.workers_added == 1
        assert worker.enrolled_at_s > 30.0

    def test_provisioned_worker_serves_after_ready(self, engine, zoo, prompts):
        completed = []
        cluster = GpuCluster(
            engine, zoo, num_workers=1,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        worker = cluster.provision_worker(provision_delay_s=5.0)
        engine.run(until=60.0)
        cluster.dispatch(make_request(prompts[0]), worker.worker_id)
        engine.run()
        assert len(completed) == 1
        assert completed[0].worker_id == worker.worker_id

    def test_drain_requeues_queue_and_finishes_batch(self, engine, zoo, prompts):
        completed, requeued = [], []
        cluster = GpuCluster(
            engine, zoo, num_workers=1,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            on_requeue=requeued.append,
        )
        for i in range(3):
            cluster.dispatch(make_request(prompts[i], request_id=i), 0)
        worker = cluster.workers[0]
        assert worker.in_service == 1 and worker.queue_length == 2
        orphans = cluster.drain_worker(0)
        # The two queued requests come back; the in-flight one finishes.
        assert sorted(r.request_id for r in orphans) == [1, 2]
        assert sorted(r.request_id for r in requeued) == [1, 2]
        assert not worker.is_active
        engine.run()
        assert [c.request.request_id for c in completed] == [0]
        assert worker.is_retired
        assert cluster.workers_retired == 1

    def test_drain_idle_worker_retires_immediately(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=2)
        cluster.drain_worker(1)
        assert cluster.workers[1].is_retired
        assert len(cluster.healthy_workers) == 1

    def test_dispatch_race_requeues_instead_of_raising(self, engine, zoo, prompts):
        requeued = []
        cluster = GpuCluster(
            engine, zoo, num_workers=2,
            initial_level=zoo.exact_level(Strategy.SM),
            on_requeue=requeued.append,
        )
        cluster.fail_worker(0)
        cluster.dispatch(make_request(prompts[0], request_id=7), 0)
        assert [r.request_id for r in requeued] == [7]
        cluster.drain_worker(1)
        cluster.dispatch(make_request(prompts[1], request_id=8), 1)
        assert [r.request_id for r in requeued] == [7, 8]

    def test_dispatch_without_requeue_hook_still_raises(self, engine, zoo, prompts):
        cluster = GpuCluster(engine, zoo, num_workers=1)
        cluster.drain_worker(0)
        with pytest.raises(RuntimeError):
            cluster.dispatch(make_request(prompts[0]), 0)

    def test_retired_worker_rejects_requests(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        worker.begin_drain()
        assert worker.is_retired
        with pytest.raises(RuntimeError):
            worker.enqueue(make_request(prompts[0]))

    def test_failure_during_provisioning_resumes_provisioning(self, engine, zoo):
        # Recovery before the provision timer elapses must not leak the
        # worker into rotation early; it enrolls at the normal ready time.
        cluster = GpuCluster(engine, zoo, num_workers=1)
        worker = cluster.provision_worker(provision_delay_s=90.0)
        cluster.schedule_failure(worker.worker_id, fail_at_s=30.0, recover_at_s=40.0)
        engine.run(until=50.0)
        assert worker.is_provisioning
        assert len(cluster.healthy_workers) == 1
        engine.run(until=150.0)
        assert worker.is_active
        assert worker.enrolled_at_s is not None and worker.enrolled_at_s > 90.0
        assert cluster.workers_added == 1

    def test_recovery_after_missed_ready_enrolls_then(self, engine, zoo):
        # The provision timer elapsed while the worker was failed: it joins
        # the rotation at recovery time, exactly once.
        cluster = GpuCluster(engine, zoo, num_workers=1)
        worker = cluster.provision_worker(provision_delay_s=20.0)
        cluster.schedule_failure(worker.worker_id, fail_at_s=10.0, recover_at_s=200.0)
        engine.run(until=100.0)
        assert worker.is_failed
        assert cluster.workers_added == 0
        engine.run(until=250.0)
        assert worker.is_active
        assert worker.enrolled_at_s == pytest.approx(200.0)
        assert cluster.workers_added == 1
        assert worker.utilization(250.0) == 0.0  # enrolled 50 s, served nothing

    def test_cancelling_provisioning_scale_out_is_not_a_scale_in(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=1)
        worker = cluster.provision_worker(provision_delay_s=60.0)
        cluster.drain_worker(worker.worker_id)
        assert worker.is_retired
        assert cluster.workers_retired == 0
        assert cluster.workers_added == 0
        engine.run()  # the stale ready event must not resurrect it
        assert worker.is_retired

    def test_double_drain_counts_once(self, engine, zoo, prompts):
        cluster = GpuCluster(
            engine, zoo, num_workers=2, initial_level=zoo.exact_level(Strategy.SM)
        )
        cluster.dispatch(make_request(prompts[0]), 1)
        cluster.drain_worker(1)
        cluster.drain_worker(1)  # still DRAINING: must not double-count
        assert cluster.workers_retired == 1
        engine.run()
        cluster.drain_worker(1)  # RETIRED: no-op
        assert cluster.workers_retired == 1


class TestUtilizationAccounting:
    def test_late_joiner_normalized_by_enrolled_time(self, engine, zoo, prompts):
        cluster = GpuCluster(engine, zoo, num_workers=1, initial_level=zoo.exact_level(Strategy.SM))
        worker = cluster.provision_worker(provision_delay_s=100.0)
        engine.run(until=300.0)
        assert worker.is_active
        start = worker.enrolled_at_s
        # Keep the late joiner busy for the rest of the run (~4.2 s/request).
        for i in range(100):
            worker.enqueue(make_request(prompts[i % len(prompts)], request_id=i))
        engine.run(until=600.0)
        busy = worker.stats.busy_time_s
        # Normalised by the enrolled window, not the full 600 s of wall time
        # the old accounting divided by.
        assert worker.utilization(600.0) == pytest.approx(
            min(1.0, busy / (600.0 - start)), abs=1e-9
        )
        assert worker.utilization(600.0) > busy / 600.0

    def test_double_fail_preserves_downtime_clock(self, engine, zoo):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        engine.schedule_at(100.0, lambda e: worker.fail())
        engine.schedule_at(500.0, lambda e: worker.fail())  # must not reset
        engine.schedule_at(600.0, lambda e: worker.recover())
        engine.run(until=700.0)
        assert worker.enrolled_healthy_s(700.0) == pytest.approx(200.0)

    def test_failed_downtime_excluded_from_denominator(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        engine.schedule_at(100.0, lambda e: worker.fail())
        engine.schedule_at(400.0, lambda e: worker.recover())
        engine.run(until=500.0)
        assert worker.enrolled_healthy_s(500.0) == pytest.approx(200.0)
        # Mid-failure queries subtract only the downtime so far.
        assert worker.enrolled_healthy_s(250.0) == pytest.approx(100.0)

    def test_cluster_utilization_ignores_failed_downtime(self, engine, zoo, prompts):
        completed = []
        cluster = GpuCluster(
            engine, zoo, num_workers=2,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        # Worker 1 fails forever at t=0; worker 0 serves continuously.
        cluster.fail_worker(1)
        for i in range(20):
            cluster.dispatch(make_request(prompts[i % len(prompts)], request_id=i), 0)
        engine.run(until=80.0)
        busy = cluster.workers[0].stats.busy_time_s
        # The failed worker contributes no healthy time, so the mean is the
        # serving worker's utilisation alone — not halved by downtime.
        assert cluster.utilization(80.0) == pytest.approx(min(1.0, busy / 80.0))
        assert cluster.utilization(80.0) > 0.5

    def test_healthy_fixed_fleet_matches_seed_formula(self, engine, zoo, prompts):
        cluster = GpuCluster(
            engine, zoo, num_workers=2, initial_level=zoo.exact_level(Strategy.SM)
        )
        for i in range(4):
            cluster.dispatch(make_request(prompts[i], request_id=i), i % 2)
        engine.run()
        elapsed = engine.now
        expected = sum(
            min(1.0, w.stats.busy_time_s / elapsed) for w in cluster.workers
        ) / len(cluster.workers)
        assert cluster.utilization(elapsed) == pytest.approx(expected)

    def test_billing_includes_provisioning_and_downtime(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=1)
        engine.run(until=50.0)
        worker = cluster.provision_worker(provision_delay_s=100.0)
        engine.run(until=350.0)
        cluster.drain_worker(worker.worker_id)
        engine.run(until=500.0)
        # Billed from allocation (t=50) to retirement (t=350).
        assert worker.billed_s(500.0) == pytest.approx(300.0)
        assert cluster.gpu_hours(500.0) == pytest.approx((500.0 + 300.0) / 3600.0)
        assert cluster.total_cost_usd(500.0) == pytest.approx(
            (500.0 + 300.0) / 3600.0 * GPU_SPECS["A100"].hourly_cost_usd
        )


class TestFailureBatchingInteraction:
    def test_mid_batch_failure_orphans_batch_members_exactly_once(
        self, engine, zoo, prompts
    ):
        completed, requeued = [], []
        cluster = GpuCluster(
            engine, zoo, num_workers=1,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            on_requeue=requeued.append,
            max_batch_size=3,
            batch_timeout_s=0.5,
        )
        for i in range(5):
            cluster.dispatch(make_request(prompts[i], request_id=i), 0)
        worker = cluster.workers[0]
        assert worker.in_service == 3 and worker.queue_length == 2
        cluster.schedule_failure(0, fail_at_s=1.0)
        engine.run()
        # All five requests orphaned exactly once: the 3 in-flight batch
        # members and the 2 queued ones; nothing completes, nothing repeats.
        assert sorted(r.request_id for r in requeued) == [0, 1, 2, 3, 4]
        assert completed == []

    def test_recovery_into_resized_fleet_does_not_double_complete(
        self, engine, zoo, prompts
    ):
        completed = []
        requeued = []
        cluster = GpuCluster(
            engine, zoo, num_workers=1,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            on_requeue=requeued.append,
            max_batch_size=2,
            batch_timeout_s=0.1,
        )

        pending = []

        # Re-dispatch orphans to whatever worker is active (buffering until
        # the resized fleet is ready), like the base serving system would.
        def redispatch(request):
            requeued.append(request)
            active = cluster.healthy_workers
            if active:
                active[0].enqueue(request)
            else:
                pending.append(request)

        def flush(worker):
            while pending:
                worker.enqueue(pending.pop(0))

        cluster._on_requeue = redispatch
        cluster.workers[0].on_requeue = redispatch

        for i in range(2):
            cluster.dispatch(make_request(prompts[i], request_id=i), 0)
        cluster.schedule_failure(0, fail_at_s=1.0, recover_at_s=20.0)
        # The fleet is resized while worker 0 is down; orphans land on the
        # new worker once it is ready.
        cluster.provision_worker(provision_delay_s=1.5, on_ready=flush)
        engine.run()
        served = [c.request.request_id for c in completed]
        # Each request completes exactly once (no stale batch completion
        # after the recovery into the bigger fleet).
        assert sorted(served) == [0, 1]
        assert cluster.workers[0].stats.requests_served == 0
        assert cluster.workers[1].stats.requests_served == 2


def make_allocator(engine, zoo, cluster, config):
    scheduler = PromptScheduler(
        cluster=cluster,
        num_levels=zoo.num_levels(Strategy.AC),
        rng=np.random.default_rng(0),
    )
    quality = {
        Strategy.AC: np.linspace(1.0, 0.7, zoo.num_levels(Strategy.AC)),
        Strategy.SM: np.linspace(1.0, 0.6, zoo.num_levels(Strategy.SM)),
    }
    return Allocator(
        config=config,
        zoo=zoo,
        cluster=cluster,
        scheduler=scheduler,
        quality_vectors=quality,
    )


class TestAutoscalerDecisions:
    def make_stack(self, engine, zoo, **config_overrides):
        defaults = dict(
            num_workers=2,
            autoscale_enabled=True,
            max_workers=6,
            provision_delay_s=10.0,
            autoscale_interval_s=10.0,
            scale_out_consecutive_ticks=2,
            scale_in_consecutive_ticks=2,
            scale_out_cooldown_s=0.0,
            scale_in_cooldown_s=0.0,
        )
        defaults.update(config_overrides)
        config = ArgusConfig(**defaults)
        cluster = GpuCluster(engine, zoo, num_workers=config.num_workers)
        allocator = make_allocator(engine, zoo, cluster, config)
        scaler = Autoscaler(
            config=config,
            zoo=zoo,
            cluster=cluster,
            allocator=allocator,
            active_strategy=lambda: Strategy.AC,
        )
        return config, cluster, allocator, scaler

    def saturate(self, zoo, cluster, allocator, qpm, now):
        """Put every worker at the fastest level and pump arrivals at qpm."""
        fastest = zoo.fastest_level(Strategy.AC)
        for worker in cluster.healthy_workers:
            worker.set_level(fastest)
        for i in range(int(qpm)):
            allocator.observe_arrival(max(0.0, now - 60.0) + 60.0 * i / qpm)

    def test_saturation_scales_out_after_debounce(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo)
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        self.saturate(zoo, cluster, allocator, ceiling * 1.5, now=60.0)
        scaler.tick(60.0)
        assert not cluster.provisioning_workers  # armed, not fired
        scaler.tick(70.0)
        assert cluster.provisioning_workers  # debounce satisfied
        assert scaler.num_scale_outs == 1
        assert scaler.events[0].action == "scale_out"

    def test_no_scale_out_when_quality_headroom_remains(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo)
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        # Load above the slowest level but under the fleet ceiling, with
        # workers still at rank 0: approximation, not scaling, should absorb
        # the pressure.
        for i in range(int(ceiling * 0.5)):
            allocator.observe_arrival(60.0 * i / (ceiling * 0.5))
        scaler.tick(60.0)
        scaler.tick(70.0)
        scaler.tick(80.0)
        assert not cluster.provisioning_workers
        assert scaler.events == []

    def test_max_workers_caps_scale_out(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(
            engine, zoo, max_workers=3, max_scale_step=4
        )
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        self.saturate(zoo, cluster, allocator, ceiling * 10, now=60.0)
        scaler.tick(60.0)
        scaler.tick(70.0)
        assert len(cluster.provisioning_workers) == 1  # 2 + 1 == max_workers
        self.saturate(zoo, cluster, allocator, ceiling * 10, now=80.0)
        scaler.tick(80.0)
        scaler.tick(90.0)
        assert len(cluster.workers) == 3

    def test_gpu_mix_cycles_on_scale_out(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(
            engine, zoo, gpu_mix=("A10G", "V100"), max_scale_step=2
        )
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        self.saturate(zoo, cluster, allocator, ceiling * 3, now=60.0)
        scaler.tick(60.0)
        scaler.tick(70.0)
        added = cluster.provisioning_workers
        assert [w.gpu.name for w in added] == ["A10G", "V100"]

    def test_scale_in_after_load_subsides(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo)
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        self.saturate(zoo, cluster, allocator, ceiling * 1.5, now=60.0)
        scaler.tick(60.0)
        scaler.tick(70.0)
        engine.run(until=120.0)  # provisioning completes
        added = [w for w in cluster.healthy_workers if w.enrolled_at_s > 0]
        assert added
        # Demand collapses: nothing arrives after t=60.
        scaler.tick(300.0)
        assert scaler.num_scale_ins == 0  # debounce
        scaler.tick(310.0)
        assert scaler.num_scale_ins == 1
        # LIFO: the autoscaler-added worker drains, the baseline stays.
        assert not added[-1].is_active
        assert all(cluster.workers[i].is_active for i in range(2))

    def test_scale_in_respects_min_workers(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo, min_workers=2)
        scaler.tick(100.0)
        scaler.tick(110.0)
        scaler.tick(120.0)
        assert cluster.fleet_size == 2
        assert scaler.events == []

    def test_hysteresis_band_holds_fleet_steady(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo)
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        # Demand between the scale-in and scale-out thresholds: no action.
        mid = 0.75 * ceiling
        for i in range(int(mid)):
            allocator.observe_arrival(60.0 * i / mid)
        fastest = zoo.fastest_level(Strategy.AC)
        for worker in cluster.healthy_workers:
            worker.set_level(fastest)
        for t in (60.0, 70.0, 80.0, 90.0, 100.0):
            scaler.tick(t)
        assert scaler.events == []
        assert cluster.fleet_size == 2


class TestBrokeredControl:
    """Brokered-mode (sharded) request/grant bookkeeping on the autoscaler."""

    def make_stack(self, engine, zoo, **config_overrides):
        defaults = dict(
            num_workers=2,
            autoscale_enabled=True,
            max_workers=6,
            provision_delay_s=10.0,
            autoscale_interval_s=10.0,
            scale_out_consecutive_ticks=2,
            scale_in_consecutive_ticks=2,
            # Long cooldowns: a denied ask must NOT have to wait these out.
            scale_out_cooldown_s=300.0,
            scale_in_cooldown_s=300.0,
        )
        defaults.update(config_overrides)
        config = ArgusConfig(**defaults)
        cluster = GpuCluster(engine, zoo, num_workers=config.num_workers)
        allocator = make_allocator(engine, zoo, cluster, config)
        scaler = Autoscaler(
            config=config,
            zoo=zoo,
            cluster=cluster,
            allocator=allocator,
            active_strategy=lambda: Strategy.AC,
            brokered=True,
        )
        return config, cluster, allocator, scaler

    def saturate(self, zoo, cluster, allocator, qpm, now):
        fastest = zoo.fastest_level(Strategy.AC)
        for worker in cluster.healthy_workers:
            worker.set_level(fastest)
        for i in range(int(qpm)):
            allocator.observe_arrival(max(0.0, now - 60.0) + 60.0 * i / qpm)

    def test_denied_scale_out_does_not_consume_cooldown(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo)
        ceiling = cluster.fleet_ceiling_qpm(Strategy.AC)
        self.saturate(zoo, cluster, allocator, ceiling * 1.5, now=60.0)
        scaler.tick(60.0)
        scaler.tick(70.0)
        first = scaler.take_requests()
        assert [r.action for r in first] == ["scale_out"]
        scaler.apply_outcomes(
            70.0,
            [messages.ScaleOutcome(seq=first[0].seq, action="scale_out", granted=0)],
        )
        assert scaler.denied_requests == 1
        assert scaler.events == []  # a denial is not a scaling action
        # Back-to-back: still overloaded on the very next tick.  The denial
        # restored the pre-emission cooldown stamp and streak, so the re-ask
        # fires immediately instead of after scale_out_cooldown_s.
        self.saturate(zoo, cluster, allocator, ceiling * 1.5, now=80.0)
        scaler.tick(80.0)
        second = scaler.take_requests()
        assert [r.action for r in second] == ["scale_out"]
        assert second[0].time_s == 80.0
        # ... and the eventual grant applies normally.
        scaler.apply_outcomes(
            80.0,
            [
                messages.ScaleOutcome(
                    seq=second[0].seq,
                    action="scale_out",
                    granted=second[0].count,
                    gpus=("A100",) * second[0].count,
                )
            ],
        )
        assert cluster.provisioning_workers
        assert scaler.num_scale_outs == 1

    def test_denied_scale_in_does_not_consume_cooldown(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo, min_workers=1)
        # No arrivals: demand is zero, the fleet is underloaded.
        scaler.tick(60.0)
        scaler.tick(70.0)
        first = scaler.take_requests()
        assert [r.action for r in first] == ["scale_in"]
        scaler.apply_outcomes(
            70.0,
            [messages.ScaleOutcome(seq=first[0].seq, action="scale_in", granted=0)],
        )
        assert scaler.denied_requests == 1
        scaler.tick(80.0)
        second = scaler.take_requests()
        assert [r.action for r in second] == ["scale_in"]
        assert second[0].time_s == 80.0  # next eligible tick, not 70 + 300s

    def test_skipped_scale_in_grant_is_counted_for_reconciliation(self, engine, zoo):
        config, cluster, allocator, scaler = self.make_stack(engine, zoo, min_workers=1)
        scaler.tick(60.0)
        scaler.tick(70.0)
        first = scaler.take_requests()
        assert [r.action for r in first] == ["scale_in"]
        # Every worker fails before the grant lands: the LIFO candidate
        # re-pick finds nobody to drain, so the grant must be skipped and
        # counted (the broker already decremented its ledger for it).
        cluster.schedule_failure(0, fail_at_s=75.0, recover_at_s=1000.0)
        cluster.schedule_failure(1, fail_at_s=75.0, recover_at_s=1000.0)
        engine.run(until=80.0)
        scaler.apply_outcomes(
            80.0,
            [messages.ScaleOutcome(seq=first[0].seq, action="scale_in", granted=1)],
        )
        assert scaler.events == []  # nothing drained
        assert scaler.take_unapplied_scale_ins() == 1
        assert scaler.take_unapplied_scale_ins() == 0  # take resets the counter


class TestConfigKnobs:
    def test_autoscale_validation(self):
        with pytest.raises(ValueError):
            ArgusConfig(min_workers=0)
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, min_workers=5)
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, max_workers=3)
        with pytest.raises(ValueError):
            ArgusConfig(provision_delay_s=-1.0)
        with pytest.raises(ValueError):
            ArgusConfig(scale_up_threshold=0.5, scale_down_threshold=0.6)
        with pytest.raises(KeyError):
            ArgusConfig(gpu_mix=("H100",))

    def test_effective_defaults(self):
        config = ArgusConfig(num_workers=8)
        assert config.effective_min_workers == 8
        assert config.effective_max_workers == 32
        assert config.effective_gpu_mix == ("A100",)
        assert not config.autoscale_enabled


class TestAutoscalingEndToEnd:
    @pytest.fixture(scope="class")
    def overload_results(self):
        """Argus on an overloaded 2-worker cluster, fixed vs autoscaled."""
        trace = TraceLibrary(seed=0).constant(duration_minutes=8, qpm=80.0)
        dataset = PromptDataset.synthetic(count=200, seed=21)
        results = {}
        for autoscale in (False, True):
            config = ArgusConfig(
                num_workers=2,
                classifier_training_prompts=150,
                profiling_prompts=80,
                classifier_epochs=5,
                autoscale_enabled=autoscale,
                max_workers=6,
                provision_delay_s=30.0,
                autoscale_interval_s=10.0,
                scale_out_cooldown_s=20.0,
            )
            system = ArgusSystem(config=config, training_dataset=dataset)
            runner = ExperimentRunner(seed=0, dataset_size=250, drain_s=60.0)
            results[autoscale] = (runner.run(system, trace), system)
        return results

    def test_autoscaling_beats_fixed_fleet_under_overload(self, overload_results):
        fixed = overload_results[False][0].summary
        scaled = overload_results[True][0].summary
        assert scaled.mean_served_qpm > fixed.mean_served_qpm
        assert scaled.fleet_peak_workers > fixed.fleet_peak_workers

    def test_fleet_metrics_recorded(self, overload_results):
        fixed = overload_results[False][0].summary
        scaled = overload_results[True][0].summary
        assert fixed.fleet_peak_workers == 2
        assert fixed.fleet_mean_workers == pytest.approx(2.0)
        assert fixed.workers_added == 0
        assert fixed.gpu_hours > 0 and fixed.cost_usd > 0
        assert scaled.workers_added > 0
        assert scaled.fleet_mean_workers > 2.0
        assert scaled.gpu_hours > fixed.gpu_hours
        assert scaled.cost_per_image_usd > 0

    def test_fleet_minute_series_attached(self, overload_results):
        result, _system = overload_results[True]
        series = result.fleet_size_series
        assert series[0] >= 2.0
        assert max(series) > 2.0

    def test_disabled_autoscaler_keeps_fleet_fixed(self, overload_results):
        result, system = overload_results[False]
        assert system.autoscaler is None
        assert all(
            abs(v - 2.0) < 1e-9
            for v in result.fleet_size_series[: result.minute_series[-1].minute]
            if v > 0
        )
        assert len(system.cluster.workers) == 2
