"""Integration tests: ArgusSystem and the baselines serving real workloads.

These run short (a few simulated minutes) end-to-end simulations, so they
exercise the full path: arrival -> classifier -> PASM -> worker selection ->
cache retrieval -> completion -> metrics.
"""

from __future__ import annotations

import pytest

from repro.baselines.clipper import ClipperSystem
from repro.baselines.nirvana import NirvanaSystem
from repro.baselines.pac import PacSystem
from repro.baselines.proteus import ProteusSystem
from repro.baselines.sommelier import SommelierSystem
from repro.cache.network import NetworkCondition
from repro.core.config import ArgusConfig
from repro.core.system import ArgusSystem
from repro.experiments.runner import ExperimentRunner, build_system
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.workloads.traces import TraceLibrary


def small_config(**overrides) -> ArgusConfig:
    defaults = dict(
        num_workers=4,
        classifier_training_prompts=300,
        profiling_prompts=150,
        classifier_epochs=8,
    )
    defaults.update(overrides)
    return ArgusConfig(**defaults)


@pytest.fixture(scope="module")
def training_dataset():
    return PromptDataset.synthetic(count=300, seed=77)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=0, dataset_size=400, drain_s=60.0)


@pytest.fixture(scope="module")
def light_trace():
    return TraceLibrary(seed=0).constant(duration_minutes=8, qpm=40.0)


@pytest.fixture(scope="module")
def heavy_trace():
    # ~75% of the 4-worker cluster's fastest-level capacity: high enough to
    # force approximation, low enough that the SLO is attainable.
    return TraceLibrary(seed=0).constant(duration_minutes=8, qpm=78.0)


class TestArgusSystem:
    def test_serves_light_load_at_full_quality(self, runner, light_trace, training_dataset):
        system = ArgusSystem(config=small_config(), training_dataset=training_dataset)
        result = runner.run(system, light_trace)
        assert result.summary.total_completions > 250
        assert result.summary.slo_violation_ratio < 0.02
        assert result.summary.mean_relative_quality > 0.95
        assert result.summary.dropped_requests == 0

    def test_adapts_under_heavy_load(self, runner, heavy_trace, training_dataset):
        # 78 QPM on 4 workers exceeds the K=0 capacity (~57 QPM), so Argus
        # must raise approximation levels to keep serving within the SLO.
        system = ArgusSystem(config=small_config(), training_dataset=training_dataset)
        result = runner.run(system, heavy_trace)
        assert result.summary.mean_served_qpm > 70.0
        assert result.summary.slo_violation_ratio < 0.15
        served_ranks = {s.completed.effective_rank for s in system.collector.samples}
        assert max(served_ranks) > 0

    def test_uses_approximate_caching_by_default(self, runner, heavy_trace, training_dataset):
        system = ArgusSystem(config=small_config(), training_dataset=training_dataset)
        result = runner.run(system, heavy_trace)
        assert system.active_strategy is Strategy.AC
        assert result.extras["cache_hit_rate"] > 0.5
        assert system.cluster.total_model_loads() == 0

    def test_quality_beats_prompt_agnostic_under_load(self, runner, heavy_trace, training_dataset):
        argus = ArgusSystem(config=small_config(), training_dataset=training_dataset)
        pac = PacSystem(config=small_config(), training_dataset=training_dataset)
        argus_result = runner.run(argus, heavy_trace)
        pac_result = runner.run(pac, heavy_trace)
        assert (
            argus_result.summary.mean_pickscore
            >= pac_result.summary.mean_pickscore - 0.05
        )

    def test_switches_to_sm_on_cache_outage(self, training_dataset):
        config = small_config(retrieval_violations_to_switch=5)
        system = ArgusSystem(config=config, training_dataset=training_dataset)
        system.network.schedule_condition(120.0, 100000.0, NetworkCondition.OUTAGE)
        trace = TraceLibrary(seed=0).constant(duration_minutes=10, qpm=60.0)
        runner = ExperimentRunner(seed=1, dataset_size=300, drain_s=60.0)
        runner.run(system, trace)
        assert system.num_strategy_switches() >= 1
        assert system.active_strategy is Strategy.SM

    def test_switches_back_when_network_recovers(self, training_dataset):
        config = small_config(retrieval_violations_to_switch=5, probe_interval_s=30.0)
        system = ArgusSystem(config=config, training_dataset=training_dataset)
        system.network.schedule_condition(100.0, 220.0, NetworkCondition.OUTAGE)
        trace = TraceLibrary(seed=0).constant(duration_minutes=12, qpm=60.0)
        ExperimentRunner(seed=1, dataset_size=300, drain_s=60.0).run(system, trace)
        assert system.num_strategy_switches() >= 2
        assert system.active_strategy is Strategy.AC

    def test_gpu_failure_recovery(self, training_dataset):
        system = ArgusSystem(config=small_config(), training_dataset=training_dataset)
        system.cluster.schedule_failure(0, fail_at_s=120.0, recover_at_s=300.0)
        system.cluster.schedule_failure(1, fail_at_s=120.0, recover_at_s=300.0)
        trace = TraceLibrary(seed=0).constant(duration_minutes=10, qpm=50.0)
        result = ExperimentRunner(seed=2, dataset_size=300, drain_s=60.0).run(system, trace)
        # The system keeps serving through the failure window.
        assert result.summary.total_completions > 0.9 * result.summary.total_arrivals

    def test_prompt_agnostic_flag_renames_system(self, training_dataset):
        pac = ArgusSystem(
            config=small_config(), prompt_aware=False, training_dataset=training_dataset
        )
        assert pac.name == "PAC"
        assert pac.classifiers == {}


class TestBaselines:
    def test_clipper_ha_overloads_under_heavy_load(self, runner, heavy_trace):
        system = ClipperSystem(mode="HA", config=small_config())
        result = runner.run(system, heavy_trace)
        assert result.summary.slo_violation_ratio > 0.3
        assert result.summary.mean_relative_quality > 0.95

    def test_clipper_ht_fast_but_low_quality(self, runner, heavy_trace):
        system = ClipperSystem(mode="HT", config=small_config())
        result = runner.run(system, heavy_trace)
        assert result.summary.slo_violation_ratio < 0.1
        assert result.summary.mean_relative_quality < 0.9

    def test_clipper_invalid_mode(self):
        with pytest.raises(ValueError):
            ClipperSystem(mode="XX")

    def test_proteus_switches_models(self, runner, training_dataset):
        trace = TraceLibrary(seed=0).bursty(duration_minutes=12, low_qpm=35, high_qpm=90)
        system = ProteusSystem(config=small_config(), training_dataset=training_dataset)
        result = runner.run(system, trace)
        assert system.active_strategy is Strategy.SM
        assert result.summary.model_loads > 0
        assert result.summary.total_completions > 0

    def test_nirvana_is_prompt_aware_but_not_load_adaptive(
        self, runner, heavy_trace, training_dataset
    ):
        system = NirvanaSystem(config=small_config(), training_dataset=training_dataset)
        result = runner.run(system, heavy_trace)
        # High quality but many SLO violations under load (Fig. 16/17).
        assert result.summary.mean_relative_quality > 0.9
        assert result.summary.slo_violation_ratio > 0.3

    def test_sommelier_adjusts_per_worker(self, runner, heavy_trace):
        system = SommelierSystem(config=small_config())
        result = runner.run(system, heavy_trace)
        ranks = set(system.cluster.level_assignment().values())
        assert len(ranks) >= 1
        assert result.summary.model_loads > 0

    def test_build_system_factory(self, training_dataset):
        for name in ("argus", "pac", "proteus", "sommelier", "nirvana", "clipper-ha", "clipper-ht"):
            system = build_system(
                name, config=small_config(), training_dataset=training_dataset
            )
            assert system.config.num_workers == 4
        with pytest.raises(KeyError):
            build_system("unknown")


class TestEndToEndComparison:
    def test_argus_dominates_scalable_baselines(self, training_dataset):
        """Core Fig. 16 claim on a short bursty slice: Argus keeps SLO
        violations low while holding quality above the SM-only baselines."""
        trace = TraceLibrary(seed=3).bursty(duration_minutes=14, low_qpm=40, high_qpm=80)
        runner = ExperimentRunner(seed=3, dataset_size=500, drain_s=60.0)
        results = {}
        for name in ("argus", "proteus", "clipper-ht"):
            system = build_system(name, config=small_config(), training_dataset=training_dataset)
            results[name] = runner.run(system, trace)
        argus = results["argus"].summary
        proteus = results["proteus"].summary
        clipper_ht = results["clipper-ht"].summary
        assert argus.slo_violation_ratio <= proteus.slo_violation_ratio + 0.02
        assert argus.mean_pickscore > proteus.mean_pickscore
        assert argus.mean_pickscore > clipper_ht.mean_pickscore
        assert argus.mean_served_qpm >= 0.95 * proteus.mean_served_qpm
