"""Tests for GPU memory, workers and the cluster substrate."""

from __future__ import annotations

import pytest

from repro.cache.approximate import ApproximateCache
from repro.cluster.cluster import GpuCluster
from repro.cluster.memory import GpuMemory
from repro.cluster.requests import Request
from repro.cluster.worker import Worker, WorkerState
from repro.models.zoo import ModelZoo, Strategy
from repro.prompts.dataset import PromptDataset
from repro.simulation.engine import SimulationEngine


def make_request(prompt, request_id=0, arrival=0.0, strategy=Strategy.AC, rank=0):
    return Request(
        request_id=request_id,
        prompt=prompt,
        arrival_time_s=arrival,
        strategy=strategy,
        predicted_rank=rank,
        assigned_rank=rank,
    )


@pytest.fixture()
def engine():
    return SimulationEngine(seed=0)


@pytest.fixture()
def prompts():
    return PromptDataset.synthetic(count=30, seed=9).prompts


class TestGpuMemory:
    def test_load_and_unload(self):
        memory = GpuMemory(capacity_gib=80.0)
        memory.load("SD-XL", 5.14)
        assert memory.is_resident("SD-XL")
        assert memory.used_gib == pytest.approx(5.14)
        assert memory.unload("SD-XL")
        assert not memory.is_resident("SD-XL")

    def test_two_models_fit_on_a100(self):
        # §4.6: 80 GiB holds SD-XL plus a smaller variant simultaneously.
        memory = GpuMemory(capacity_gib=80.0)
        memory.load("SD-XL", 5.14)
        memory.load("SD-1.5", 3.44)
        assert set(memory.resident_models) == {"SD-XL", "SD-1.5"}

    def test_overflow_raises(self):
        memory = GpuMemory(capacity_gib=6.0)
        memory.load("SD-XL", 5.14)
        with pytest.raises(MemoryError):
            memory.load("SD-1.5", 3.44)

    def test_double_load_is_noop(self):
        memory = GpuMemory(capacity_gib=10.0)
        memory.load("SD-XL", 5.14)
        memory.load("SD-XL", 5.14)
        assert memory.used_gib == pytest.approx(5.14)

    def test_unload_unknown_returns_false(self):
        assert not GpuMemory().unload("nothing")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GpuMemory(capacity_gib=0)


class TestWorkerServing:
    def test_serves_single_request(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        worker.enqueue(make_request(prompts[0], strategy=Strategy.SM))
        engine.run()
        assert len(completed) == 1
        record = completed[0]
        assert record.worker_id == 0
        assert 3.0 < record.service_time_s < 5.5
        assert record.effective_rank == 0

    def test_fifo_queueing_adds_latency(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i, strategy=Strategy.SM))
        engine.run()
        assert len(completed) == 3
        latencies = sorted(c.latency_s for c in completed)
        assert latencies[2] > latencies[0] * 2

    def test_sm_level_switch_pays_load_latency(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        tiny = zoo.fastest_level(Strategy.SM)
        delay = worker.set_level(tiny)
        assert delay > 0
        assert worker.is_loading
        assert worker.level.rank == 0  # still serving on the old model
        engine.run()
        assert worker.level.rank == tiny.rank
        assert worker.stats.model_loads == 1

    def test_ac_level_switch_is_free(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.AC))
        delay = worker.set_level(zoo.fastest_level(Strategy.AC))
        assert delay == 0.0
        assert worker.level.rank == 5
        assert worker.stats.model_loads == 0

    def test_ac_serving_uses_cache_hits(self, engine, zoo, prompts):
        cache = ApproximateCache()
        cache.warm(prompts)
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.level(Strategy.AC, 4),
            cache=cache,
            on_complete=completed.append,
        )
        worker.enqueue(make_request(prompts[0], strategy=Strategy.AC, rank=4))
        engine.run()
        record = completed[0]
        assert record.cache_hit
        assert record.effective_rank == 4
        assert record.service_time_s < 3.5  # K=20 is much faster than K=0

    def test_ac_miss_falls_back_to_full_generation(self, engine, zoo, prompts):
        cache = ApproximateCache()  # empty: every lookup misses
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.level(Strategy.AC, 5),
            cache=cache,
            on_complete=completed.append,
        )
        worker.enqueue(make_request(prompts[0], strategy=Strategy.AC, rank=5))
        engine.run()
        record = completed[0]
        assert not record.cache_hit
        assert record.effective_rank == 0
        assert record.service_time_s > 3.0

    def test_honor_request_rank(self, engine, zoo, prompts):
        cache = ApproximateCache()
        cache.warm(prompts)
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.AC),
            cache=cache,
            on_complete=completed.append,
            honor_request_rank=True,
        )
        worker.enqueue(make_request(prompts[0], strategy=Strategy.AC, rank=3))
        engine.run()
        assert completed[0].effective_rank == 3

    def test_blocking_load_pauses_serving(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            blocking_load=True,
        )
        worker.set_level(zoo.fastest_level(Strategy.SM))
        worker.enqueue(make_request(prompts[0], strategy=Strategy.SM))
        engine.run()
        # The request only starts after the Tiny-SD load (2.91 s) completes.
        assert completed[0].start_time_s >= 2.9

    def test_expected_wait_grows_with_queue(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        baseline = worker.expected_wait_s()
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i, strategy=Strategy.SM))
        assert worker.expected_wait_s() > baseline

    def test_utilization_bounded(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            0, engine, zoo, level=zoo.exact_level(Strategy.SM), on_complete=completed.append
        )
        for i in range(5):
            worker.enqueue(make_request(prompts[i], request_id=i, strategy=Strategy.SM))
        engine.run()
        assert 0.0 < worker.utilization(engine.now) <= 1.0


class TestWorkerFailure:
    def test_fail_requeues_outstanding_requests(self, engine, zoo, prompts):
        requeued = []
        worker = Worker(
            0, engine, zoo, level=zoo.exact_level(Strategy.SM), on_requeue=requeued.append
        )
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i, strategy=Strategy.SM))
        orphans = worker.fail()
        assert len(orphans) == 3
        assert len(requeued) == 3
        assert worker.is_failed

    def test_failed_worker_rejects_requests(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        worker.fail()
        with pytest.raises(RuntimeError):
            worker.enqueue(make_request(prompts[0], strategy=Strategy.SM))
        with pytest.raises(RuntimeError):
            worker.set_level(zoo.fastest_level(Strategy.SM))

    def test_recover_restores_serving(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            0, engine, zoo, level=zoo.exact_level(Strategy.SM), on_complete=completed.append
        )
        worker.fail()
        worker.recover()
        assert worker.state is WorkerState.IDLE
        worker.enqueue(make_request(prompts[0], strategy=Strategy.SM))
        engine.run()
        assert len(completed) == 1

    def test_inflight_request_lost_on_failure(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            0, engine, zoo, level=zoo.exact_level(Strategy.SM), on_complete=completed.append
        )
        worker.enqueue(make_request(prompts[0], strategy=Strategy.SM))
        engine.schedule_at(1.0, lambda e: worker.fail())
        engine.run()
        assert completed == []


class TestGpuCluster:
    def test_cluster_construction(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=8)
        assert len(cluster) == 8
        assert len(cluster.healthy_workers) == 8
        assert set(cluster.level_assignment().values()) == {0}

    def test_dispatch_and_serve(self, engine, zoo, prompts):
        completed = []
        cluster = GpuCluster(
            engine, zoo, num_workers=2,
            initial_level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        cluster.dispatch(make_request(prompts[0], strategy=Strategy.SM), worker_id=1)
        engine.run()
        assert len(completed) == 1
        assert cluster.total_requests_served() == 1

    def test_apply_assignment(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=4, initial_level=zoo.exact_level(Strategy.AC))
        levels = zoo.levels(Strategy.AC)
        delays = cluster.apply_assignment({0: levels[5], 1: levels[5], 2: levels[0], 3: levels[2]})
        assert set(delays) == {0, 1, 2, 3}
        assert len(cluster.workers_at_level(5)) == 2
        assert len(cluster.workers_at_level(0)) == 1

    def test_failure_injection_schedule(self, engine, zoo, prompts):
        cluster = GpuCluster(engine, zoo, num_workers=2, initial_level=zoo.exact_level(Strategy.SM))
        cluster.schedule_failure(0, fail_at_s=10.0, recover_at_s=50.0)
        engine.run(until=20.0)
        assert len(cluster.healthy_workers) == 1
        engine.run(until=60.0)
        assert len(cluster.healthy_workers) == 2

    def test_invalid_failure_schedule(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=2)
        with pytest.raises(ValueError):
            cluster.schedule_failure(0, fail_at_s=10.0, recover_at_s=5.0)

    def test_dispatch_to_failed_worker_raises(self, engine, zoo, prompts):
        cluster = GpuCluster(engine, zoo, num_workers=2, initial_level=zoo.exact_level(Strategy.SM))
        cluster.fail_worker(0)
        with pytest.raises(RuntimeError):
            cluster.dispatch(make_request(prompts[0], strategy=Strategy.SM), worker_id=0)

    def test_utilization_zero_before_work(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=2)
        assert cluster.utilization(100.0) == 0.0

    def test_needs_at_least_one_worker(self, engine, zoo):
        with pytest.raises(ValueError):
            GpuCluster(engine, zoo, num_workers=0)
