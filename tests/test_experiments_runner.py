"""Tests for the experiment harness (runner, factory, comparisons)."""

from __future__ import annotations

import pytest

from repro.core.config import ArgusConfig
from repro.experiments.runner import ExperimentRunner, build_system, compare_systems
from repro.prompts.dataset import PromptDataset
from repro.workloads.traces import TraceLibrary


def tiny_config() -> ArgusConfig:
    return ArgusConfig(
        num_workers=2,
        classifier_training_prompts=200,
        profiling_prompts=100,
        classifier_epochs=5,
    )


@pytest.fixture(scope="module")
def tiny_training():
    return PromptDataset.synthetic(count=200, seed=55)


class TestExperimentRunner:
    def test_run_produces_summary_and_series(self, tiny_training):
        trace = TraceLibrary(seed=0).constant(duration_minutes=4, qpm=20.0)
        runner = ExperimentRunner(seed=0, dataset_size=100, drain_s=30.0)
        system = build_system("clipper-ha", config=tiny_config())
        result = runner.run(system, trace)
        assert result.system == "Clipper-HA"
        assert result.workload == "constant"
        assert result.summary.total_arrivals > 0
        assert len(result.minute_series) >= trace.duration_minutes
        assert len(result.offered_qpm_series) == len(result.served_qpm_series)
        assert all(0.0 <= v <= 1.0 for v in result.violation_ratio_series)

    def test_extras_expose_cache_state(self, tiny_training):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=15.0)
        runner = ExperimentRunner(seed=0, dataset_size=100, drain_s=30.0)
        argus = build_system("argus", config=tiny_config(), training_dataset=tiny_training)
        result = runner.run(argus, trace)
        assert result.extras["cache_hit_rate"] is not None
        no_cache = build_system("clipper-ht", config=tiny_config())
        result2 = runner.run(no_cache, trace)
        assert result2.extras["cache_hit_rate"] is None

    def test_make_dataset_respects_size(self):
        runner = ExperimentRunner(seed=0, dataset_size=123)
        assert len(runner.make_dataset()) == 123


class TestCompareSystems:
    def test_compare_runs_each_system_once(self, tiny_training):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=18.0)
        results = compare_systems(
            ["clipper-ha", "clipper-ht"],
            trace,
            config_factory=tiny_config,
            seed=0,
            dataset_size=80,
            training_dataset=tiny_training,
        )
        assert set(results) == {"clipper-ha", "clipper-ht"}
        for result in results.values():
            assert result.summary.total_completions > 0

    def test_unknown_system_name(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=1, qpm=5.0)
        with pytest.raises(KeyError):
            compare_systems(["nope"], trace, config_factory=tiny_config, dataset_size=10)
