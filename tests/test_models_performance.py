"""Tests for the latency, batching and roofline models, and the model zoo."""

from __future__ import annotations

import pytest

from repro.models.batching import BATCHING_PROFILES, BatchingModel, batching_speedup_curve
from repro.models.latency import LatencyModel
from repro.models.roofline import RooflineModel
from repro.models.variants import AC_LEVELS, SM_VARIANTS
from repro.models.zoo import ModelZoo, Strategy


class TestLatencyModel:
    def test_a100_matches_table2(self):
        model = LatencyModel("A100")
        assert model.variant_latency(SM_VARIANTS[0]) == pytest.approx(4.2)
        assert model.variant_latency(SM_VARIANTS[-1]) == pytest.approx(2.18)

    def test_older_gpus_are_slower(self):
        a100 = LatencyModel("A100")
        a10g = LatencyModel("A10G")
        v100 = LatencyModel("V100")
        for variant in SM_VARIANTS:
            assert a10g.variant_latency(variant) > a100.variant_latency(variant)
            assert v100.variant_latency(variant) > a100.variant_latency(variant)

    def test_sdxl_on_a10g_near_ten_seconds(self):
        # §1: SD-XL can take up to ~10 s on an A10G.
        latency = LatencyModel("A10G").variant_latency(SM_VARIANTS[0])
        assert 8.0 < latency < 12.0

    def test_batch_latency_grows_nearly_linearly(self):
        model = LatencyModel("A100")
        single = model.variant_latency(SM_VARIANTS[0], batch_size=1)
        batch4 = model.variant_latency(SM_VARIANTS[0], batch_size=4)
        assert batch4 > 3.0 * single

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            LatencyModel("A100").variant_latency(SM_VARIANTS[0], batch_size=0)

    def test_breakdown_sums_to_total(self):
        model = LatencyModel("A100")
        breakdown = model.variant_breakdown(SM_VARIANTS[0])
        assert breakdown.total_s == pytest.approx(model.variant_latency(SM_VARIANTS[0]))

    def test_unet_dominates_breakdown(self):
        breakdown = LatencyModel("A100").variant_breakdown(SM_VARIANTS[0])
        assert breakdown.unet_s > 0.85 * breakdown.total_s

    def test_ac_latency_decreases_with_skip(self):
        model = LatencyModel("A100")
        base = SM_VARIANTS[0]
        latencies = [model.ac_latency(level, base) for level in AC_LEVELS]
        assert latencies == sorted(latencies, reverse=True)

    def test_ac_k0_equals_full_generation(self):
        model = LatencyModel("A100")
        assert model.ac_latency(AC_LEVELS[0], SM_VARIANTS[0]) == pytest.approx(
            model.variant_latency(SM_VARIANTS[0])
        )

    def test_ac_retrieval_latency_added(self):
        model = LatencyModel("A100")
        without = model.ac_latency(AC_LEVELS[3], SM_VARIANTS[0], retrieval_latency_s=0.0)
        with_net = model.ac_latency(AC_LEVELS[3], SM_VARIANTS[0], retrieval_latency_s=0.5)
        assert with_net == pytest.approx(without + 0.5)

    def test_latency_matrix_covers_all_gpus(self):
        matrix = LatencyModel("A100").latency_matrix(list(SM_VARIANTS))
        assert set(matrix) == {"A100", "A10G", "V100"}
        for per_gpu in matrix.values():
            assert len(per_gpu) == len(SM_VARIANTS)


class TestBatchingModel:
    def test_speedup_is_one_at_batch_one(self):
        for profile in BATCHING_PROFILES:
            assert batching_speedup_curve(profile, [1]) == [1.0]

    def test_speedup_monotone_in_batch(self):
        model = BatchingModel()
        for name in model.model_names:
            curve = [model.speedup(name, b) for b in (1, 2, 4, 8, 16)]
            assert curve == sorted(curve)

    def test_speedup_never_exceeds_batch_size(self):
        model = BatchingModel()
        for name in model.model_names:
            for batch in (1, 2, 4, 8):
                assert model.speedup(name, batch) <= batch + 1e-9

    def test_diffusion_models_plateau(self):
        model = BatchingModel()
        # Observation 5: non-DM models keep scaling, DMs plateau quickly.
        assert model.speedup("YOLOv5n", 16) > 5.0
        assert model.speedup("SD-XL", 16) < 1.5

    def test_gap_between_families(self):
        assert BatchingModel().diffusion_vs_traditional_gap(batch_size=8) > 3.0

    def test_effective_batch_limit_smaller_for_dms(self):
        model = BatchingModel()
        assert model.effective_batch_limit("SD-XL") < model.effective_batch_limit("YOLOv5n")

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            BatchingModel().speedup("SD-XL", 0)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            BatchingModel().speedup("BERT", 2)


class TestRooflineModel:
    def test_diffusion_models_are_compute_bound(self):
        roofline = RooflineModel("A100")
        for model in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL"):
            assert roofline.place_diffusion_model(model).compute_bound

    def test_traditional_models_are_memory_bound(self):
        roofline = RooflineModel("A100")
        assert not roofline.place("ResNet50", 55.0).compute_bound
        assert not roofline.place("YOLOv5n", 28.0).compute_bound

    def test_attainable_capped_at_peak(self):
        roofline = RooflineModel("A100")
        assert roofline.attainable_tflops(1e6) == pytest.approx(roofline.gpu.peak_fp16_tflops)

    def test_attainable_scales_below_ridge(self):
        roofline = RooflineModel("A100")
        low = roofline.attainable_tflops(10.0)
        high = roofline.attainable_tflops(100.0)
        assert high > low

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel("A100").attainable_tflops(-1.0)

    def test_full_plot_has_all_models(self):
        points = RooflineModel("A100").full_plot()
        names = {p.name for p in points}
        assert {"SD-XL", "Tiny-SD", "YOLOv5n", "GPT-8B"} <= names


class TestModelZoo:
    def test_level_counts(self, zoo):
        assert zoo.num_levels(Strategy.AC) == 6
        assert zoo.num_levels(Strategy.SM) == 6

    def test_levels_ordered_by_rank(self, zoo):
        for strategy in (Strategy.AC, Strategy.SM):
            ranks = [level.rank for level in zoo.levels(strategy)]
            assert ranks == list(range(6))

    def test_latency_decreases_with_rank(self, zoo):
        for strategy in (Strategy.AC, Strategy.SM):
            latencies = [level.latency_s for level in zoo.levels(strategy)]
            assert latencies == sorted(latencies, reverse=True)

    def test_ac_levels_have_zero_switch_cost(self, zoo):
        assert all(level.switch_cost_s == 0.0 for level in zoo.levels(Strategy.AC))

    def test_sm_levels_have_load_cost(self, zoo):
        assert all(level.switch_cost_s > 0 for level in zoo.levels(Strategy.SM))

    def test_exact_and_fastest(self, zoo):
        assert zoo.exact_level(Strategy.AC).rank == 0
        assert zoo.fastest_level(Strategy.AC).rank == 5
        assert zoo.exact_level(Strategy.AC).is_exact

    def test_level_lookup_by_name(self, zoo):
        assert zoo.level_by_name(Strategy.SM, "tiny-sd").rank == 5
        assert zoo.level_by_name(Strategy.AC, "K=25").rank == 5

    def test_level_out_of_range(self, zoo):
        with pytest.raises(IndexError):
            zoo.level(Strategy.AC, 6)

    def test_cluster_throughput_bound(self, zoo):
        bound = zoo.max_cluster_throughput_qpm(Strategy.AC, 8)
        assert bound == pytest.approx(8 * zoo.fastest_level(Strategy.AC).peak_throughput_qpm)

    def test_strategy_accepts_strings(self, zoo):
        assert zoo.levels("AC") == zoo.levels(Strategy.AC)
