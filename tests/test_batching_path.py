"""Tests for the dynamic-batching execution path and lazy streaming arrivals.

Covers batch forming (max-size vs timeout triggers), the batched service-time
model (monotonicity and the Fig. 14 diffusion plateau), batch-aware worker
stats and cluster accounting, the batch-aware scheduler/allocator cost model,
the lazy arrival source (O(1) heap events), and the end-to-end guarantee that
batching strictly increases served throughput under overload.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import GpuCluster
from repro.cluster.requests import Request
from repro.cluster.worker import Worker
from repro.core.base import BaseServingSystem, Route
from repro.core.config import ArgusConfig
from repro.core.system import ArgusSystem
from repro.experiments.runner import ExperimentRunner
from repro.models.batching import (
    BATCHING_PROFILES,
    DEFAULT_DIFFUSION_PROFILE,
    BatchingModel,
)
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.simulation.engine import SimulationEngine
from repro.workloads.replay import RequestStream
from repro.workloads.traces import TraceLibrary, WorkloadTrace


def make_request(prompt, request_id=0, arrival=0.0, strategy=Strategy.SM, rank=0):
    return Request(
        request_id=request_id,
        prompt=prompt,
        arrival_time_s=arrival,
        strategy=strategy,
        predicted_rank=rank,
        assigned_rank=rank,
    )


@pytest.fixture()
def engine():
    return SimulationEngine(seed=0)


@pytest.fixture()
def prompts():
    return PromptDataset.synthetic(count=40, seed=11).prompts


class TestBatchedServiceTimeModel:
    def test_batch_of_one_costs_single_latency(self):
        model = BatchingModel()
        for profile in BATCHING_PROFILES:
            assert model.batched_service_time(profile.name, 4.2, 1) == pytest.approx(4.2)

    def test_batch_time_monotone_increasing(self):
        model = BatchingModel()
        for profile in BATCHING_PROFILES:
            times = [model.batched_service_time(profile.name, 4.2, b) for b in (1, 2, 4, 8, 16)]
            # Never cheaper to serve a bigger batch; strictly more expensive
            # for compute-bound diffusion models (their speed-up plateaus
            # below the batch size).
            assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))
            if profile.is_diffusion:
                assert all(b > a for a, b in zip(times, times[1:]))

    def test_per_request_time_monotone_decreasing(self):
        model = BatchingModel()
        for profile in BATCHING_PROFILES:
            times = [
                model.batched_service_time(profile.name, 4.2, b) / b for b in (1, 2, 4, 8, 16)
            ]
            assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))

    def test_diffusion_throughput_plateaus(self):
        # Fig. 14: the speed-up of a DM saturates at max_speedup, so peak QPM
        # at batch 16 stays within the plateau bound while non-DM models keep
        # scaling far beyond it.
        model = BatchingModel()
        for profile in BATCHING_PROFILES:
            base = 60.0 / model.batched_service_time(profile.name, 4.2, 1)
            at_16 = 16 * 60.0 / model.batched_service_time(profile.name, 4.2, 16)
            assert at_16 <= profile.max_speedup * base + 1e-9
            if profile.is_diffusion:
                assert at_16 < 2.0 * base

    def test_unknown_variant_falls_back_to_generic_dm(self):
        model = BatchingModel()
        assert model.profile_or_default("SD-1.5") is DEFAULT_DIFFUSION_PROFILE
        assert model.profile_or_default("SD-XL").name == "SD-XL"

    def test_zoo_batched_peak_matches_level_at_batch_one(self, zoo):
        for strategy in (Strategy.AC, Strategy.SM):
            for level in zoo.levels(strategy):
                assert zoo.batched_peak_qpm(level, 1) == pytest.approx(
                    level.peak_throughput_qpm
                )
                assert zoo.batched_peak_qpm(level, 4) > level.peak_throughput_qpm


class TestBatchForming:
    def test_full_batch_launches_immediately(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            max_batch_size=3,
            batch_timeout_s=5.0,
        )
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i))
        engine.run()
        assert len(completed) == 3
        assert all(c.batch_size == 3 for c in completed)
        # The batch filled before the 5 s forming window expired.
        assert all(c.start_time_s == pytest.approx(0.0) for c in completed)
        assert len({c.completion_time_s for c in completed}) == 1

    def test_timeout_launches_partial_batch(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            max_batch_size=4,
            batch_timeout_s=0.5,
        )
        worker.enqueue(make_request(prompts[0], request_id=0))
        worker.enqueue(make_request(prompts[1], request_id=1))
        engine.run()
        assert len(completed) == 2
        assert all(c.batch_size == 2 for c in completed)
        # Launched by the forming timeout, not immediately.
        assert all(c.start_time_s == pytest.approx(0.5) for c in completed)

    def test_zero_timeout_drains_greedily(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            max_batch_size=4,
            batch_timeout_s=0.0,
        )
        worker.enqueue(make_request(prompts[0], request_id=0))
        engine.run()
        assert completed[0].batch_size == 1
        assert completed[0].start_time_s == pytest.approx(0.0)

    def test_batch_size_one_matches_sequential_serving(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
        )
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i))
        engine.run()
        assert len(completed) == 3
        assert all(c.batch_size == 1 for c in completed)
        assert worker.stats.batches_served == 3

    def test_batch_amortises_gpu_time(self, engine, zoo, prompts):
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            max_batch_size=4,
            batch_timeout_s=1.0,
            service_jitter=0.0,
        )
        for i in range(4):
            worker.enqueue(make_request(prompts[i], request_id=i))
        engine.run()
        assert len(completed) == 4
        single = zoo.exact_level(Strategy.SM).latency_s
        # One batch of four costs less GPU time than four sequential passes
        # but more than one (the diffusion plateau).
        assert single < worker.stats.busy_time_s < 4 * single

    def test_invalid_batch_parameters_rejected(self, engine, zoo):
        with pytest.raises(ValueError):
            Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM), max_batch_size=0)
        with pytest.raises(ValueError):
            Worker(
                0, engine, zoo, level=zoo.exact_level(Strategy.SM), batch_timeout_s=-1.0
            )

    def test_failure_orphans_forming_and_inflight_batch(self, engine, zoo, prompts):
        requeued = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_requeue=requeued.append,
            max_batch_size=4,
            batch_timeout_s=5.0,
        )
        worker.enqueue(make_request(prompts[0], request_id=0))
        worker.enqueue(make_request(prompts[1], request_id=1))
        orphans = worker.fail()
        assert len(orphans) == 2
        assert len(requeued) == 2
        engine.run()  # The cancelled forming event must not fire.
        assert worker.is_failed

    def test_recovery_does_not_double_complete_inflight_batch(self, engine, zoo, prompts):
        # The failed batch was re-routed elsewhere; a quick recovery must not
        # let the stale serve event complete the orphans a second time.
        completed = []
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            on_complete=completed.append,
            max_batch_size=2,
            batch_timeout_s=0.1,
        )
        worker.enqueue(make_request(prompts[0], request_id=0))
        worker.enqueue(make_request(prompts[1], request_id=1))
        engine.schedule_at(1.0, lambda e: worker.fail())
        engine.schedule_at(1.5, lambda e: worker.recover())
        engine.run()
        assert completed == []
        assert worker.stats.requests_served == 0


class TestBatchAwareStats:
    def test_worker_occupancy_counters(self, engine, zoo, prompts):
        worker = Worker(
            worker_id=0,
            engine=engine,
            zoo=zoo,
            level=zoo.exact_level(Strategy.SM),
            max_batch_size=2,
            batch_timeout_s=0.5,
        )
        for i in range(4):
            worker.enqueue(make_request(prompts[i], request_id=i))
        engine.run()
        assert worker.stats.requests_served == 4
        assert worker.stats.batches_served == 2
        assert worker.stats.max_batch_served == 2
        assert worker.stats.mean_batch_occupancy == pytest.approx(2.0)

    def test_cluster_mean_batch_occupancy(self, engine, zoo, prompts):
        cluster = GpuCluster(
            engine,
            zoo,
            num_workers=1,
            initial_level=zoo.exact_level(Strategy.SM),
            max_batch_size=3,
            batch_timeout_s=0.5,
        )
        for i in range(3):
            cluster.dispatch(make_request(prompts[i], request_id=i), worker_id=0)
        engine.run()
        assert cluster.total_batches_served() == 1
        assert cluster.mean_batch_occupancy() == pytest.approx(3.0)

    def test_idle_cluster_occupancy_is_one(self, engine, zoo):
        cluster = GpuCluster(engine, zoo, num_workers=1)
        assert cluster.mean_batch_occupancy() == 1.0


class TestBatchAwareCostModel:
    def test_estimated_backlog_amortised_by_batching(self, engine, zoo, prompts):
        level = zoo.exact_level(Strategy.SM)
        plain = Worker(0, engine, zoo, level=level)
        batched = Worker(
            1, engine, zoo, level=level, max_batch_size=4, batch_timeout_s=5.0
        )
        for i in range(4):
            plain.enqueue(make_request(prompts[i], request_id=i))
            batched.enqueue(make_request(prompts[4 + i], request_id=4 + i))
        assert batched.estimated_backlog_s() < plain.estimated_backlog_s()
        assert batched.expected_wait_s() < plain.expected_wait_s()

    def test_backlog_reduces_to_seed_formula_without_batching(self, engine, zoo, prompts):
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        for i in range(3):
            worker.enqueue(make_request(prompts[i], request_id=i))
        assert worker.estimated_backlog_s() == pytest.approx(
            worker.outstanding * worker.level.latency_s
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ArgusConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ArgusConfig(batch_timeout_s=-0.1)
        assert not ArgusConfig().batching_enabled
        assert ArgusConfig(max_batch_size=4).batching_enabled


class _ScriptedSystem(BaseServingSystem):
    """Minimal concrete system with scripted routing (for requeue tests)."""

    name = "scripted"

    def __init__(self, routes, **kwargs):
        super().__init__(**kwargs)
        self._routes = list(routes)

    def route(self, prompt):
        worker_id, predicted, assigned = self._routes.pop(0)
        return Route(
            worker_id=worker_id,
            predicted_rank=predicted,
            assigned_rank=assigned,
            strategy=Strategy.AC,
        )


class TestRequeueRouting:
    def test_requeue_refreshes_predicted_rank(self, prompts):
        # A request re-routed after a worker failure must carry the fresh
        # prediction; a stale predicted_rank corrupts shift-fraction and
        # affinity accounting downstream.
        system = _ScriptedSystem(
            routes=[(0, 3, 2), (1, 1, 0)],
            config=ArgusConfig(num_workers=2),
            use_cache=False,
        )
        request = system.submit(prompts[0])
        assert request.predicted_rank == 3
        system.cluster.fail_worker(0)
        assert request.predicted_rank == 1
        assert request.assigned_rank == 0


class TestLazyArrivals:
    def test_heap_never_holds_more_than_one_arrival(self, prompts):
        system = _ScriptedSystem(
            routes=[(0, 0, 0)] * 500,
            config=ArgusConfig(num_workers=2),
            use_cache=False,
        )
        trace = WorkloadTrace("t", (60.0, 60.0, 60.0))
        stream = RequestStream(
            trace, PromptDataset.synthetic(count=30, seed=3), arrival_kind="uniform"
        )
        system.schedule_arrivals(stream)
        engine = system.engine
        max_pending_arrivals = 0
        while True:
            pending = sum(
                1 for _, _, e in engine._heap if e.name == "arrival" and not e.cancelled
            )
            max_pending_arrivals = max(max_pending_arrivals, pending)
            if not engine.step():
                break
        assert max_pending_arrivals <= 1
        assert system.collector.total_arrivals == 180

    def test_stream_iteration_stays_lazy(self):
        trace = WorkloadTrace("t", (30.0, 30.0))
        stream = RequestStream(
            trace, PromptDataset.synthetic(count=10, seed=0), arrival_kind="uniform"
        )
        count = sum(1 for _ in stream)
        assert count == 60
        assert not stream.is_materialized
        assert len(stream) == 60  # random access materialises on demand
        assert stream.is_materialized

    def test_lazy_and_materialized_streams_agree(self):
        trace = WorkloadTrace("t", (25.0, 40.0))
        lazy = RequestStream(trace, PromptDataset.synthetic(count=7, seed=5), seed=9)
        materialized = RequestStream(trace, PromptDataset.synthetic(count=7, seed=5), seed=9)
        _ = len(materialized)
        for a, b in zip(lazy, materialized):
            assert a.arrival_time_s == b.arrival_time_s
            assert a.prompt.prompt_id == b.prompt.prompt_id


class TestBatchingEndToEnd:
    @pytest.fixture(scope="class")
    def overload_results(self):
        """Argus on an overloaded 2-worker cluster, with and without batching."""
        trace = TraceLibrary(seed=0).constant(duration_minutes=6, qpm=70.0)
        dataset = PromptDataset.synthetic(count=200, seed=21)
        results = {}
        for max_batch in (1, 4):
            config = ArgusConfig(
                num_workers=2,
                classifier_training_prompts=150,
                profiling_prompts=80,
                classifier_epochs=5,
                max_batch_size=max_batch,
                batch_timeout_s=0.25,
            )
            system = ArgusSystem(config=config, training_dataset=dataset)
            runner = ExperimentRunner(seed=0, dataset_size=250, drain_s=60.0)
            results[max_batch] = runner.run(system, trace)
        return results

    def test_batching_strictly_increases_served_qpm(self, overload_results):
        unbatched = overload_results[1].summary
        batched = overload_results[4].summary
        assert batched.mean_served_qpm > unbatched.mean_served_qpm

    def test_batched_run_reports_occupancy(self, overload_results):
        assert overload_results[1].summary.mean_batch_occupancy == pytest.approx(1.0)
        assert overload_results[4].summary.mean_batch_occupancy > 1.2

    def test_occupancy_bounded_by_max_batch(self, overload_results):
        assert overload_results[4].summary.mean_batch_occupancy <= 4.0
