"""Tests for the Optimised Distribution Aligner and the PASM (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.degradation import profile_degradation
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel


@pytest.fixture(scope="module")
def aligner():
    return OptimizedDistributionAligner()


class TestShiftMap:
    def test_identity(self):
        pasm = ShiftMap.identity(4)
        assert pasm.num_levels == 4
        for rank in range(4):
            assert pasm.probability(rank, rank) == 1.0

    def test_load_proportional_rows_equal_load(self):
        load = np.array([0.5, 0.3, 0.2])
        pasm = ShiftMap.load_proportional(load)
        for rank in range(3):
            np.testing.assert_allclose(pasm.matrix[rank], load)

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ShiftMap(matrix=np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_negative_probabilities_rejected(self):
        with pytest.raises(ValueError):
            ShiftMap(matrix=np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_must_be_square(self):
        with pytest.raises(ValueError):
            ShiftMap(matrix=np.ones((2, 3)) / 3)

    def test_sampling_follows_probabilities(self):
        pasm = ShiftMap(matrix=np.array([[0.2, 0.8], [1.0, 0.0]]))
        rng = np.random.default_rng(0)
        draws = [pasm.sample_target(0, rng) for _ in range(2000)]
        assert abs(np.mean(draws) - 0.8) < 0.05
        assert all(pasm.sample_target(1, rng) == 0 for _ in range(20))

    def test_resulting_distribution(self):
        pasm = ShiftMap(matrix=np.array([[0.0, 1.0], [0.0, 1.0]]))
        result = pasm.resulting_distribution(np.array([0.4, 0.6]))
        np.testing.assert_allclose(result, [0.0, 1.0])


class TestOdaAlignment:
    def test_identity_when_distributions_match(self, aligner):
        f = np.array([0.2, 0.3, 0.5])
        pasm = aligner.align(f, f.copy())
        np.testing.assert_allclose(pasm.matrix, np.eye(3), atol=1e-9)

    def test_resulting_distribution_matches_load(self, aligner):
        rng = np.random.default_rng(1)
        for _ in range(25):
            f = rng.dirichlet(np.ones(6))
            g = rng.dirichlet(np.ones(6))
            pasm = aligner.align(f, g)
            np.testing.assert_allclose(pasm.resulting_distribution(f), g, atol=1e-8)

    def test_surplus_shifts_to_slower_levels_only(self, aligner):
        # More prompts want the fast level than it can serve; the excess must
        # go to slower levels (never faster), which costs no quality.
        f = np.array([0.1, 0.1, 0.8])
        g = np.array([0.5, 0.3, 0.2])
        pasm = aligner.align(f, g)
        # Affinity-2 prompts may only move to levels 0..2.
        assert pasm.matrix[2, :3].sum() == pytest.approx(1.0)
        # Affinity-0 prompts never move to faster levels here (their level
        # has spare capacity).
        assert pasm.probability(0, 0) == pytest.approx(1.0)

    def test_deficit_pulled_from_nearest_slower_level(self, aligner):
        # The fast level needs more prompts than have affinity for it; ODA
        # pulls from the nearest slower level first (minimal gap).
        f = np.array([0.5, 0.4, 0.1])
        g = np.array([0.2, 0.2, 0.6])
        pasm = aligner.align(f, g)
        # Affinity-1 (nearest) must be pulled up before affinity-0.
        assert pasm.probability(1, 2) > 0.0
        moved_from_0 = pasm.probability(0, 2) * f[0]
        moved_from_1 = pasm.probability(1, 2) * f[1]
        assert moved_from_1 >= moved_from_0

    def test_quality_degradation_not_worse_than_random(self, aligner):
        prompts = PromptDataset.synthetic(count=800, seed=21).prompts
        pickscore = PickScoreModel(seed=0)
        selector = OptimalModelSelector(pickscore)
        degradation = profile_degradation(prompts, pickscore, Strategy.AC, selector)
        f = selector.affinity_distribution(prompts, Strategy.AC)
        g = np.array([0.05, 0.05, 0.1, 0.2, 0.2, 0.4])
        oda_map = aligner.align(f, g)
        random_map = ShiftMap.load_proportional(g)
        assert oda_map.expected_degradation(f, degradation) <= random_map.expected_degradation(
            f, degradation
        )

    def test_fig10_quality_ordering(self, aligner):
        """Ideal >= ODA-aligned >= random redistribution (Fig. 10)."""
        prompts = PromptDataset.synthetic(count=800, seed=22).prompts
        pickscore = PickScoreModel(seed=0)
        selector = OptimalModelSelector(pickscore)
        affinities = [selector.optimal_rank(p, Strategy.AC) for p in prompts]
        f = selector.affinity_distribution(prompts, Strategy.AC)
        g = np.array([0.05, 0.05, 0.1, 0.15, 0.25, 0.4])
        oda_map = aligner.align(f, g)
        random_map = ShiftMap.load_proportional(g)
        rng = np.random.default_rng(0)

        def mean_score(shift_map):
            scores = []
            for prompt, affinity in zip(prompts, affinities):
                target = shift_map.sample_target(affinity, rng)
                scores.append(pickscore.score(prompt, Strategy.AC, target))
            return float(np.mean(scores))

        ideal = float(
            np.mean([pickscore.score(p, Strategy.AC, a) for p, a in zip(prompts, affinities)])
        )
        oda_quality = mean_score(oda_map)
        random_quality = mean_score(random_map)
        assert ideal >= oda_quality > random_quality

    def test_mass_conservation(self, aligner):
        f = np.array([0.3, 0.3, 0.4])
        g = np.array([0.6, 0.2, 0.2])
        pasm = aligner.align(f, g)
        np.testing.assert_allclose(pasm.matrix.sum(axis=1), 1.0)

    def test_unnormalised_inputs_are_normalised(self, aligner):
        pasm = aligner.align(np.array([2.0, 2.0]), np.array([30.0, 10.0]))
        np.testing.assert_allclose(
            pasm.resulting_distribution(np.array([0.5, 0.5])), [0.75, 0.25], atol=1e-9
        )

    def test_invalid_inputs(self, aligner):
        with pytest.raises(ValueError):
            aligner.align(np.array([0.5, 0.5]), np.array([0.5, 0.25, 0.25]))
        with pytest.raises(ValueError):
            aligner.align(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            aligner.align(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))

    def test_zero_affinity_level_gets_identity_row(self, aligner):
        f = np.array([0.0, 0.6, 0.4])
        g = np.array([0.2, 0.4, 0.4])
        pasm = aligner.align(f, g)
        np.testing.assert_allclose(pasm.resulting_distribution(f), g, atol=1e-9)
        assert pasm.matrix[0].sum() == pytest.approx(1.0)
