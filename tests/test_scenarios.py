"""Tests for the declarative scenario engine, shapes and the repro CLI."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.config import ArgusConfig
from repro.experiments.runner import ExperimentRunner, build_system
from repro.prompts.dataset import PromptDataset
from repro.scenarios import (
    DriftPhase,
    FaultEvent,
    NetworkWindow,
    Preset,
    Scenario,
    TraceSpec,
    get_scenario,
    list_scenarios,
    register,
    run_scenario,
    scenario_names,
    verify_report,
    violations,
)
from repro.scenarios.cli import main as cli_main
from repro.scenarios.contracts import (
    check_load_fleet_scaling,
    check_weight_scaling_noop,
    contract_names,
    parse_contract,
)
from repro.workloads.replay import PhasedRequestStream
from repro.workloads.shapes import SHAPES, build_shape
from repro.workloads.traces import TraceLibrary


# --------------------------------------------------------------------- #
# Workload shapes
# --------------------------------------------------------------------- #
class TestShapes:
    def test_registry_names(self):
        assert {"steady", "diurnal", "flash-crowd", "ramp", "updown"} <= set(SHAPES)

    def test_unknown_shape(self):
        with pytest.raises(KeyError):
            build_shape("nope")

    def test_steady(self):
        trace = build_shape("steady", duration_minutes=10, qpm=50.0)
        assert trace.duration_minutes == 10
        assert all(q == 50.0 for q in trace.qpm)

    def test_diurnal_trough_to_peak(self):
        trace = build_shape(
            "diurnal", duration_minutes=60, base_qpm=20.0, peak_qpm=100.0, noise=0.0
        )
        assert trace.duration_minutes == 60
        assert trace.qpm[0] == pytest.approx(20.0, abs=1.0)
        assert trace.peak_qpm == pytest.approx(100.0, rel=0.02)

    def test_flash_crowd_spike(self):
        trace = build_shape(
            "flash-crowd",
            duration_minutes=30,
            base_qpm=40.0,
            spike_start_minute=10,
            spike_minutes=5,
            spike_multiplier=3.0,
            noise=0.0,
        )
        assert trace.qpm[9] == pytest.approx(40.0)
        assert trace.qpm[12] == pytest.approx(120.0)
        # Decay tail returns towards baseline.
        assert trace.qpm[-1] == pytest.approx(40.0)

    def test_updown_shape(self):
        trace = build_shape(
            "updown", ramp_minutes=20, descent_minutes=10, start_qpm=10, peak_qpm=100, noise=0.0
        )
        assert trace.duration_minutes == 30
        assert trace.qpm[19] == pytest.approx(100.0)
        assert trace.qpm[-1] < trace.qpm[19]

    def test_shapes_deterministic_per_seed(self):
        a = build_shape("diurnal", seed=3, duration_minutes=40)
        b = build_shape("diurnal", seed=3, duration_minutes=40)
        c = build_shape("diurnal", seed=4, duration_minutes=40)
        assert a.qpm == b.qpm
        assert a.qpm != c.qpm


# --------------------------------------------------------------------- #
# Spec layer
# --------------------------------------------------------------------- #
class TestSpec:
    def test_trace_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(source="weird")
        with pytest.raises(ValueError):
            TraceSpec(source="shape", name="nope")
        with pytest.raises(ValueError):
            TraceSpec(source="replay")

    def test_replay_trace(self):
        spec = TraceSpec(source="replay", qpm=(10.0, 20.0, 30.0), scale=2.0)
        trace = spec.build(seed=0)
        assert trace.qpm == (20.0, 40.0, 60.0)

    def test_preset_trace_param_overrides(self):
        spec = TraceSpec(source="library", name="constant", params={"qpm": 50.0})
        trace = spec.build(seed=0, duration_minutes=5)
        assert trace.duration_minutes == 5
        assert trace.qpm[0] == 50.0

    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0)  # neither worker nor fraction
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0, worker_id=1, fleet_fraction=0.5)
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0, recover_at_minute=4.0, worker_id=1)

    def test_fault_event_worker_ids(self):
        assert FaultEvent(fail_at_minute=1.0, worker_id=3).worker_ids(8) == (3,)
        assert FaultEvent(fail_at_minute=1.0, fleet_fraction=0.5).worker_ids(8) == (0, 1, 2, 3)
        assert FaultEvent(fail_at_minute=1.0, fleet_fraction=0.1).worker_ids(4) == (0,)

    def test_scenario_requires_presets(self):
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                description="d",
                trace=TraceSpec(source="library", name="constant"),
                presets={"small": Preset()},
            )

    def test_preset_drift_override_is_validated(self):
        # Preset-level drift overrides must satisfy the same schedule rules
        # as scenario-level ones (phase 0 at t=0, increasing starts).
        with pytest.raises(ValueError):
            Preset(drift=(DriftPhase(start_minute=30.0, complexity_bias=0.5),))
        with pytest.raises(ValueError):
            Preset(
                drift=(
                    DriftPhase(start_minute=0.0),
                    DriftPhase(start_minute=0.0, complexity_bias=0.5),
                )
            )

    def test_network_window_validation(self):
        with pytest.raises(ValueError):
            NetworkWindow(start_minute=5.0, end_minute=5.0, condition="outage")
        with pytest.raises(ValueError):
            NetworkWindow(start_minute=0.0, end_minute=5.0, condition="weird")

    @pytest.mark.parametrize("name", scenario_names())
    def test_dict_round_trip(self, name):
        scenario = get_scenario(name)
        payload = scenario.to_dict()
        json.dumps(payload)  # must be JSON-serialisable
        assert Scenario.from_dict(payload) == scenario


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_catalog_size(self):
        assert len(list_scenarios()) >= 8

    def test_required_presets(self):
        for scenario in list_scenarios():
            assert {"small", "full"} <= set(scenario.presets)

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_scenario("nope")

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("preset", ["small", "full"])
    def test_traces_build(self, name, preset):
        scenario = get_scenario(name)
        trace = scenario.trace.build(seed=0, **scenario.preset(preset).trace_params)
        assert trace.duration_minutes > 0


# --------------------------------------------------------------------- #
# Drifting request streams
# --------------------------------------------------------------------- #
class TestPhasedRequestStream:
    def test_phase_validation(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=2, qpm=30.0)
        ds = PromptDataset.synthetic(count=10, seed=0)
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[])
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[(60.0, ds)])
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[(0.0, ds), (0.0, ds)])

    def test_switches_dataset_at_boundary(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=4, qpm=60.0)
        early = PromptDataset.synthetic(count=50, seed=1)
        late = PromptDataset.synthetic(count=50, seed=2)
        stream = PhasedRequestStream(trace, phases=[(0.0, early), (120.0, late)], seed=0)
        early_texts = {p.text for p in early}
        late_texts = {p.text for p in late}
        for timed in stream:
            expected = early_texts if timed.arrival_time_s < 120.0 else late_texts
            assert timed.prompt.text in expected

    def test_same_arrival_times_as_plain_stream(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=40.0)
        ds = PromptDataset.synthetic(count=30, seed=1)
        other = PromptDataset.synthetic(count=30, seed=2)
        plain = [
            t.arrival_time_s
            for t in PhasedRequestStream(trace, phases=[(0.0, ds)], seed=5)
        ]
        phased = [
            t.arrival_time_s
            for t in PhasedRequestStream(trace, phases=[(0.0, ds), (90.0, other)], seed=5)
        ]
        assert plain == phased


# --------------------------------------------------------------------- #
# Running scenarios
# --------------------------------------------------------------------- #
def _min_fleet(run):
    return min(m.fleet_workers for m in run.result.minute_series[1:-1])


#: Behavioural assertion per scenario: the small preset must not just
#: complete, it must exercise what the catalog says it exercises.
SCENARIO_CHECKS = {
    "steady-baseline": lambda run: run.summary.slo_violation_ratio < 0.1,
    "flash-crowd": lambda run: run.trace.peak_qpm > 2.0 * run.trace.qpm[0],
    "diurnal-24h": lambda run: run.trace.peak_qpm > 2.0 * min(run.trace.qpm),
    "autoscale-updown": lambda run: run.summary.workers_added > 0
    and run.summary.fleet_peak_workers > run.config.num_workers,
    "fault-storm": lambda run: _min_fleet(run) < run.config.num_workers,
    "drift-recalibration": lambda run: run.extras["retraining_events"] >= 1,
    "degraded-network": lambda run: run.extras["strategy_switches"] >= 2,
    "cache-cold-start": lambda run: run.config.cache_warm_prompts == 0
    and run.extras["retrieval_hit_rate"] < 1.0,
    "bursty-load-switch": lambda run: run.extras["strategy_switches"] >= 2,
    "fig16-xl": lambda run: run.summary.slo_violation_ratio < 0.1
    and run.summary.total_completions > 500,
    # Sequential legs of the sharded scenarios: the elastic fleet must
    # actually scale, and the skewed burst must pile up behind the hot
    # tenant's share while the cold tenant stays healthy — the backlog the
    # sharded run's work stealing exists to migrate.
    "sharded-autoscale": lambda run: run.summary.workers_added > 0
    and run.summary.fleet_peak_workers > run.config.num_workers,
    "sharded-steal": lambda run: run.summary.tenant("hot").admission_delayed > 100
    and run.summary.tenant("cold").slo_violation_ratio < 0.1,
    "tenant-fair-share": lambda run: _fair_share_ok(run),
    "tenant-noisy-neighbor": lambda run: _noisy_neighbor_ok(run),
    "tenant-tiered-slo": lambda run: _tiered_slo_ok(run),
    # Chaos family: each check pins the *injected* failure actually biting
    # (the contracts certify the invariants that must survive it).
    "chaos-gray-failure": lambda run: run.system.cluster.workers_degraded >= 2
    and _min_fleet(run) == run.config.num_workers,  # slow, not gone
    "chaos-correlated-failure": lambda run: _min_fleet(run)
    <= run.config.num_workers / 2
    and run.system.cluster.workers_degraded >= 1,
    "chaos-cache-partition": lambda run: run.extras["strategy_switches"] >= 2
    and run.extras["cache_tenants"]["beta"]["entries"]
    == run.extras["cache_tenants"]["beta"]["quota"],
    "chaos-admission-storm": lambda run: _admission_storm_ok(run),
    "chaos-eviction-storm": lambda run: all(
        row["entries"] == row["quota"]
        for row in run.extras["cache_tenants"].values()
    ),
    # Cache-tier family: each check pins the tier mechanism under test
    # actually firing (the cache-tier contract certifies the ledgers).
    "cache-node-failure": lambda run: run.extras["cache_tier"]["shards"] == 3
    and _replica_reads(run) > 0,
    "cache-shard-rebalance": lambda run: run.extras["cache_tier"]["shards"] == 3
    and run.extras["cache_tier"]["moved_entries"] > 0,
    "cache-hot-shard": lambda run: run.extras["cache_tier"]["replication"] == 2
    and _replica_reads(run) > 0,
    "chaos-cache-poison": lambda run: run.extras["cache_tier"]["poison"][
        "entries_poisoned"
    ]
    > 0
    and run.extras["cache_tier"]["poison"]["served"] == 0,
}


def _replica_reads(run) -> int:
    return sum(
        row["replica_reads"]
        for row in run.extras["cache_tier"]["per_shard"].values()
    )


def _admission_storm_ok(run):
    """The flash crowd piles up behind the storm tenant's share alone."""
    storm = run.summary.tenant("storm")
    gold = run.summary.tenant("gold")
    return (
        storm.admission_delayed > 500
        and storm.slo_violation_ratio > 0.3
        and gold.slo_violation_ratio < 0.05
    )


def _fair_share_ok(run):
    """Equal-weight tenants are served near-identically."""
    summary = run.summary
    alpha, beta = summary.tenant("alpha"), summary.tenant("beta")
    balanced = abs(alpha.completions - beta.completions) <= 0.25 * max(
        alpha.completions, beta.completions
    )
    return (
        summary.fair_share_index > 0.98
        and alpha.slo_violation_ratio < 0.05
        and beta.slo_violation_ratio < 0.05
        and balanced
    )


def _noisy_neighbor_ok(run):
    """The flash crowd hurts only the tenant that caused it."""
    quiet = run.summary.tenant("quiet")
    noisy = run.summary.tenant("noisy")
    return (
        quiet.slo_violation_ratio < 0.05
        and noisy.slo_violation_ratio > 0.3
        and noisy.admission_delayed > 100
        and quiet.completions == quiet.arrivals  # nothing of the trickle lost
    )


def _tiered_slo_ok(run):
    """SLO classes order both violations (against own budgets) and latency."""
    gold = run.summary.tenant("gold")
    standard = run.summary.tenant("standard")
    best_effort = run.summary.tenant("best-effort")
    return (
        gold.slo_violation_ratio <= standard.slo_violation_ratio + 0.02
        and standard.slo_violation_ratio <= best_effort.slo_violation_ratio + 0.02
        and gold.p99_latency_s < best_effort.p99_latency_s
        and gold.mean_relative_quality >= gold.quality_floor
    )


class TestRunScenarios:
    @pytest.mark.parametrize("name", scenario_names())
    def test_small_preset_completes_and_exercises(self, name):
        run = run_scenario(name, preset="small", seed=0)
        assert run.summary.total_completions > 0
        assert run.summary.total_arrivals >= run.summary.total_completions
        report = run.report()
        assert report.scenario == name
        assert report.preset == "small"
        assert report.seed == 0
        assert len(report.minutes) >= run.trace.duration_minutes
        check = SCENARIO_CHECKS.get(name)
        if check is not None:
            assert check(run), f"behavioural check failed for {name}"
        # Every registered scenario certifies: its declared contracts must
        # verify straight from the report it just produced.
        failed = violations(verify_report(report, get_scenario(name).contracts))
        assert not failed, f"contract violations for {name}: {[str(r) for r in failed]}"

    def test_system_override(self):
        run = run_scenario("steady-baseline", preset="small", seed=0, system="clipper-ht")
        assert run.summary.system == "Clipper-HT"

    def test_baselines_honor_cache_warm_prompts(self):
        # cache-cold-start sets cache_warm_prompts=0; every caching system
        # must start with an empty vector index, not just Argus.
        run = run_scenario("cache-cold-start", preset="small", seed=0, system="nirvana")
        assert run.extras["retrieval_hit_rate"] < 1.0

    def test_registry_catalog_matches_checks(self):
        # Every registered scenario should carry a behavioural check so new
        # entries are forced to declare what they exercise.
        assert set(SCENARIO_CHECKS) == set(scenario_names())


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        first = run_scenario("steady-baseline", preset="small", seed=7)
        second = run_scenario("steady-baseline", preset="small", seed=7)
        assert first.summary == second.summary
        assert first.report().to_json() == second.report().to_json()

    def test_different_seed_differs(self):
        first = run_scenario("steady-baseline", preset="small", seed=7)
        other = run_scenario("steady-baseline", preset="small", seed=8)
        assert first.summary != other.summary

    def test_matches_hand_wired_runner(self):
        """steady-baseline small == the equivalent manual ExperimentRunner call."""
        scenario = get_scenario("steady-baseline")
        preset = scenario.preset("small")
        config = ArgusConfig(**{**scenario.config, **preset.config}, seed=7)
        trace = TraceLibrary(seed=7).constant(**preset.trace_params)
        system = build_system("argus", config=config)
        runner = ExperimentRunner(seed=7, dataset_size=preset.dataset_size, drain_s=preset.drain_s)
        hand_wired = runner.run(system, trace)

        via_scenario = run_scenario(scenario, preset="small", seed=7)
        assert via_scenario.summary == hand_wired.summary

    def test_drifting_scenario_deterministic(self):
        first = run_scenario("drift-recalibration", preset="small", seed=3)
        second = run_scenario("drift-recalibration", preset="small", seed=3)
        assert first.summary == second.summary
        assert first.report().to_json() == second.report().to_json()


# --------------------------------------------------------------------- #
# Contracts: the certification layer
# --------------------------------------------------------------------- #
def _contract_report(summary=None, extras=None, minutes=()):
    """A minimal report dict in the exact ScenarioReport JSON shape."""
    payload = {
        "summary": {
            "total_arrivals": 100,
            "total_completions": 90,
            "dropped_requests": 6,
            "fleet_peak_workers": 4,
        },
        "extras": dict(extras or {}),
        "minutes": list(minutes),
    }
    payload["summary"].update(summary or {})
    return payload


def _one(report, contract):
    (result,) = verify_report(report, (contract,))
    return result


class TestContracts:
    def test_vocabulary(self):
        assert contract_names() == [
            "cache-poison",
            "cache-quota",
            "cache-tier",
            "conservation",
            "fairness",
            "fleet-budget",
            "ledger-matches-fleet",
            "slo-ordering",
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "nope",
            "conservation:1",  # takes no parameter
            "fairness:high",  # not a number
            "fairness:0",  # bound must be in (0, 1]
            "fairness:1.5",
            "slo-ordering:-0.1",  # tolerance must be non-negative
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_contract(bad)

    def test_parse_accepts_parameters(self):
        assert parse_contract("fairness") == ("fairness", None)
        assert parse_contract("fairness:0.9") == ("fairness", 0.9)
        assert parse_contract("slo-ordering:0") == ("slo-ordering", 0.0)

    def test_conservation(self):
        balanced = {"outstanding": {"worker_queues": 3, "admission_backlog": 1}}
        assert _one(_contract_report(extras=balanced), "conservation").passed
        leaky = {"outstanding": {"worker_queues": 0, "admission_backlog": 0}}
        result = _one(_contract_report(extras=leaky), "conservation")
        assert not result.passed and "leaked" in result.detail

    def test_conservation_vacuous_without_accounting(self):
        result = _one(_contract_report(), "conservation")
        assert result.passed and result.vacuous

    def test_fairness_bound(self):
        report = _contract_report(summary={"fair_share_index": 0.85})
        assert _one(report, "fairness").passed  # default bound 0.8
        assert not _one(report, "fairness:0.9").passed
        vacuous = _one(_contract_report(), "fairness")
        assert vacuous.passed and vacuous.vacuous

    def test_slo_ordering(self):
        def tenants(gold, standard):
            return {
                "tenants": [
                    {"slo_class": "gold", "slo_violation_ratio": gold},
                    {"slo_class": "standard", "slo_violation_ratio": standard},
                ]
            }

        # A small inversion sits inside the default 0.02 slack (a tighter
        # class graded against a tighter budget can invert by noise)…
        assert _one(_contract_report(summary=tenants(0.01, 0.0)), "slo-ordering").passed
        # …a real inversion does not, and a zero tolerance allows none.
        assert not _one(
            _contract_report(summary=tenants(0.5, 0.1)), "slo-ordering"
        ).passed
        assert not _one(
            _contract_report(summary=tenants(0.01, 0.0)), "slo-ordering:0"
        ).passed
        single = _contract_report(
            summary={"tenants": [{"slo_class": "gold", "slo_violation_ratio": 0.0}]}
        )
        assert _one(single, "slo-ordering").vacuous

    def test_cache_quota(self):
        within = {"cache_tenants": {"a": {"entries": 10, "quota": 10}}}
        assert _one(_contract_report(extras=within), "cache-quota").passed
        over = {"cache_tenants": {"a": {"entries": 11, "quota": 10}}}
        assert not _one(_contract_report(extras=over), "cache-quota").passed
        unbounded = {"cache_tenants": {"a": {"entries": 999, "quota": None}}}
        assert _one(_contract_report(extras=unbounded), "cache-quota").passed
        assert _one(_contract_report(), "cache-quota").vacuous

    def test_fleet_budget(self):
        budget = {"fleet_budget": {"min_workers": 2, "max_workers": 4}}
        ok = _contract_report(extras=budget, minutes=[{"minute": 0, "fleet_workers": 4.0}])
        assert _one(ok, "fleet-budget").passed
        over_peak = _contract_report(summary={"fleet_peak_workers": 5}, extras=budget)
        assert not _one(over_peak, "fleet-budget").passed
        over_minute = _contract_report(
            extras=budget, minutes=[{"minute": 3, "fleet_workers": 5.0}]
        )
        assert not _one(over_minute, "fleet-budget").passed
        under_min = _contract_report(
            extras={
                **budget,
                "autoscale_events": [
                    {"action": "scale_in", "fleet_size": 1, "time_s": 60.0}
                ],
            }
        )
        assert not _one(under_min, "fleet-budget").passed
        assert _one(_contract_report(), "fleet-budget").vacuous

    def test_fleet_budget_sharded_peak_exemption(self):
        # A sharded merge sums per-shard peaks that need not be simultaneous,
        # so only the sequential peak is held to the global max.
        extras = {
            "sharding": {"autoscale": {"min_workers": 2, "max_workers": 4}},
        }
        report = _contract_report(summary={"fleet_peak_workers": 6}, extras=extras)
        assert _one(report, "fleet-budget").passed

    def test_ledger_matches_fleet(self):
        def barriers(*entries):
            return {
                "sharding": {
                    "autoscale": {"min_workers": 2, "max_workers": 6},
                    "barriers": list(entries),
                }
            }

        good = barriers(
            {"window_end_s": 60.0, "epoch": False, "committed_workers": 4,
             "in_fleet": 3, "failed_workers": 1},
            # Epoch barriers record post-grant ledgers against pre-apply
            # fleets — only the budget bounds apply there.
            {"window_end_s": 120.0, "epoch": True, "committed_workers": 6,
             "in_fleet": 3, "failed_workers": 1},
        )
        assert _one(_contract_report(extras=good), "ledger-matches-fleet").passed
        drifted = barriers(
            {"window_end_s": 60.0, "epoch": False, "committed_workers": 5,
             "in_fleet": 3, "failed_workers": 1},
        )
        result = _one(_contract_report(extras=drifted), "ledger-matches-fleet")
        assert not result.passed and "live fleet" in result.detail
        out_of_budget = barriers(
            {"window_end_s": 60.0, "epoch": True, "committed_workers": 7,
             "in_fleet": 7, "failed_workers": 0},
        )
        assert not _one(_contract_report(extras=out_of_budget), "ledger-matches-fleet").passed
        assert _one(_contract_report(), "ledger-matches-fleet").vacuous

    def test_verify_report_accepts_report_objects(self):
        class Boxed:
            def to_dict(self):
                return _contract_report(summary={"fair_share_index": 0.99})

        (result,) = verify_report(Boxed(), ("fairness",))
        assert result.passed and not result.vacuous

    def test_every_scenario_declares_contracts(self):
        for scenario in list_scenarios():
            assert scenario.contracts, f"{scenario.name} declares no contracts"

    def test_registry_rejects_uncertified_scenarios(self):
        def scenario(contracts):
            return Scenario(
                name="uncertified",
                description="d",
                trace=TraceSpec(source="library", name="constant"),
                contracts=contracts,
                presets={"small": Preset(), "full": Preset()},
            )

        with pytest.raises(ValueError, match="declares no contracts"):
            register(scenario(()))
        with pytest.raises(ValueError, match="unknown contract"):
            register(scenario(("conservaton",)))
        assert "uncertified" not in scenario_names()  # rejected before insert


# --------------------------------------------------------------------- #
# Metamorphic contracts: relations between pairs of runs
# --------------------------------------------------------------------- #
class TestMetamorphic:
    def test_weight_doubling_is_a_noop_for_admission(self):
        result = check_weight_scaling_noop("tenant-fair-share", preset="small", seed=0)
        assert result.passed and not result.vacuous, result.detail

    def test_weight_doubling_is_a_noop_for_priority_queues(self):
        # tenant-tiered-slo runs the DRR priority queues with 3:2:1 weights;
        # doubling them must not change the interleaving (the DRR quantum is
        # the weight *ratio*, not the raw weight).
        result = check_weight_scaling_noop("tenant-tiered-slo", preset="small", seed=0)
        assert result.passed and not result.vacuous, result.detail

    def test_weight_scaling_vacuous_without_tenants(self):
        result = check_weight_scaling_noop("steady-baseline", preset="small", seed=0)
        assert result.passed and result.vacuous

    def test_load_and_fleet_scale_together(self):
        # flash-crowd has a real violation spike, so this checks the ratio
        # is preserved under stress, not just that zero stays zero.
        result = check_load_fleet_scaling("flash-crowd", preset="small", seed=0)
        assert result.passed, result.detail


# --------------------------------------------------------------------- #
# Tenancy composed with drift (per-tenant detector state)
# --------------------------------------------------------------------- #
class TestTenantDrift:
    def test_tenants_and_drift_compose(self):
        # Two equal tenants, a mid-run shift to harder prompts: each
        # tenant's *own* detector must notice and trigger a retrain.
        # (This composition used to be rejected outright.)
        scenario = Scenario(
            name="tenants-with-drift",
            description="tenancy composed with classifier drift",
            trace=TraceSpec(
                source="library",
                name="constant",
                params={"duration_minutes": 30, "qpm": 120.0},
            ),
            config={
                "num_workers": 4,
                "classifier_training_prompts": 400,
                "profiling_prompts": 200,
                "classifier_epochs": 8,
                "tenants": [
                    {"name": "alpha", "weight": 1.0, "traffic_share": 0.5},
                    {"name": "beta", "weight": 1.0, "traffic_share": 0.5},
                ],
            },
            drift=(
                DriftPhase(start_minute=0.0, complexity_bias=0.0),
                DriftPhase(start_minute=15.0, complexity_bias=0.55),
            ),
            contracts=("conservation", "fairness:0.9"),
            presets={"small": Preset(dataset_size=1200), "full": Preset(dataset_size=4000)},
        )
        run = run_scenario(scenario, preset="small", seed=0)
        events = run.extras["drift_events"]
        assert set(events) == {"alpha", "beta"}
        assert all(count >= 1 for count in events.values())
        assert run.extras["retraining_events"] >= 2
        assert not violations(verify_report(run.report(), scenario.contracts))


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_list_json(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        names = json.loads(capsys.readouterr().out)
        assert names == scenario_names()

    def test_list_table(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_describe(self, capsys):
        assert cli_main(["describe", "fault-storm"]) == 0
        out = capsys.readouterr().out
        assert "fault-storm" in out and "preset" in out

    def test_describe_json_round_trips(self, capsys):
        assert cli_main(["describe", "fault-storm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert Scenario.from_dict(payload) == get_scenario("fault-storm")

    def test_unknown_scenario_exit_code(self, capsys):
        assert cli_main(["describe", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = cli_main(
            [
                "run",
                "--scenario",
                "steady-baseline",
                "--preset",
                "small",
                "--seed",
                "0",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenario"] == "steady-baseline"
        assert payload["preset"] == "small"
        assert payload["summary"]["total_completions"] > 0
        assert len(payload["minutes"]) > 0

    def test_run_check_contracts(self, capsys):
        code = cli_main(
            [
                "run",
                "--scenario",
                "steady-baseline",
                "--preset",
                "small",
                "--seed",
                "0",
                "--check-contracts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "contracts (steady-baseline):" in out
        assert "conservation ok" in out

    def test_run_check_contracts_quiet_on_pass(self, capsys):
        # --quiet suppresses passing contract output; violations would still
        # print (to stderr) and flip the exit code — that is the CI mode.
        code = cli_main(
            [
                "run",
                "--scenario",
                "steady-baseline",
                "--preset",
                "small",
                "--seed",
                "0",
                "--check-contracts",
                "--quiet",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == "" and captured.err == ""


# --------------------------------------------------------------------- #
# Supporting pieces
# --------------------------------------------------------------------- #
class TestSupportingPieces:
    def test_cache_warm_prompts_validation(self):
        with pytest.raises(ValueError):
            ArgusConfig(cache_warm_prompts=-1)

    def test_runner_rejects_stream_for_other_trace(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=2, qpm=10.0)
        other = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=10.0)
        ds = PromptDataset.synthetic(count=20, seed=0)
        stream = PhasedRequestStream(other, phases=[(0.0, ds)], seed=0)
        runner = ExperimentRunner(seed=0, dataset_size=20)
        config = ArgusConfig(
            num_workers=2, classifier_training_prompts=200, profiling_prompts=100
        )
        system = build_system("clipper-ha", config=config)
        with pytest.raises(ValueError):
            runner.run(system, trace, stream=stream)

    def test_modified_scenario_runs(self):
        """dataclasses.replace composes with the runtime (the example's trick)."""
        scenario = get_scenario("autoscale-updown")
        fixed = replace(
            scenario,
            name="autoscale-updown-fixed",
            config={**scenario.config, "autoscale_enabled": False},
        )
        run = run_scenario(fixed, preset="small", seed=0)
        assert run.summary.workers_added == 0
        assert run.summary.fleet_peak_workers == run.config.num_workers
