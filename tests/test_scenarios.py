"""Tests for the declarative scenario engine, shapes and the repro CLI."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.config import ArgusConfig
from repro.experiments.runner import ExperimentRunner, build_system
from repro.prompts.dataset import PromptDataset
from repro.scenarios import (
    DriftPhase,
    FaultEvent,
    NetworkWindow,
    Preset,
    Scenario,
    TraceSpec,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
)
from repro.scenarios.cli import main as cli_main
from repro.workloads.replay import PhasedRequestStream
from repro.workloads.shapes import SHAPES, build_shape
from repro.workloads.traces import TraceLibrary


# --------------------------------------------------------------------- #
# Workload shapes
# --------------------------------------------------------------------- #
class TestShapes:
    def test_registry_names(self):
        assert {"steady", "diurnal", "flash-crowd", "ramp", "updown"} <= set(SHAPES)

    def test_unknown_shape(self):
        with pytest.raises(KeyError):
            build_shape("nope")

    def test_steady(self):
        trace = build_shape("steady", duration_minutes=10, qpm=50.0)
        assert trace.duration_minutes == 10
        assert all(q == 50.0 for q in trace.qpm)

    def test_diurnal_trough_to_peak(self):
        trace = build_shape(
            "diurnal", duration_minutes=60, base_qpm=20.0, peak_qpm=100.0, noise=0.0
        )
        assert trace.duration_minutes == 60
        assert trace.qpm[0] == pytest.approx(20.0, abs=1.0)
        assert trace.peak_qpm == pytest.approx(100.0, rel=0.02)

    def test_flash_crowd_spike(self):
        trace = build_shape(
            "flash-crowd",
            duration_minutes=30,
            base_qpm=40.0,
            spike_start_minute=10,
            spike_minutes=5,
            spike_multiplier=3.0,
            noise=0.0,
        )
        assert trace.qpm[9] == pytest.approx(40.0)
        assert trace.qpm[12] == pytest.approx(120.0)
        # Decay tail returns towards baseline.
        assert trace.qpm[-1] == pytest.approx(40.0)

    def test_updown_shape(self):
        trace = build_shape(
            "updown", ramp_minutes=20, descent_minutes=10, start_qpm=10, peak_qpm=100, noise=0.0
        )
        assert trace.duration_minutes == 30
        assert trace.qpm[19] == pytest.approx(100.0)
        assert trace.qpm[-1] < trace.qpm[19]

    def test_shapes_deterministic_per_seed(self):
        a = build_shape("diurnal", seed=3, duration_minutes=40)
        b = build_shape("diurnal", seed=3, duration_minutes=40)
        c = build_shape("diurnal", seed=4, duration_minutes=40)
        assert a.qpm == b.qpm
        assert a.qpm != c.qpm


# --------------------------------------------------------------------- #
# Spec layer
# --------------------------------------------------------------------- #
class TestSpec:
    def test_trace_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(source="weird")
        with pytest.raises(ValueError):
            TraceSpec(source="shape", name="nope")
        with pytest.raises(ValueError):
            TraceSpec(source="replay")

    def test_replay_trace(self):
        spec = TraceSpec(source="replay", qpm=(10.0, 20.0, 30.0), scale=2.0)
        trace = spec.build(seed=0)
        assert trace.qpm == (20.0, 40.0, 60.0)

    def test_preset_trace_param_overrides(self):
        spec = TraceSpec(source="library", name="constant", params={"qpm": 50.0})
        trace = spec.build(seed=0, duration_minutes=5)
        assert trace.duration_minutes == 5
        assert trace.qpm[0] == 50.0

    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0)  # neither worker nor fraction
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0, worker_id=1, fleet_fraction=0.5)
        with pytest.raises(ValueError):
            FaultEvent(fail_at_minute=5.0, recover_at_minute=4.0, worker_id=1)

    def test_fault_event_worker_ids(self):
        assert FaultEvent(fail_at_minute=1.0, worker_id=3).worker_ids(8) == (3,)
        assert FaultEvent(fail_at_minute=1.0, fleet_fraction=0.5).worker_ids(8) == (0, 1, 2, 3)
        assert FaultEvent(fail_at_minute=1.0, fleet_fraction=0.1).worker_ids(4) == (0,)

    def test_scenario_requires_presets(self):
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                description="d",
                trace=TraceSpec(source="library", name="constant"),
                presets={"small": Preset()},
            )

    def test_preset_drift_override_is_validated(self):
        # Preset-level drift overrides must satisfy the same schedule rules
        # as scenario-level ones (phase 0 at t=0, increasing starts).
        with pytest.raises(ValueError):
            Preset(drift=(DriftPhase(start_minute=30.0, complexity_bias=0.5),))
        with pytest.raises(ValueError):
            Preset(
                drift=(
                    DriftPhase(start_minute=0.0),
                    DriftPhase(start_minute=0.0, complexity_bias=0.5),
                )
            )

    def test_network_window_validation(self):
        with pytest.raises(ValueError):
            NetworkWindow(start_minute=5.0, end_minute=5.0, condition="outage")
        with pytest.raises(ValueError):
            NetworkWindow(start_minute=0.0, end_minute=5.0, condition="weird")

    @pytest.mark.parametrize("name", scenario_names())
    def test_dict_round_trip(self, name):
        scenario = get_scenario(name)
        payload = scenario.to_dict()
        json.dumps(payload)  # must be JSON-serialisable
        assert Scenario.from_dict(payload) == scenario


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_catalog_size(self):
        assert len(list_scenarios()) >= 8

    def test_required_presets(self):
        for scenario in list_scenarios():
            assert {"small", "full"} <= set(scenario.presets)

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_scenario("nope")

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("preset", ["small", "full"])
    def test_traces_build(self, name, preset):
        scenario = get_scenario(name)
        trace = scenario.trace.build(seed=0, **scenario.preset(preset).trace_params)
        assert trace.duration_minutes > 0


# --------------------------------------------------------------------- #
# Drifting request streams
# --------------------------------------------------------------------- #
class TestPhasedRequestStream:
    def test_phase_validation(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=2, qpm=30.0)
        ds = PromptDataset.synthetic(count=10, seed=0)
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[])
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[(60.0, ds)])
        with pytest.raises(ValueError):
            PhasedRequestStream(trace, phases=[(0.0, ds), (0.0, ds)])

    def test_switches_dataset_at_boundary(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=4, qpm=60.0)
        early = PromptDataset.synthetic(count=50, seed=1)
        late = PromptDataset.synthetic(count=50, seed=2)
        stream = PhasedRequestStream(trace, phases=[(0.0, early), (120.0, late)], seed=0)
        early_texts = {p.text for p in early}
        late_texts = {p.text for p in late}
        for timed in stream:
            expected = early_texts if timed.arrival_time_s < 120.0 else late_texts
            assert timed.prompt.text in expected

    def test_same_arrival_times_as_plain_stream(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=40.0)
        ds = PromptDataset.synthetic(count=30, seed=1)
        other = PromptDataset.synthetic(count=30, seed=2)
        plain = [
            t.arrival_time_s
            for t in PhasedRequestStream(trace, phases=[(0.0, ds)], seed=5)
        ]
        phased = [
            t.arrival_time_s
            for t in PhasedRequestStream(trace, phases=[(0.0, ds), (90.0, other)], seed=5)
        ]
        assert plain == phased


# --------------------------------------------------------------------- #
# Running scenarios
# --------------------------------------------------------------------- #
def _min_fleet(run):
    return min(m.fleet_workers for m in run.result.minute_series[1:-1])


#: Behavioural assertion per scenario: the small preset must not just
#: complete, it must exercise what the catalog says it exercises.
SCENARIO_CHECKS = {
    "steady-baseline": lambda run: run.summary.slo_violation_ratio < 0.1,
    "flash-crowd": lambda run: run.trace.peak_qpm > 2.0 * run.trace.qpm[0],
    "diurnal-24h": lambda run: run.trace.peak_qpm > 2.0 * min(run.trace.qpm),
    "autoscale-updown": lambda run: run.summary.workers_added > 0
    and run.summary.fleet_peak_workers > run.config.num_workers,
    "fault-storm": lambda run: _min_fleet(run) < run.config.num_workers,
    "drift-recalibration": lambda run: run.extras["retraining_events"] >= 1,
    "degraded-network": lambda run: run.extras["strategy_switches"] >= 2,
    "cache-cold-start": lambda run: run.config.cache_warm_prompts == 0
    and run.extras["retrieval_hit_rate"] < 1.0,
    "bursty-load-switch": lambda run: run.extras["strategy_switches"] >= 2,
    "fig16-xl": lambda run: run.summary.slo_violation_ratio < 0.1
    and run.summary.total_completions > 500,
    # Sequential legs of the sharded scenarios: the elastic fleet must
    # actually scale, and the skewed burst must pile up behind the hot
    # tenant's share while the cold tenant stays healthy — the backlog the
    # sharded run's work stealing exists to migrate.
    "sharded-autoscale": lambda run: run.summary.workers_added > 0
    and run.summary.fleet_peak_workers > run.config.num_workers,
    "sharded-steal": lambda run: run.summary.tenant("hot").admission_delayed > 100
    and run.summary.tenant("cold").slo_violation_ratio < 0.1,
    "tenant-fair-share": lambda run: _fair_share_ok(run),
    "tenant-noisy-neighbor": lambda run: _noisy_neighbor_ok(run),
    "tenant-tiered-slo": lambda run: _tiered_slo_ok(run),
}


def _fair_share_ok(run):
    """Equal-weight tenants are served near-identically."""
    summary = run.summary
    alpha, beta = summary.tenant("alpha"), summary.tenant("beta")
    balanced = abs(alpha.completions - beta.completions) <= 0.25 * max(
        alpha.completions, beta.completions
    )
    return (
        summary.fair_share_index > 0.98
        and alpha.slo_violation_ratio < 0.05
        and beta.slo_violation_ratio < 0.05
        and balanced
    )


def _noisy_neighbor_ok(run):
    """The flash crowd hurts only the tenant that caused it."""
    quiet = run.summary.tenant("quiet")
    noisy = run.summary.tenant("noisy")
    return (
        quiet.slo_violation_ratio < 0.05
        and noisy.slo_violation_ratio > 0.3
        and noisy.admission_delayed > 100
        and quiet.completions == quiet.arrivals  # nothing of the trickle lost
    )


def _tiered_slo_ok(run):
    """SLO classes order both violations (against own budgets) and latency."""
    gold = run.summary.tenant("gold")
    standard = run.summary.tenant("standard")
    best_effort = run.summary.tenant("best-effort")
    return (
        gold.slo_violation_ratio <= standard.slo_violation_ratio + 0.02
        and standard.slo_violation_ratio <= best_effort.slo_violation_ratio + 0.02
        and gold.p99_latency_s < best_effort.p99_latency_s
        and gold.mean_relative_quality >= gold.quality_floor
    )


class TestRunScenarios:
    @pytest.mark.parametrize("name", scenario_names())
    def test_small_preset_completes_and_exercises(self, name):
        run = run_scenario(name, preset="small", seed=0)
        assert run.summary.total_completions > 0
        assert run.summary.total_arrivals >= run.summary.total_completions
        report = run.report()
        assert report.scenario == name
        assert report.preset == "small"
        assert report.seed == 0
        assert len(report.minutes) >= run.trace.duration_minutes
        check = SCENARIO_CHECKS.get(name)
        if check is not None:
            assert check(run), f"behavioural check failed for {name}"

    def test_system_override(self):
        run = run_scenario("steady-baseline", preset="small", seed=0, system="clipper-ht")
        assert run.summary.system == "Clipper-HT"

    def test_baselines_honor_cache_warm_prompts(self):
        # cache-cold-start sets cache_warm_prompts=0; every caching system
        # must start with an empty vector index, not just Argus.
        run = run_scenario("cache-cold-start", preset="small", seed=0, system="nirvana")
        assert run.extras["retrieval_hit_rate"] < 1.0

    def test_registry_catalog_matches_checks(self):
        # Every registered scenario should carry a behavioural check so new
        # entries are forced to declare what they exercise.
        assert set(SCENARIO_CHECKS) == set(scenario_names())


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        first = run_scenario("steady-baseline", preset="small", seed=7)
        second = run_scenario("steady-baseline", preset="small", seed=7)
        assert first.summary == second.summary
        assert first.report().to_json() == second.report().to_json()

    def test_different_seed_differs(self):
        first = run_scenario("steady-baseline", preset="small", seed=7)
        other = run_scenario("steady-baseline", preset="small", seed=8)
        assert first.summary != other.summary

    def test_matches_hand_wired_runner(self):
        """steady-baseline small == the equivalent manual ExperimentRunner call."""
        scenario = get_scenario("steady-baseline")
        preset = scenario.preset("small")
        config = ArgusConfig(**{**scenario.config, **preset.config}, seed=7)
        trace = TraceLibrary(seed=7).constant(**preset.trace_params)
        system = build_system("argus", config=config)
        runner = ExperimentRunner(seed=7, dataset_size=preset.dataset_size, drain_s=preset.drain_s)
        hand_wired = runner.run(system, trace)

        via_scenario = run_scenario(scenario, preset="small", seed=7)
        assert via_scenario.summary == hand_wired.summary

    def test_drifting_scenario_deterministic(self):
        first = run_scenario("drift-recalibration", preset="small", seed=3)
        second = run_scenario("drift-recalibration", preset="small", seed=3)
        assert first.summary == second.summary
        assert first.report().to_json() == second.report().to_json()


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_list_json(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        names = json.loads(capsys.readouterr().out)
        assert names == scenario_names()

    def test_list_table(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_describe(self, capsys):
        assert cli_main(["describe", "fault-storm"]) == 0
        out = capsys.readouterr().out
        assert "fault-storm" in out and "preset" in out

    def test_describe_json_round_trips(self, capsys):
        assert cli_main(["describe", "fault-storm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert Scenario.from_dict(payload) == get_scenario("fault-storm")

    def test_unknown_scenario_exit_code(self, capsys):
        assert cli_main(["describe", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = cli_main(
            [
                "run",
                "--scenario",
                "steady-baseline",
                "--preset",
                "small",
                "--seed",
                "0",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenario"] == "steady-baseline"
        assert payload["preset"] == "small"
        assert payload["summary"]["total_completions"] > 0
        assert len(payload["minutes"]) > 0


# --------------------------------------------------------------------- #
# Supporting pieces
# --------------------------------------------------------------------- #
class TestSupportingPieces:
    def test_cache_warm_prompts_validation(self):
        with pytest.raises(ValueError):
            ArgusConfig(cache_warm_prompts=-1)

    def test_runner_rejects_stream_for_other_trace(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=2, qpm=10.0)
        other = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=10.0)
        ds = PromptDataset.synthetic(count=20, seed=0)
        stream = PhasedRequestStream(other, phases=[(0.0, ds)], seed=0)
        runner = ExperimentRunner(seed=0, dataset_size=20)
        config = ArgusConfig(
            num_workers=2, classifier_training_prompts=200, profiling_prompts=100
        )
        system = build_system("clipper-ha", config=config)
        with pytest.raises(ValueError):
            runner.run(system, trace, stream=stream)

    def test_modified_scenario_runs(self):
        """dataclasses.replace composes with the runtime (the example's trick)."""
        scenario = get_scenario("autoscale-updown")
        fixed = replace(
            scenario,
            name="autoscale-updown-fixed",
            config={**scenario.config, "autoscale_enabled": False},
        )
        run = run_scenario(fixed, preset="small", seed=0)
        assert run.summary.workers_added == 0
        assert run.summary.fleet_peak_workers == run.config.num_workers
