"""Tests for the live-mode gateway: interceptors, HTTP endpoints, loadgen."""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, replace

import pytest

from repro.core.config import ArgusConfig
from repro.gateway.interceptors import RequestContext, compose, tenant_resolution
from repro.gateway.loadgen import replay_async
from repro.gateway.server import Gateway, prompt_from_payload
from repro.gateway.workers import StubWorker, least_backlog_worker
from repro.metrics.prometheus import render_prometheus
from repro.models.zoo import ModelZoo
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.runtime.wall import WallClockRuntime
from repro.scenarios import get_scenario, verify_report, violations


def _prompt(tenant: str = "") -> Prompt:
    return replace(PromptDataset.synthetic(count=1, seed=7).prompts[0], tenant=tenant)


# --------------------------------------------------------------------- #
# Interceptor chain
# --------------------------------------------------------------------- #


def test_compose_runs_interceptors_outermost_first():
    order: list[str] = []

    def make(tag):
        async def layer(ctx, call_next):
            order.append(f"{tag}:in")
            await call_next(ctx)
            order.append(f"{tag}:out")

        return layer

    async def terminal(ctx):
        order.append("terminal")

    handler = compose([make("a"), make("b")], terminal)
    asyncio.run(handler(RequestContext(prompt=_prompt(), received_at_s=0.0)))
    assert order == ["a:in", "b:in", "terminal", "b:out", "a:out"]


def test_tenant_resolution_drops_unknown_tenant():
    async def terminal(ctx):
        ctx.response["reached"] = True

    handler = compose([tenant_resolution(frozenset({"gold"}))], terminal)

    ctx = RequestContext(prompt=_prompt(tenant="intruder"), received_at_s=0.0)
    asyncio.run(handler(ctx))
    assert ctx.dropped and "intruder" in ctx.drop_reason

    ok = RequestContext(prompt=_prompt(tenant="gold"), received_at_s=0.0)
    asyncio.run(handler(ok))
    assert not ok.dropped and ok.response["reached"]


def test_least_backlog_worker_prefers_idle_then_lowest_id():
    zoo = ModelZoo()
    runtime = WallClockRuntime()
    workers = [
        StubWorker(worker_id=i, gpu="A100", zoo=zoo, runtime=runtime) for i in range(3)
    ]
    assert least_backlog_worker(workers).worker_id == 0
    workers[0].backlog_s = 5.0
    assert least_backlog_worker(workers).worker_id == 1


def test_prompt_from_payload_round_trips_and_accepts_text_shorthand():
    original = PromptDataset.synthetic(count=3, seed=11).prompts[2]
    rebuilt = prompt_from_payload(asdict(original))
    assert rebuilt == original
    nested = prompt_from_payload({"prompt": asdict(original)})
    assert nested == original
    shorthand = prompt_from_payload({"text": "a cat", "tenant": "gold"})
    assert shorthand.text == "a cat" and shorthand.tenant == "gold"


# --------------------------------------------------------------------- #
# Prometheus rendering
# --------------------------------------------------------------------- #


def test_render_prometheus_shape():
    gateway = Gateway(config=ArgusConfig(num_workers=2), time_scale=100.0)
    text = render_prometheus(gateway.collector, extra_gauges={"fleet_workers": 2.0})
    assert "# TYPE repro_requests_offered_total counter" in text
    assert "repro_fleet_workers 2.0" in text
    assert text.endswith("\n")


# --------------------------------------------------------------------- #
# Gateway end-to-end over HTTP
# --------------------------------------------------------------------- #


def test_gateway_smoke_replay_satisfies_contracts():
    """A time-compressed live replay of steady-baseline satisfies the same
    contract set the simulated run certifies."""
    scenario = get_scenario("steady-baseline")
    result = asyncio.run(
        replay_async(
            scenario,
            preset="small",
            time_scale=300.0,
            max_minutes=2.0,
            check_contracts=True,
        )
    )
    assert result.requests_sent > 0
    assert result.requests_ok == result.requests_sent
    assert not violations(result.contract_results)
    summary = result.report["summary"]
    assert summary["total_completions"] == result.requests_ok
    assert "repro_requests_served_total" in result.metrics_text


def test_gateway_config_endpoint_round_trips():
    async def scenario():
        config = ArgusConfig(num_workers=3, seed=42)
        gateway = Gateway(config=config, time_scale=200.0)
        await gateway.start()
        try:
            reader, writer = await asyncio.open_connection(gateway.host, gateway.port)
            writer.write(b"GET /config HTTP/1.1\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
        finally:
            await gateway.stop()
        body = raw.split(b"\r\n\r\n", 1)[1]
        return config, json.loads(body)

    config, payload = asyncio.run(scenario())
    assert ArgusConfig.from_dict(payload) == config


def test_gateway_rejects_unknown_route_and_bad_json():
    async def scenario():
        gateway = Gateway(config=ArgusConfig(num_workers=1), time_scale=200.0)
        await gateway.start()
        try:
            status_404, _, _ = await gateway.handle("GET", "/nope", b"")
            status_400, _, body = await gateway.handle("POST", "/v1/generate", b"{broken")
        finally:
            await gateway.stop()
        return status_404, status_400, body

    status_404, status_400, body = asyncio.run(scenario())
    assert status_404 == 404
    assert status_400 == 400
    assert b"invalid JSON" in body


def test_gateway_report_passes_verify_report_dict_shape():
    async def scenario():
        gateway = Gateway(config=ArgusConfig(num_workers=2), time_scale=500.0)
        await gateway.start()
        try:
            status, payload = await gateway.handle_generate(
                {"text": "a quiet harbor at dawn"}
            )
            assert status == 200 and payload["latency_s"] > 0
            return gateway.report_dict()
        finally:
            await gateway.stop()

    report = asyncio.run(scenario())
    results = verify_report(report, ("conservation",))
    assert not violations(results)
    assert report["system"] == "gateway"
    assert report["extras"]["outstanding"] == {
        "worker_queues": 0,
        "admission_backlog": 0,
    }


def test_gateway_tenanted_config_reports_cache_tenants():
    config = ArgusConfig(
        num_workers=2,
        tenants=[
            {"name": "gold", "weight": 2.0, "traffic_share": 0.5, "cache_quota": 50},
            {"name": "bronze", "weight": 1.0, "traffic_share": 0.5, "cache_quota": 25},
        ],
    )

    async def scenario():
        gateway = Gateway(config=config, time_scale=500.0)
        await gateway.start()
        try:
            status, payload = await gateway.handle_generate(
                {"text": "tenant traffic", "tenant": "gold"}
            )
            assert status == 200
            status_bad, payload_bad = await gateway.handle_generate(
                {"text": "who dis", "tenant": "intruder"}
            )
            return gateway.report_dict(), status_bad, payload_bad
        finally:
            await gateway.stop()

    report, status_bad, payload_bad = asyncio.run(scenario())
    assert status_bad == 422 and payload_bad["dropped"]
    cache_tenants = report["extras"]["cache_tenants"]
    assert set(cache_tenants) == {"gold", "bronze"}
    assert cache_tenants["gold"]["entries"] <= cache_tenants["gold"]["quota"]
    results = verify_report(report, ("conservation", "cache-quota"))
    assert not violations(results)
    assert all(r.passed for r in results)


@pytest.mark.bench
def test_gateway_full_small_scenario_live():
    """Full steady-baseline small preset over the wire (the CI smoke run)."""
    result = asyncio.run(
        replay_async("steady-baseline", preset="small", time_scale=120.0, check_contracts=True)
    )
    assert result.requests_ok == result.requests_sent > 500
    assert not violations(result.contract_results)
