"""Tests for workload traces, arrival processes and request streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prompts.dataset import PromptDataset
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.replay import RequestStream
from repro.workloads.traces import TraceLibrary, WorkloadTrace


class TestWorkloadTrace:
    def test_basic_properties(self):
        trace = WorkloadTrace("t", (10.0, 20.0, 30.0))
        assert trace.duration_minutes == 3
        assert trace.peak_qpm == 30.0
        assert trace.mean_qpm == pytest.approx(20.0)
        assert trace.total_queries == pytest.approx(60.0)

    def test_qpm_at_clamps(self):
        trace = WorkloadTrace("t", (10.0, 20.0))
        assert trace.qpm_at(0) == 10.0
        assert trace.qpm_at(5) == 20.0

    def test_scaled(self):
        trace = WorkloadTrace("t", (10.0, 20.0)).scaled(2.0)
        assert trace.qpm == (20.0, 40.0)

    def test_normalized_range(self):
        trace = WorkloadTrace("t", (0.0, 5.0, 10.0)).normalized(50.0, 150.0)
        assert min(trace.qpm) == pytest.approx(50.0)
        assert max(trace.qpm) == pytest.approx(150.0)

    def test_window(self):
        trace = WorkloadTrace("t", tuple(float(i) for i in range(10)))
        window = trace.window(3, 4)
        assert window.qpm == (3.0, 4.0, 5.0, 6.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace("t", ())

    def test_negative_qpm_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace("t", (1.0, -2.0))


class TestTraceLibrary:
    def test_twitter_shape(self):
        trace = TraceLibrary(seed=0).twitter_like(duration_minutes=240)
        assert trace.duration_minutes == 240
        assert trace.peak_qpm > trace.mean_qpm > 0
        # Diurnal: a peak exists away from the start.
        peak_minute = int(np.argmax(trace.qpm))
        assert 40 < peak_minute < 200

    def test_sysx_normalised_to_requested_range(self):
        trace = TraceLibrary(seed=0).sysx_like(duration_minutes=200, min_qpm=40, max_qpm=150)
        assert min(trace.qpm) >= 39.0
        assert max(trace.qpm) <= 151.0

    def test_sysx_is_jittery(self):
        trace = TraceLibrary(seed=0).sysx_like(duration_minutes=300)
        diffs = np.abs(np.diff(trace.qpm))
        assert np.mean(diffs) > 1.0

    def test_bursty_has_two_regimes(self):
        trace = TraceLibrary(seed=0).bursty(duration_minutes=300, low_qpm=50, high_qpm=150)
        values = np.asarray(trace.qpm)
        low_frac = np.mean(values < 100)
        assert 0.1 < low_frac < 0.9
        assert np.any(values < 70) and np.any(values > 130)

    def test_increasing_is_monotone_on_average(self):
        trace = TraceLibrary(seed=0).increasing(duration_minutes=200, start_qpm=40, end_qpm=200)
        first = np.mean(trace.qpm[:50])
        last = np.mean(trace.qpm[-50:])
        assert last > first * 2

    def test_constant(self):
        trace = TraceLibrary().constant(duration_minutes=10, qpm=77.0)
        assert all(q == 77.0 for q in trace.qpm)

    def test_by_name(self):
        library = TraceLibrary(seed=0)
        assert library.by_name("constant", duration_minutes=5).duration_minutes == 5
        with pytest.raises(KeyError):
            library.by_name("unknown")

    def test_reproducible(self):
        a = TraceLibrary(seed=3).twitter_like(duration_minutes=60)
        b = TraceLibrary(seed=3).twitter_like(duration_minutes=60)
        assert a.qpm == b.qpm


class TestArrivalProcess:
    def test_poisson_count_matches_rate(self):
        trace = WorkloadTrace("t", tuple(120.0 for _ in range(30)))
        arrivals = ArrivalProcess(seed=0).poisson_arrivals(trace)
        expected = trace.total_queries
        assert abs(len(arrivals) - expected) < 0.1 * expected

    def test_poisson_arrivals_sorted_and_in_range(self):
        trace = WorkloadTrace("t", (60.0, 60.0))
        arrivals = ArrivalProcess(seed=0).poisson_arrivals(trace)
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 120.0 for t in arrivals)

    def test_uniform_exact_count(self):
        trace = WorkloadTrace("t", (10.0, 20.0))
        arrivals = ArrivalProcess().uniform_arrivals(trace)
        assert len(arrivals) == 30

    def test_zero_rate_minute_produces_nothing(self):
        trace = WorkloadTrace("t", (0.0, 60.0))
        arrivals = ArrivalProcess(seed=0).poisson_arrivals(trace)
        assert all(t >= 60.0 for t in arrivals)

    def test_dispatch_on_kind(self):
        trace = WorkloadTrace("t", (30.0,))
        process = ArrivalProcess(seed=0)
        assert len(process.arrivals(trace, kind="uniform")) == 30
        with pytest.raises(ValueError):
            process.arrivals(trace, kind="weird")

    def test_reproducible(self):
        trace = WorkloadTrace("t", (100.0,) * 5)
        a = ArrivalProcess(seed=4).poisson_arrivals(trace)
        b = ArrivalProcess(seed=4).poisson_arrivals(trace)
        assert a == b


class TestRequestStream:
    def test_stream_pairs_prompts_in_order(self):
        trace = WorkloadTrace("t", (30.0, 30.0))
        dataset = PromptDataset.synthetic(count=10, seed=0)
        stream = RequestStream(trace, dataset, seed=0, arrival_kind="uniform")
        assert len(stream) == 60
        # Prompts cycle through the dataset in arrival order.
        assert stream[0].prompt.prompt_id == 0
        assert stream[10].prompt.prompt_id == 0
        assert stream[11].prompt.prompt_id == 1

    def test_duration(self):
        trace = WorkloadTrace("t", (10.0,) * 7)
        stream = RequestStream(trace, PromptDataset.synthetic(count=5, seed=0), seed=0)
        assert stream.duration_s == pytest.approx(420.0)

    def test_between_filters_by_time(self):
        trace = WorkloadTrace("t", (60.0, 60.0))
        stream = RequestStream(
            trace, PromptDataset.synthetic(count=5, seed=0), arrival_kind="uniform"
        )
        first_minute = stream.between(0.0, 60.0)
        assert len(first_minute) == 60

    def test_empty_dataset_rejected(self):
        trace = WorkloadTrace("t", (10.0,))
        with pytest.raises(ValueError):
            RequestStream(trace, PromptDataset([]))

    def test_offered_qpm_passthrough(self):
        trace = WorkloadTrace("t", (15.0, 25.0))
        stream = RequestStream(trace, PromptDataset.synthetic(count=5, seed=0))
        assert stream.offered_qpm(1) == 25.0
