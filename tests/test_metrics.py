"""Tests for the SLO policy, metrics collector and run summaries."""

from __future__ import annotations

import pytest

from repro.cluster.requests import CompletedRequest, Request
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import summarize
from repro.metrics.slo import SloPolicy
from repro.models.zoo import Strategy
from repro.prompts.generator import PromptGenerator


def make_completion(arrival, start, end, prompt, rank=0):
    request = Request(
        request_id=0,
        prompt=prompt,
        arrival_time_s=arrival,
        strategy=Strategy.AC,
        predicted_rank=rank,
        assigned_rank=rank,
    )
    return CompletedRequest(
        request=request,
        worker_id=0,
        start_time_s=start,
        completion_time_s=end,
        effective_rank=rank,
        service_time_s=end - start,
    )


@pytest.fixture()
def prompt():
    return PromptGenerator(seed=0).generate_one()


class TestSloPolicy:
    def test_default_budget_is_three_times_sdxl(self):
        policy = SloPolicy()
        assert policy.budget_s == pytest.approx(3.0 * 4.2)

    def test_violation_detection(self):
        policy = SloPolicy()
        assert not policy.is_violation(10.0)
        assert policy.is_violation(13.0)

    def test_violation_ratio(self):
        policy = SloPolicy()
        assert policy.violation_ratio([5.0, 20.0, 6.0, 30.0]) == pytest.approx(0.5)
        assert policy.violation_ratio([]) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SloPolicy(multiplier=0)


class TestMetricsCollector:
    def test_record_completion_and_summaries(self, prompt):
        collector = MetricsCollector()
        collector.record_arrival(0.0)
        collector.record_completion(make_completion(0.0, 1.0, 5.0, prompt), 20.0, 21.0)
        assert collector.total_completions == 1
        assert collector.total_arrivals == 1
        assert collector.mean_pickscore() == pytest.approx(20.0)
        assert collector.mean_relative_quality() == pytest.approx(20.0 / 21.0)
        assert collector.slo_violation_ratio() == 0.0

    def test_slo_violation_counted(self, prompt):
        collector = MetricsCollector()
        collector.record_completion(make_completion(0.0, 10.0, 20.0, prompt), 20.0, 21.0)
        assert collector.slo_violation_ratio() == 1.0

    def test_effective_accuracy_excludes_violations(self, prompt):
        collector = MetricsCollector()
        collector.record_completion(make_completion(0.0, 1.0, 5.0, prompt), 21.0, 21.0)
        collector.record_completion(make_completion(0.0, 10.0, 30.0, prompt), 10.0, 21.0)
        assert collector.effective_accuracy() == pytest.approx(21.0)

    def test_minute_series_buckets_by_completion_minute(self, prompt):
        collector = MetricsCollector()
        collector.record_arrival(10.0)
        collector.record_arrival(70.0)
        collector.record_completion(make_completion(10.0, 11.0, 15.0, prompt), 20.0, 21.0)
        collector.record_completion(make_completion(70.0, 71.0, 76.0, prompt), 19.0, 21.0)
        series = collector.minute_series()
        assert [m.minute for m in series] == [0, 1]
        assert series[0].completions == 1
        assert series[1].arrivals == 1

    def test_minute_series_with_offered_load(self, prompt):
        collector = MetricsCollector()
        collector.record_completion(make_completion(0.0, 1.0, 5.0, prompt), 20.0, 21.0)
        series = collector.minute_series(offered={0: 100.0, 1: 50.0})
        assert series[0].offered_qpm == 100.0
        assert series[1].offered_qpm == 50.0

    def test_latency_percentiles(self, prompt):
        collector = MetricsCollector()
        for latency in (2.0, 4.0, 6.0, 8.0):
            collector.record_completion(make_completion(0.0, 0.0, latency, prompt), 20.0, 21.0)
        assert collector.latency_percentile(50) == pytest.approx(5.0)
        assert collector.latency_percentile(100) == pytest.approx(8.0)

    def test_drops_counted(self):
        collector = MetricsCollector()
        collector.record_drop()
        collector.record_drop()
        assert collector.dropped_requests == 2

    def test_empty_collector_safe(self):
        collector = MetricsCollector()
        assert collector.slo_violation_ratio() == 0.0
        assert collector.effective_accuracy() == 0.0
        assert collector.latency_percentile(99) == 0.0
        assert collector.minute_series() == []


class TestRunSummary:
    def test_summarize(self, prompt):
        collector = MetricsCollector()
        collector.record_arrival(0.0)
        collector.record_arrival(1.0)
        collector.record_completion(make_completion(0.0, 1.0, 5.0, prompt), 20.0, 21.0)
        summary = summarize(
            "Argus", "twitter", collector, duration_minutes=2.0, cluster_utilization=0.8,
            model_loads=3,
        )
        assert summary.system == "Argus"
        assert summary.total_arrivals == 2
        assert summary.mean_served_qpm == pytest.approx(0.5)
        assert summary.cluster_utilization == pytest.approx(0.8)
        assert summary.model_loads == 3
        row = summary.as_row()
        assert row["system"] == "Argus"
        assert 0.0 <= summary.goodput_fraction <= 1.0

    def test_goodput_fraction_zero_when_no_arrivals(self):
        summary = summarize("x", "y", MetricsCollector(), duration_minutes=1.0)
        assert summary.goodput_fraction == 0.0
