"""Tests for the discrete-event simulation engine, clock and random streams."""

from __future__ import annotations

import pytest

from repro.simulation import Clock, RandomStreams, SimulationEngine, stable_hash


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        assert clock.now_minutes() == pytest.approx(10.0 / 60.0)

    def test_cannot_go_backwards(self):
        clock = Clock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_reset(self):
        clock = Clock(start=10.0)
        clock.reset()
        assert clock.now() == 0.0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_different_inputs_differ(self):
        assert stable_hash("hello") != stable_hash("world")

    def test_respects_bit_width(self):
        assert stable_hash("abc", bits=16) < (1 << 16)


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=1)
        a = streams.stream("arrivals")
        b = streams.stream("arrivals")
        assert a is b

    def test_streams_are_independent(self):
        streams = RandomStreams(seed=1)
        first = streams.stream("a").random(5).tolist()
        # Consuming stream "b" must not perturb stream "a"'s future draws.
        streams2 = RandomStreams(seed=1)
        streams2.stream("b").random(100)
        second = streams2.stream("a").random(5).tolist()
        assert first == second

    def test_seed_changes_values(self):
        a = RandomStreams(seed=1).stream("x").random(5).tolist()
        b = RandomStreams(seed=2).stream("x").random(5).tolist()
        assert a != b

    def test_spawn_is_deterministic(self):
        a = RandomStreams(seed=1).spawn("child").stream("x").random(3).tolist()
        b = RandomStreams(seed=1).spawn("child").stream("x").random(3).tolist()
        assert a == b


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(5.0, lambda e: order.append("late"))
        engine.schedule_at(1.0, lambda e: order.append("early"))
        engine.schedule_at(3.0, lambda e: order.append("middle"))
        engine.run()
        assert order == ["early", "middle", "late"]

    def test_ties_broken_by_insertion_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda e: order.append("first"))
        engine.schedule_at(1.0, lambda e: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(7.5, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine()
        engine.schedule_at(10.0, lambda e: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda e: None)

    def test_schedule_in_relative_delay(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_in(2.0, lambda e: times.append(e.now))
        engine.run()
        assert times == [2.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda e: None)

    def test_callbacks_can_schedule_more_events(self):
        engine = SimulationEngine()
        times = []

        def chain(e):
            times.append(e.now)
            if len(times) < 3:
                e.schedule_in(1.0, chain)

        engine.schedule_at(0.0, chain)
        engine.run()
        assert times == [0.0, 1.0, 2.0]

    def test_run_until_stops_before_future_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(100.0, lambda e: fired.append(True))
        engine.run(until=50.0)
        assert fired == []
        assert engine.now == 50.0
        engine.run(until=150.0)
        assert fired == [True]

    def test_cancelled_events_do_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append(True))
        event.cancel()
        engine.run()
        assert fired == []

    def test_periodic_scheduling(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_every(10.0, lambda e: ticks.append(e.now))
        engine.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_with_start_delay(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_every(10.0, lambda e: ticks.append(e.now), start_delay=0.0)
        engine.run(until=25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_max_events_bound(self):
        engine = SimulationEngine()
        engine.schedule_every(1.0, lambda e: None)
        processed = engine.run(until=1000.0, max_events=5)
        assert processed == 5

    def test_halt_stops_run(self):
        engine = SimulationEngine()
        seen = []

        def stop(e):
            seen.append(e.now)
            e.halt()

        engine.schedule_at(1.0, stop)
        engine.schedule_at(2.0, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [1.0]

    def test_pending_and_processed_counters(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda e: None)
        engine.schedule_at(2.0, lambda e: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
        assert engine.events_processed == 2

    def test_rng_access(self):
        engine = SimulationEngine(seed=3)
        values = engine.rng("test").random(3)
        assert len(values) == 3
