"""Tenant-priority worker queues: weighted DRR across per-tenant EDF heaps.

The discipline under test (``cluster/queues.py``) is what lets the
``tenant-noisy-neighbor`` scenario run with ``admission_rate_factor=1.0``:
admission no longer has to over-throttle aggregate inflow, because a
flash-crowd tenant's stale backlog cannot starve the quiet tenants at the
worker queues.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.queues import TenantPriorityQueue
from repro.cluster.requests import Request
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset


@pytest.fixture(scope="module")
def prompts():
    return PromptDataset.synthetic(count=32, seed=11).prompts


def _request(prompts, request_id, tenant, arrival_s, deadline_s=None):
    prompt = dataclasses.replace(prompts[request_id % len(prompts)], tenant=tenant)
    return Request(
        request_id=request_id,
        prompt=prompt,
        arrival_time_s=arrival_s,
        strategy=Strategy.AC,
        predicted_rank=0,
        assigned_rank=0,
        deadline_s=deadline_s,
    )


class TestTenantPriorityQueue:
    def test_deque_surface(self, prompts):
        queue = TenantPriorityQueue()
        assert len(queue) == 0 and not queue
        queue.append(_request(prompts, 0, "a", 1.0))
        assert len(queue) == 1 and queue
        assert queue.popleft().request_id == 0
        with pytest.raises(IndexError):
            queue.popleft()
        queue.append(_request(prompts, 1, "a", 2.0))
        queue.clear()
        assert len(queue) == 0

    def test_edf_within_one_tenant(self, prompts):
        queue = TenantPriorityQueue()
        # Enqueued out of deadline order; deadline = arrival + SLO budget.
        queue.append(_request(prompts, 0, "a", 10.0, deadline_s=40.0))
        queue.append(_request(prompts, 1, "a", 12.0, deadline_s=20.0))
        queue.append(_request(prompts, 2, "a", 11.0, deadline_s=30.0))
        assert [queue.popleft().request_id for _ in range(3)] == [1, 2, 0]

    def test_falls_back_to_arrival_order_without_deadlines(self, prompts):
        queue = TenantPriorityQueue()
        queue.append(_request(prompts, 0, "a", 30.0))
        queue.append(_request(prompts, 1, "a", 10.0))
        queue.append(_request(prompts, 2, "a", 20.0))
        assert [queue.popleft().request_id for _ in range(3)] == [1, 2, 0]

    def test_stale_backlog_cannot_starve_quiet_tenant(self, prompts):
        # The EDF-under-overload failure mode: the offender's admission-
        # delayed backlog carries much older arrivals than the quiet
        # tenant's fresh trickle.  Global EDF would drain all of tenant
        # "noisy" first; DRR must interleave.
        queue = TenantPriorityQueue({"noisy": 1.0, "quiet": 1.0})
        for i in range(10):
            queue.append(_request(prompts, i, "noisy", float(i)))
        queue.append(_request(prompts, 100, "quiet", 500.0))
        queue.append(_request(prompts, 101, "quiet", 501.0))
        first_six = [queue.popleft().prompt.tenant for _ in range(6)]
        assert first_six.count("quiet") == 2

    def test_weighted_share_under_contention(self, prompts):
        queue = TenantPriorityQueue({"gold": 3.0, "bronze": 1.0})
        for i in range(40):
            queue.append(_request(prompts, i, "gold", float(i)))
            queue.append(_request(prompts, 1000 + i, "bronze", float(i)))
        served = [queue.popleft().prompt.tenant for _ in range(40)]
        gold = served.count("gold")
        # 3x weight -> ~3x the drain rate while both are backlogged.
        assert 28 <= gold <= 32

    def test_lone_tenant_gets_every_slot(self, prompts):
        queue = TenantPriorityQueue({"a": 0.25, "b": 1.0})
        for i in range(8):
            queue.append(_request(prompts, i, "a", float(i)))
        # No other backlog: fractional weight must not stall the queue.
        assert [queue.popleft().request_id for _ in range(8)] == list(range(8))

    def test_idle_tenant_banks_no_credit(self, prompts):
        queue = TenantPriorityQueue({"a": 1.0, "b": 1.0})
        for i in range(4):
            queue.append(_request(prompts, i, "a", float(i)))
        for _ in range(4):
            queue.popleft()
        # "b" was idle through all of that; when both tenants backlog again
        # the split must restart even, not favour the previously idle one.
        for i in range(10, 16):
            queue.append(_request(prompts, i, "a", float(i)))
            queue.append(_request(prompts, 100 + i, "b", float(i)))
        served = [queue.popleft().prompt.tenant for _ in range(8)]
        assert 3 <= served.count("b") <= 5

    def test_iteration_is_deterministic_ring_then_edf(self, prompts):
        queue = TenantPriorityQueue()
        queue.append(_request(prompts, 0, "b", 5.0, deadline_s=50.0))
        queue.append(_request(prompts, 1, "a", 6.0, deadline_s=10.0))
        queue.append(_request(prompts, 2, "b", 7.0, deadline_s=20.0))
        ids = [request.request_id for request in queue]
        # "b" was seen first -> its subqueue iterates first, EDF inside.
        assert ids == [2, 0, 1]
        assert len(queue) == 3  # iteration does not consume


class TestWorkerIntegration:
    def test_worker_uses_priority_queue_when_enabled(self, prompts):
        from repro.core.config import ArgusConfig
        from repro.experiments.runner import build_system

        config = ArgusConfig(
            num_workers=2,
            tenants=[
                {"name": "alpha", "traffic_share": 0.5, "weight": 2.0},
                {"name": "beta", "traffic_share": 0.5},
            ],
            tenant_priority_queues=True,
        )
        system = build_system("argus", config=config)
        for worker in system.cluster.workers:
            assert isinstance(worker._queue, TenantPriorityQueue)

    def test_default_worker_queue_stays_fifo(self, prompts):
        from collections import deque

        from repro.core.config import ArgusConfig
        from repro.experiments.runner import build_system

        system = build_system("argus", config=ArgusConfig(num_workers=1))
        assert isinstance(system.cluster.workers[0]._queue, deque)
