"""Tests for the prompt generator, dataset, embeddings and features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prompts.dataset import PromptDataset
from repro.prompts.embedding import PromptEmbedder
from repro.prompts.features import PromptFeaturizer
from repro.prompts.generator import Prompt, PromptGenerator


class TestPromptGenerator:
    def test_generates_requested_count(self):
        assert len(PromptGenerator(seed=0).generate(50)) == 50

    def test_reproducible_with_same_seed(self):
        a = [p.text for p in PromptGenerator(seed=7).generate(20)]
        b = [p.text for p in PromptGenerator(seed=7).generate(20)]
        assert a == b

    def test_different_seed_differs(self):
        a = [p.text for p in PromptGenerator(seed=1).generate(20)]
        b = [p.text for p in PromptGenerator(seed=2).generate(20)]
        assert a != b

    def test_prompt_ids_are_sequential(self):
        prompts = PromptGenerator(seed=0).generate(10)
        assert [p.prompt_id for p in prompts] == list(range(10))

    def test_complexity_in_unit_interval(self):
        for prompt in PromptGenerator(seed=0).generate(300):
            assert 0.0 <= prompt.complexity <= 1.0

    def test_complexity_increases_with_entities(self):
        prompts = PromptGenerator(seed=0).generate(2000)
        single = np.mean([p.complexity for p in prompts if p.num_entities == 1])
        multi = np.mean([p.complexity for p in prompts if p.num_entities >= 3])
        assert multi > single + 0.2

    def test_complexity_bias_shifts_distribution(self):
        base = np.mean([p.complexity for p in PromptGenerator(seed=0).generate(500)])
        shifted = np.mean(
            [p.complexity for p in PromptGenerator(seed=0, complexity_bias=0.3).generate(500)]
        )
        assert shifted > base + 0.15

    def test_topics_within_range(self):
        generator = PromptGenerator(seed=0, num_topics=8)
        for prompt in generator.generate(100):
            assert 0 <= prompt.topic < 8

    def test_text_nonempty_and_tokenizable(self):
        for prompt in PromptGenerator(seed=0).generate(50):
            assert prompt.num_tokens >= 2
            assert prompt.content_hash() == prompt.content_hash()


class TestPromptDataset:
    def test_synthetic_size(self):
        assert len(PromptDataset.synthetic(count=123, seed=0)) == 123

    def test_indexing_and_iteration(self):
        ds = PromptDataset.synthetic(count=10, seed=0)
        assert isinstance(ds[0], Prompt)
        assert len(list(iter(ds))) == 10

    def test_split_preserves_order_and_size(self):
        ds = PromptDataset.synthetic(count=100, seed=0)
        train, test = ds.split(train_fraction=0.8)
        assert len(train) == 80 and len(test) == 20
        assert train[0].prompt_id == ds[0].prompt_id
        assert test[0].prompt_id == ds[80].prompt_id

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            PromptDataset.synthetic(count=10, seed=0).split(train_fraction=1.5)

    def test_sample_without_replacement(self):
        ds = PromptDataset.synthetic(count=50, seed=0)
        sample = ds.sample(20, seed=1)
        ids = [p.prompt_id for p in sample]
        assert len(set(ids)) == 20

    def test_sample_too_large_raises(self):
        with pytest.raises(ValueError):
            PromptDataset.synthetic(count=5, seed=0).sample(10)

    def test_window(self):
        ds = PromptDataset.synthetic(count=30, seed=0)
        window = ds.window(5, 10)
        assert len(window) == 10
        assert window[0].prompt_id == ds[5].prompt_id

    def test_cycle_wraps_around(self):
        ds = PromptDataset.synthetic(count=3, seed=0)
        cycled = list(ds.cycle(7))
        assert len(cycled) == 7
        assert cycled[3].prompt_id == cycled[0].prompt_id

    def test_complexity_summary_keys(self):
        summary = PromptDataset.synthetic(count=100, seed=0).complexity_summary()
        assert set(summary) == {"mean", "std", "p10", "p50", "p90"}
        assert 0.0 <= summary["mean"] <= 1.0


class TestPromptEmbedder:
    def test_embedding_is_unit_norm(self, prompts_small):
        embedder = PromptEmbedder(dim=64)
        for prompt in prompts_small[:20]:
            assert np.linalg.norm(embedder.embed(prompt)) == pytest.approx(1.0)

    def test_embedding_deterministic(self, prompts_small):
        embedder = PromptEmbedder(dim=64)
        a = embedder.embed(prompts_small[0])
        b = PromptEmbedder(dim=64).embed(prompts_small[0])
        np.testing.assert_allclose(a, b)

    def test_same_topic_more_similar_than_cross_topic(self, prompts_medium):
        embedder = PromptEmbedder(dim=64)
        by_topic: dict[int, list] = {}
        for prompt in prompts_medium:
            by_topic.setdefault(prompt.topic, []).append(prompt)
        topics = [t for t, ps in by_topic.items() if len(ps) >= 2][:5]
        same, cross = [], []
        for i, topic in enumerate(topics):
            a, b = by_topic[topic][0], by_topic[topic][1]
            same.append(embedder.cosine_similarity(embedder.embed(a), embedder.embed(b)))
            other = by_topic[topics[(i + 1) % len(topics)]][0]
            cross.append(embedder.cosine_similarity(embedder.embed(a), embedder.embed(other)))
        assert np.mean(same) > np.mean(cross) + 0.2

    def test_batch_shape(self, prompts_small):
        embedder = PromptEmbedder(dim=32)
        matrix = embedder.embed_batch(prompts_small[:7])
        assert matrix.shape == (7, 32)

    def test_empty_batch(self):
        assert PromptEmbedder(dim=16).embed_batch([]).shape == (0, 16)

    def test_dim_too_small_rejected(self):
        with pytest.raises(ValueError):
            PromptEmbedder(dim=4)

    def test_cosine_similarity_bounds(self, prompts_small):
        embedder = PromptEmbedder(dim=64)
        a = embedder.embed(prompts_small[0])
        b = embedder.embed(prompts_small[1])
        assert -1.0 - 1e-9 <= embedder.cosine_similarity(a, b) <= 1.0 + 1e-9


class TestPromptFeaturizer:
    def test_dimension(self):
        featurizer = PromptFeaturizer(hashed_dim=48)
        assert featurizer.dim == len(PromptFeaturizer.STRUCTURAL_FEATURES) + 48

    def test_featurize_shape(self, prompts_small):
        featurizer = PromptFeaturizer()
        assert featurizer.featurize(prompts_small[0]).shape == (featurizer.dim,)

    def test_batch_shape(self, prompts_small):
        featurizer = PromptFeaturizer()
        matrix = featurizer.featurize_batch(prompts_small[:9])
        assert matrix.shape == (9, featurizer.dim)

    def test_accepts_raw_text(self):
        featurizer = PromptFeaturizer()
        vector = featurizer.featurize("a red apple on a wooden table, 8k")
        assert vector.shape == (featurizer.dim,)

    def test_deterministic(self, prompts_small):
        featurizer = PromptFeaturizer()
        np.testing.assert_allclose(
            featurizer.featurize(prompts_small[0]), featurizer.featurize(prompts_small[0])
        )

    def test_features_correlate_with_complexity(self, prompts_medium):
        # The "and" count feature tracks entity count, which drives complexity.
        featurizer = PromptFeaturizer(hashed_dim=0)
        and_index = list(PromptFeaturizer.STRUCTURAL_FEATURES).index("num_and")
        values = featurizer.featurize_batch(list(prompts_medium))[:, and_index]
        complexities = np.array([p.complexity for p in prompts_medium])
        correlation = np.corrcoef(values, complexities)[0, 1]
        assert correlation > 0.3

    def test_zero_hashed_dim_allowed(self):
        featurizer = PromptFeaturizer(hashed_dim=0)
        assert featurizer.dim == len(PromptFeaturizer.STRUCTURAL_FEATURES)

    def test_negative_hashed_dim_rejected(self):
        with pytest.raises(ValueError):
            PromptFeaturizer(hashed_dim=-1)

    def test_empty_batch(self):
        featurizer = PromptFeaturizer()
        assert featurizer.featurize_batch([]).shape == (0, featurizer.dim)
