"""Tests for the runtime abstraction layer (SimRuntime / WallClockRuntime)."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import Runtime, SimRuntime, WallClockRuntime, as_runtime
from repro.scenarios import run_scenario
from repro.simulation.engine import SimulationEngine


# --------------------------------------------------------------------- #
# SimRuntime: scheduling semantics over the event heap
# --------------------------------------------------------------------- #


def test_sim_runtime_now_tracks_engine():
    engine = SimulationEngine()
    runtime = SimRuntime(engine)
    assert runtime.now() == 0.0
    engine.schedule_in(5.0, lambda _e: None)
    engine.run()
    assert runtime.now() == 5.0


def test_sim_runtime_schedule_in_and_at():
    engine = SimulationEngine()
    runtime = SimRuntime(engine)
    fired: list[tuple[str, float]] = []
    runtime.schedule_in(2.0, lambda: fired.append(("in", engine.now)))
    runtime.schedule_at(1.0, lambda: fired.append(("at", engine.now)))
    engine.run()
    assert fired == [("at", 1.0), ("in", 2.0)]


def test_sim_runtime_schedule_every_matches_engine_schedule_every():
    """The runtime's repeating chain fires at the same times, in the same
    callback-before-reschedule order, as ``engine.schedule_every``."""
    direct = SimulationEngine()
    direct_times: list[float] = []
    direct.schedule_every(3.0, lambda e: direct_times.append(e.now))
    direct.run(until=14.0)

    via_runtime = SimulationEngine()
    runtime = SimRuntime(via_runtime)
    runtime_times: list[float] = []
    runtime.schedule_every(3.0, lambda: runtime_times.append(via_runtime.now))
    via_runtime.run(until=14.0)

    assert runtime_times == direct_times
    assert runtime_times[0] == 3.0


def test_sim_runtime_schedule_every_cancel_stops_ticks():
    engine = SimulationEngine()
    runtime = SimRuntime(engine)
    ticks: list[float] = []
    task = runtime.schedule_every(1.0, lambda: ticks.append(engine.now))

    def stop(_engine):
        task.cancel()

    engine.schedule_in(3.5, stop)
    engine.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_sim_runtime_sleep_is_unsupported():
    runtime = SimRuntime(SimulationEngine())
    with pytest.raises(NotImplementedError):
        asyncio.run(runtime.sleep(1.0))


def test_as_runtime_coercion():
    engine = SimulationEngine()
    runtime = as_runtime(engine)
    assert isinstance(runtime, SimRuntime)
    assert as_runtime(runtime) is runtime
    assert isinstance(runtime, Runtime)
    with pytest.raises(TypeError):
        as_runtime(object())


# --------------------------------------------------------------------- #
# Bit-identity: the runtime veneer must not perturb simulation results
# --------------------------------------------------------------------- #


def test_sim_runtime_keeps_scenario_bits_stable():
    """Two runs of the same scenario through the runtime-threaded control
    plane produce byte-identical reports (the heap order is unchanged)."""
    first = run_scenario("steady-baseline", preset="small").report().to_json()
    second = run_scenario("steady-baseline", preset="small").report().to_json()
    assert first == second
    assert '"total_completions"' in first


# --------------------------------------------------------------------- #
# WallClockRuntime
# --------------------------------------------------------------------- #


def test_wall_runtime_requires_start():
    runtime = WallClockRuntime()
    with pytest.raises(RuntimeError):
        runtime.now()


def test_wall_runtime_time_scale_compresses_model_time():
    async def scenario():
        runtime = WallClockRuntime(time_scale=100.0)
        runtime.start()
        await runtime.sleep(1.0)  # one model-second = 10ms wall
        return runtime.now()

    elapsed_model = asyncio.run(scenario())
    assert elapsed_model >= 1.0
    assert elapsed_model < 50.0  # would be >=100 if sleep ran in wall seconds


def test_wall_runtime_schedule_in_and_cancel():
    async def scenario():
        runtime = WallClockRuntime(time_scale=50.0)
        runtime.start()
        fired: list[str] = []
        runtime.schedule_in(0.5, lambda: fired.append("kept"))
        cancelled = runtime.schedule_in(0.5, lambda: fired.append("cancelled"))
        cancelled.cancel()
        await runtime.sleep(2.0)
        return fired

    assert asyncio.run(scenario()) == ["kept"]


def test_wall_runtime_schedule_every_ticks_and_cancels():
    async def scenario():
        runtime = WallClockRuntime(time_scale=100.0)
        runtime.start()
        ticks: list[float] = []
        task = runtime.schedule_every(1.0, lambda: ticks.append(runtime.now()))
        await runtime.sleep(3.5)
        task.cancel()
        count_at_cancel = len(ticks)
        await runtime.sleep(3.0)
        return ticks, count_at_cancel

    ticks, count_at_cancel = asyncio.run(scenario())
    assert len(ticks) >= 2
    assert len(ticks) == count_at_cancel  # no ticks after cancel
    assert ticks[0] == pytest.approx(1.0, abs=0.5)


def test_wall_runtime_rejects_bad_time_scale():
    with pytest.raises(ValueError):
        WallClockRuntime(time_scale=0.0)
