"""Tests for the model variant registry, GPU specs and component profiles."""

from __future__ import annotations

import pytest

from repro.models.components import (
    MODEL_COMPONENT_PROFILES,
    arithmetic_intensity,
    component_profiles_for,
    total_flops_per_image,
)
from repro.models.gpus import GPU_SPECS, gpu_by_name
from repro.models.variants import (
    AC_LEVELS,
    SM_VARIANTS,
    TOTAL_DIFFUSION_STEPS,
    ac_level_by_skip,
    variant_by_name,
)


class TestSmVariants:
    def test_six_variants(self):
        assert len(SM_VARIANTS) == 6

    def test_ranks_are_contiguous(self):
        assert [v.approximation_rank for v in SM_VARIANTS] == list(range(6))

    def test_sdxl_is_rank_zero(self):
        assert SM_VARIANTS[0].name == "SD-XL"
        assert SM_VARIANTS[0].approximation_rank == 0

    def test_latency_decreases_with_rank(self):
        latencies = [v.latency_a100_s for v in SM_VARIANTS]
        assert latencies == sorted(latencies, reverse=True)

    def test_sdxl_latency_matches_paper(self):
        # §5.1: SD-XL averages 4.2 seconds per image on an A100.
        assert variant_by_name("SD-XL").latency_a100_s == pytest.approx(4.2)

    def test_tiny_latency_matches_table2(self):
        assert variant_by_name("Tiny-SD").latency_a100_s == pytest.approx(2.18)

    def test_load_times_match_table2(self):
        # Table 2 "Accelerate" column.
        assert variant_by_name("SD-XL").load_time_s == pytest.approx(9.42)
        assert variant_by_name("Tiny-SD").load_time_s == pytest.approx(2.91)

    def test_sizes_decrease_with_rank(self):
        sizes = [v.size_gib for v in SM_VARIANTS]
        assert sizes == sorted(sizes, reverse=True)

    def test_peak_throughput_consistent_with_latency(self):
        for variant in SM_VARIANTS:
            assert variant.peak_throughput_qpm == pytest.approx(60.0 / variant.latency_a100_s)

    def test_lookup_is_case_insensitive(self):
        assert variant_by_name("sd-xl") is SM_VARIANTS[0]

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            variant_by_name("SD-99")


class TestAcLevels:
    def test_six_levels(self):
        assert len(AC_LEVELS) == 6

    def test_skip_values_match_paper(self):
        assert [level.skip_steps for level in AC_LEVELS] == [0, 5, 10, 15, 20, 25]

    def test_k0_matches_base_latency(self):
        assert ac_level_by_skip(0).latency_a100_s == pytest.approx(4.2)

    def test_latency_decreases_with_skip(self):
        latencies = [level.latency_a100_s for level in AC_LEVELS]
        assert latencies == sorted(latencies, reverse=True)

    def test_kept_steps(self):
        assert ac_level_by_skip(20).kept_steps == TOTAL_DIFFUSION_STEPS - 20

    def test_state_size_matches_paper(self):
        # §4.7: the cached intermediate noise state is 144 KB.
        assert ac_level_by_skip(10).state_size_kib == pytest.approx(144.0)

    def test_unknown_skip_raises(self):
        with pytest.raises(KeyError):
            ac_level_by_skip(7)


class TestGpuSpecs:
    def test_three_gpus(self):
        assert set(GPU_SPECS) == {"A100", "A10G", "V100"}

    def test_a100_is_reference(self):
        assert gpu_by_name("A100").relative_speed == pytest.approx(1.0)

    def test_a100_memory(self):
        assert gpu_by_name("a100").memory_gib == pytest.approx(80.0)

    def test_ridge_point_positive(self):
        for spec in GPU_SPECS.values():
            assert spec.ridge_point > 0

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError):
            gpu_by_name("H100")


class TestComponentProfiles:
    def test_table3_row_count(self):
        # Table 3 lists 4 models x 3 components.
        assert len(MODEL_COMPONENT_PROFILES) == 12

    def test_sdxl_unet_flops_match_table3(self):
        unet = [p for p in component_profiles_for("SD-XL") if p.component == "unet"][0]
        assert unet.flops_billion == pytest.approx(11958.197)
        assert unet.arithmetic_intensity == pytest.approx(2328.796)

    def test_unet_runs_once_per_step(self):
        unet = [p for p in component_profiles_for("Tiny-SD") if p.component == "unet"][0]
        assert unet.invocations_per_image == 50

    def test_unet_dominates_total_flops(self):
        for model in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL"):
            profiles = component_profiles_for(model)
            unet = [p for p in profiles if p.component == "unet"][0]
            assert unet.total_flops_billion > 0.5 * total_flops_per_image(model)

    def test_arithmetic_intensity_positive(self):
        for model in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL"):
            assert arithmetic_intensity(model) > 0

    def test_sdxl_more_intense_than_tiny(self):
        assert arithmetic_intensity("SD-XL") > arithmetic_intensity("Tiny-SD")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            component_profiles_for("GPT-4")
