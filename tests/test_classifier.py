"""Tests for the softmax classifier, training pipeline and drift detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifier.drift import DriftDetector
from repro.classifier.model import SoftmaxClassifier
from repro.classifier.trainer import ClassifierTrainer
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel


def _separable_data(n=400, num_features=4, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 3.0, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=n)
    features = centers[labels] + rng.normal(0.0, 0.4, size=(n, num_features))
    return features, labels


class TestSoftmaxClassifier:
    def test_learns_separable_data(self):
        features, labels = _separable_data()
        model = SoftmaxClassifier(num_features=4, num_classes=3, seed=0)
        model.fit(features, labels, epochs=40)
        assert model.accuracy(features, labels) > 0.95

    def test_loss_decreases(self):
        features, labels = _separable_data()
        model = SoftmaxClassifier(num_features=4, num_classes=3, seed=0)
        history = model.fit(features, labels, epochs=20)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_probabilities_sum_to_one(self):
        features, labels = _separable_data(n=50)
        model = SoftmaxClassifier(num_features=4, num_classes=3)
        proba = model.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_one(self):
        features, labels = _separable_data(n=100)
        model = SoftmaxClassifier(num_features=4, num_classes=3, seed=0)
        model.fit(features, labels, epochs=30)
        assert 0 <= model.predict_one(features[0]) < 3

    def test_validation_history_recorded(self):
        features, labels = _separable_data(n=200)
        model = SoftmaxClassifier(num_features=4, num_classes=3, seed=0)
        model.fit(features[:150], labels[:150], epochs=5, validation=(features[150:], labels[150:]))
        assert len(model.history.validation_accuracy) == 5

    def test_state_dict_roundtrip(self):
        features, labels = _separable_data(n=100)
        model = SoftmaxClassifier(num_features=4, num_classes=3, seed=0)
        model.fit(features, labels, epochs=10)
        clone = SoftmaxClassifier(num_features=4, num_classes=3, seed=99)
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(model.predict(features), clone.predict(features))

    def test_state_dict_shape_mismatch(self):
        model = SoftmaxClassifier(num_features=4, num_classes=3)
        other = SoftmaxClassifier(num_features=5, num_classes=3)
        with pytest.raises(ValueError):
            model.load_state_dict(other.state_dict())

    def test_empty_training_rejected(self):
        model = SoftmaxClassifier(num_features=4, num_classes=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 4)), np.zeros(0, dtype=int))

    def test_mismatched_lengths_rejected(self):
        model = SoftmaxClassifier(num_features=4, num_classes=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 4)), np.zeros(5, dtype=int))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxClassifier(num_features=0, num_classes=3)
        with pytest.raises(ValueError):
            SoftmaxClassifier(num_features=4, num_classes=1)


class TestClassifierTrainer:
    @pytest.fixture(scope="class")
    def trained(self):
        pickscore = PickScoreModel(seed=0)
        dataset = PromptDataset.synthetic(count=1200, seed=11)
        trainer = ClassifierTrainer(pickscore)
        predictor = trainer.train(dataset.prompts, Strategy.AC, epochs=30, seed=0)
        return pickscore, dataset, trainer, predictor

    def test_labels_match_selector(self, trained):
        pickscore, dataset, trainer, _ = trained
        labeled = trainer.build_labels(dataset.prompts[:100], Strategy.AC)
        selector = OptimalModelSelector(pickscore)
        expected = [selector.optimal_rank(p, Strategy.AC) for p in dataset.prompts[:100]]
        assert labeled.labels.tolist() == expected

    def test_accuracy_beats_chance_by_wide_margin(self, trained):
        _, dataset, trainer, predictor = trained
        labeled = trainer.build_labels(dataset.prompts, Strategy.AC)
        accuracy = predictor.accuracy_against(labeled)
        assert accuracy > 0.45  # 6 classes -> chance is ~0.17.

    def test_predictions_mostly_within_one_rank(self, trained):
        pickscore, dataset, _, predictor = trained
        selector = OptimalModelSelector(pickscore)
        ranks = predictor.predict_ranks(dataset.prompts[:400])
        truth = [selector.optimal_rank(p, Strategy.AC) for p in dataset.prompts[:400]]
        within_one = np.mean([abs(r - t) <= 1 for r, t in zip(ranks, truth)])
        assert within_one > 0.85

    def test_classifier_routing_beats_random(self, trained):
        # §5.5: classifier-driven variant selection produces higher PickScore
        # than random variant selection.
        pickscore, dataset, _, predictor = trained
        prompts = dataset.prompts[800:1200]
        rng = np.random.default_rng(0)
        classifier_scores = [
            pickscore.score(p, Strategy.AC, predictor.predict_rank(p)) for p in prompts
        ]
        random_scores = [
            pickscore.score(p, Strategy.AC, int(rng.integers(0, 6))) for p in prompts
        ]
        assert np.mean(classifier_scores) > np.mean(random_scores) + 0.8

    def test_predict_rank_range(self, trained):
        _, dataset, _, predictor = trained
        for prompt in dataset.prompts[:50]:
            assert 0 <= predictor.predict_rank(prompt) <= 5

    def test_train_requires_enough_prompts(self):
        trainer = ClassifierTrainer(PickScoreModel(seed=0))
        with pytest.raises(ValueError):
            trainer.train(PromptDataset.synthetic(count=5, seed=0).prompts, Strategy.AC)

    def test_both_strategies_trained(self):
        trainer = ClassifierTrainer(PickScoreModel(seed=0))
        prompts = PromptDataset.synthetic(count=300, seed=2).prompts
        predictors = trainer.train_both_strategies(prompts, epochs=5)
        assert set(predictors) == {Strategy.AC, Strategy.SM}

    def test_loss_vs_pickscore_curve_improves(self):
        # Fig. 19: more training -> lower loss -> higher achieved PickScore.
        pickscore = PickScoreModel(seed=0)
        trainer = ClassifierTrainer(pickscore)
        prompts = PromptDataset.synthetic(count=800, seed=3).prompts
        curve = trainer.loss_vs_pickscore_curve(
            prompts, Strategy.AC, epoch_checkpoints=(1, 8, 24), seed=0
        )
        assert curve[-1]["train_loss"] < curve[0]["train_loss"]
        assert curve[-1]["mean_pickscore"] >= curve[0]["mean_pickscore"] - 0.05


class TestDriftDetector:
    def test_no_drift_on_stable_quality(self):
        detector = DriftDetector(window_size=50, warmup_windows=1)
        events = detector.observe_many([20.0] * 500)
        assert events == []

    def test_drift_fires_on_quality_drop(self):
        detector = DriftDetector(window_size=50, warmup_windows=1, tolerance=0.03)
        detector.observe_many([20.0] * 150)
        events = detector.observe_many([16.0] * 50)
        assert len(events) == 1
        assert events[0].deficit > 0

    def test_warmup_prevents_early_firing(self):
        detector = DriftDetector(window_size=20, warmup_windows=3, tolerance=0.0)
        events = detector.observe_many([20.0] * 20 + [10.0] * 20)
        assert events == []

    def test_reset_clears_history(self):
        detector = DriftDetector(window_size=20, warmup_windows=1)
        detector.observe_many([20.0] * 100)
        detector.reset()
        events = detector.observe_many([12.0] * 40)
        assert events == []  # history was cleared, so no baseline to compare.

    def test_windows_counted(self):
        detector = DriftDetector(window_size=10)
        detector.observe_many([20.0] * 35)
        assert detector.windows_seen == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DriftDetector(window_size=0)
        with pytest.raises(ValueError):
            DriftDetector(tolerance=1.5)

    def test_multiple_drops_fire_multiple_events(self):
        detector = DriftDetector(window_size=20, warmup_windows=1, tolerance=0.02)
        detector.observe_many([20.0] * 60)
        detector.observe_many([15.0] * 20)
        detector.observe_many([20.0] * 40)
        detector.observe_many([14.0] * 20)
        assert detector.num_drift_events >= 2
