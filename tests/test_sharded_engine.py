"""Sharded parallel execution: partitioning, messages, barriers, parity.

The load-bearing guarantees under test:

* ``shards=1`` is *hex-identical* to the sequential runner (same RunSummary
  digest), so sharding is opt-in risk only at N > 1.
* An N-shard run is deterministic (byte-identical reports across repeats)
  and invariant to the barrier window width.
* The union of the shard arrival slices is exactly the sequential arrival
  sequence, whichever filtering path produced them (coordinator-partitioned
  fast path or shard-side stream filtering).
* Every message type round-trips through its kind-tagged dict form.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.core.config import ArgusConfig
from repro.scenarios.spec import FaultEvent, Preset, Scenario, TraceSpec
from repro.scenarios.runtime import build_config, build_stream, run_scenario
from repro.simulation import messages
from repro.simulation import shard as shard_mod
from repro.simulation.shard import (
    ShardSpec,
    _filtered_stream,
    _map_faults,
    _partition_arrivals,
    _split_workers,
    _tenant_sliced_stream,
    plan_shards,
    run_scenario_sharded,
)


def _scenario(
    num_workers: int = 8,
    tenants=None,
    dataset_size: int = 120,
    duration: int = 8,
    base_qpm: float = 30.0,
    peak_qpm: float = 48.0,
    faults=(),
    **config_extra,
):
    config = {"num_workers": num_workers, **config_extra}
    if tenants is not None:
        config["tenants"] = tenants
    preset = Preset(
        dataset_size=dataset_size,
        trace_params={
            "duration_minutes": duration,
            "base_qpm": base_qpm,
            "peak_qpm": peak_qpm,
        },
    )
    return Scenario(
        name="shard-test",
        description="inline sharding test scenario",
        trace=TraceSpec(source="library", name="twitter"),
        config=config,
        faults=faults,
        presets={"full": preset, "small": preset},
    )


_TENANTS = [
    {"name": "alpha", "traffic_share": 0.5},
    {"name": "beta", "traffic_share": 0.3},
    {"name": "gamma", "traffic_share": 0.2},
]


def _digest(run) -> str:
    return hashlib.sha256(
        json.dumps(run.summary.as_dict(), sort_keys=True, default=str).encode()
    ).hexdigest()


def _report(run) -> str:
    """Full deterministic report: summary + extras (barrier log included)."""
    return json.dumps(
        {"summary": run.summary.as_dict(), "extras": run.extras},
        sort_keys=True,
        default=str,
    )


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #


def _collector_state():
    return {
        "lat": np.array([0.5, 1.25], dtype=np.float64),
        "pick": np.array([20.1, 21.0], dtype=np.float64),
        "best": np.array([21.5, 21.5], dtype=np.float64),
        "relq": np.array([0.93, 0.97], dtype=np.float64),
        "minute": np.array([0, 1], dtype=np.int64),
        "tenant_col": np.array([0, 1], dtype=np.int32),
        "minute_counts": {0: [1, 0, 1], 1: [1, 1, 0]},
        "arrivals_by_minute": {0: 1, 1: 1},
        "tenant_names": ["alpha", "beta"],
        "total_arrivals": 2,
        "dropped_requests": 0,
    }


class TestMessages:
    SAMPLES = [
        messages.RunWindow(window_end_s=60.0),
        messages.MetricsDelta(
            shard_id=1, window_end_s=60.0, arrivals=5, completions=4, dropped=0, slo_violations=1
        ),
        messages.FleetDelta(
            shard_id=1,
            window_end_s=60.0,
            active_workers=3,
            workers_added=0,
            workers_retired=0,
            model_loads=2,
        ),
        messages.Finalize(),
        messages.DispatchMessage(
            shard_id=0,
            request_id=7,
            worker_id=2,
            time_s=12.5,
            tenant="alpha",
            prompt_id=91,
            predicted_rank=1,
            assigned_rank=2,
            strategy="approximate",
        ),
        messages.CompletionMessage(
            shard_id=0,
            request_id=7,
            worker_id=2,
            completion_time_s=15.0,
            latency_s=2.5,
            effective_rank=2,
            cache_hit=True,
        ),
        messages.RequeueMessage(shard_id=2, request_id=9, time_s=30.0, tenant="beta"),
        messages.ScaleRequest(
            seq=3, action="scale_out", time_s=45.0, count=2, reason="demand above ceiling"
        ),
        messages.ScaleOutcome(seq=3, action="scale_out", granted=1, gpus=("a100",)),
        messages.ScaleOutcomes(
            window_end_s=60.0,
            outcomes=(
                messages.ScaleOutcome(seq=3, action="scale_out", granted=1, gpus=("a100",)),
                messages.ScaleOutcome(seq=4, action="scale_in", granted=0),
            ),
        ),
        messages.StealRequest(window_end_s=90.0, count=5),
        messages.StolenWork(
            shard_id=1,
            window_end_s=90.0,
            entries=(
                {
                    "tenant": "hot",
                    "offer_time_s": 84.5,
                    "prompt": {"prompt_id": 11, "tenant": "hot"},
                },
            ),
        ),
        messages.WorkTransfer(
            window_end_s=90.0,
            entries=(
                {
                    "tenant": "hot",
                    "offer_time_s": 84.5,
                    "prompt": {"prompt_id": 11, "tenant": "hot"},
                },
            ),
        ),
    ]

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: m.kind)
    def test_round_trip(self, message):
        payload = messages.encode(message)
        assert payload["kind"] == message.kind
        json.dumps(payload)  # dict form is JSON-serializable
        assert messages.decode(payload) == message

    def test_barrier_reached_round_trips_nested(self):
        reached = messages.BarrierReached(
            shard_id=1,
            window_end_s=120.0,
            metrics=self.SAMPLES[1],
            fleet=self.SAMPLES[2],
            scale_requests=(
                messages.ScaleRequest(seq=1, action="scale_out", time_s=100.0, count=2),
            ),
            admission_backlog=7,
            worker_backlog=3,
        )
        decoded = messages.decode(json.loads(json.dumps(reached.encode())))
        assert decoded == reached
        assert isinstance(decoded.metrics, messages.MetricsDelta)
        assert isinstance(decoded.fleet, messages.FleetDelta)
        assert all(
            isinstance(request, messages.ScaleRequest)
            for request in decoded.scale_requests
        )

    def test_shard_result_round_trips_numpy_columns(self):
        result = messages.ShardResult(
            shard_id=0,
            system_name="argus",
            num_workers=4,
            collector_state=_collector_state(),
            requests_served=2,
            batches_served=2,
            model_loads=1,
            utilization=0.5,
            fleet_peak_workers=4,
            fleet_mean_workers=4.0,
            workers_added=0,
            workers_retired=0,
            gpu_hours=0.1,
            cost_usd=0.4,
            outstanding_requests=0,
        )
        decoded = messages.decode(json.loads(json.dumps(result.encode())))
        state = decoded.collector_state
        for key, dtype in messages._STATE_DTYPES.items():
            assert state[key].dtype == dtype
            np.testing.assert_array_equal(state[key], result.collector_state[key])
        # int minute keys survive the str round-trip of JSON object keys
        assert set(state["minute_counts"]) == {0, 1}
        assert state["arrivals_by_minute"] == {0: 1, 1: 1}

    def test_decode_passes_message_instances_through(self):
        window = messages.RunWindow(window_end_s=5.0)
        assert messages.decode(window) is window

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown message kind"):
            messages.decode({"kind": "gossip"})


# --------------------------------------------------------------------------- #
# Partition planning
# --------------------------------------------------------------------------- #


class TestPlanning:
    def test_split_workers_sums_and_floors(self):
        counts = _split_workers(10, [5.0, 1.0, 0.0])
        assert sum(counts) == 10
        assert min(counts) >= 1
        assert counts[0] > counts[1]

    def test_split_workers_even_for_equal_weights(self):
        assert _split_workers(8, [1.0, 1.0, 1.0, 1.0]) == [2, 2, 2, 2]

    def test_split_workers_rejects_too_few(self):
        with pytest.raises(ValueError, match="cannot split"):
            _split_workers(2, [1.0, 1.0, 1.0])

    def test_hash_mode_for_single_tenant(self):
        config = ArgusConfig(num_workers=8, shards=4)
        plan = plan_shards(config)
        assert plan.mode == "hash"
        assert [s.num_workers for s in plan.shards] == [2, 2, 2, 2]
        assert all(s.tenant_names is None for s in plan.shards)

    def test_tenant_mode_places_whole_tenants(self):
        config = ArgusConfig(num_workers=8, shards=2, tenants=_TENANTS)
        plan = plan_shards(config)
        assert plan.mode == "tenant"
        placed = [name for spec in plan.shards for name in spec.tenant_names]
        assert sorted(placed) == ["alpha", "beta", "gamma"]
        assert sum(s.num_workers for s in plan.shards) == 8

    def test_hash_spec_accepts_partitions_prompts(self):
        from repro.prompts.dataset import PromptDataset

        specs = [ShardSpec(shard_id=i, num_shards=3, num_workers=1) for i in range(3)]
        for prompt in PromptDataset.synthetic(count=50, seed=1).prompts:
            owners = [spec.shard_id for spec in specs if spec.accepts(prompt)]
            assert len(owners) == 1


class TestConfigValidation:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, shards=0)

    def test_rejects_nonpositive_sync_window(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, shards=2, sync_window_s=0.0)

    def test_rejects_more_shards_than_workers(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=2, shards=4)

    def test_rejects_more_shards_than_tenants(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=8, shards=3, tenants=_TENANTS[:2])

    def test_accepts_autoscaling_with_shards(self):
        # PR 7 lifted the shards × autoscale rejection: per-shard loops run
        # in brokered mode under the coordinator's global budget.
        config = ArgusConfig(num_workers=8, shards=2, autoscale_enabled=True)
        assert config.autoscale_enabled and config.shards == 2

    def test_rejects_nonpositive_autoscale_epoch(self):
        with pytest.raises(ValueError, match="autoscale_epoch_s"):
            ArgusConfig(num_workers=4, autoscale_epoch_s=0.0)

    def test_rejects_bad_steal_thresholds(self):
        with pytest.raises(ValueError, match="steal_backlog_threshold"):
            ArgusConfig(num_workers=4, steal_backlog_threshold=0)
        with pytest.raises(ValueError, match="steal_max_fraction"):
            ArgusConfig(num_workers=4, steal_max_fraction=0.0)
        with pytest.raises(ValueError, match="steal_max_fraction"):
            ArgusConfig(num_workers=4, steal_max_fraction=1.5)

    def test_rejects_stealing_without_admission(self):
        # Stealing migrates admission-queue tails; a single-tenant (hash
        # mode) shard set has no fair-share admission to steal from.
        with pytest.raises(ValueError, match="shard_work_stealing"):
            ArgusConfig(num_workers=8, shards=2, shard_work_stealing=True)


# --------------------------------------------------------------------------- #
# Stream slicing
# --------------------------------------------------------------------------- #


def _stream_for(scenario, seed=0):
    preset = scenario.preset("full")
    config = build_config(scenario, preset, seed)
    trace = scenario.trace.build(seed=seed, **preset.trace_params)
    return build_stream(scenario, preset, config, trace, seed)


class TestStreamSlicing:
    def test_fast_filter_matches_generic_filter(self):
        stream = _stream_for(_scenario())
        spec = ShardSpec(shard_id=1, num_shards=3, num_workers=2)
        fast = [
            (tp.arrival_time_s, tp.prompt.prompt_id) for tp in _filtered_stream(stream, spec)
        ]
        generic = [
            (tp.arrival_time_s, tp.prompt.prompt_id)
            for tp in stream
            if spec.accepts(tp.prompt)
        ]
        assert fast == generic

    def test_partitioned_slices_union_to_full_stream(self):
        scenario = _scenario()
        stream = _stream_for(scenario)
        config = build_config(
            scenario, scenario.preset("full"), 0, extra={"shards": 3}
        )
        plan = plan_shards(config)
        split = _partition_arrivals(stream, plan)
        assert split is not None and len(split) == 3
        assert all(entry["kind"] == "replay" for entry in split)
        merged = sorted(
            (float(t), int(slot))
            for entry in split
            for t, slot in zip(entry["times"], entry["slots"])
        )
        full = [
            (tp.arrival_time_s, tp.prompt.prompt_id % len(stream.dataset))
            for tp in stream
        ]
        assert [t for t, _ in merged] == [t for t, _ in full]
        # each arrival keeps its exact sequential prompt slot
        dataset = stream.dataset
        for (_, slot), (_, expected_slot) in zip(merged, full):
            assert dataset[slot].prompt_id % len(dataset) == expected_slot

    def test_partition_arrivals_declines_phased_streams(self):
        scenario = _scenario()
        stream = _stream_for(scenario)
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 2})
        plan = plan_shards(config)

        class NotARequestStream:
            pass

        assert _partition_arrivals(NotARequestStream(), plan) is None

    def test_partition_arrivals_slices_tenant_streams(self):
        # Tenant arrivals are lazy per-tenant draws, so the coordinator
        # hands each shard its tenant *indices* and the shard heap-merges
        # only those streams — no per-shard walk of the full interleave.
        scenario = _scenario(tenants=_TENANTS)
        stream = _stream_for(scenario)
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 3})
        plan = plan_shards(config)
        split = _partition_arrivals(stream, plan)
        assert split is not None and len(split) == 3
        assert all(entry["kind"] == "tenant_indices" for entry in split)
        covered = sorted(index for entry in split for index in entry["indices"])
        assert covered == [0, 1, 2]

    def test_tenant_sliced_stream_matches_generic_filter(self):
        scenario = _scenario(tenants=_TENANTS)
        stream = _stream_for(scenario)
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 2})
        plan = plan_shards(config)
        split = _partition_arrivals(stream, plan)
        for spec, entry in zip(plan.shards, split):
            sliced = [
                (tp.arrival_time_s, tp.prompt.tenant, tp.prompt.prompt_id)
                for tp in _tenant_sliced_stream(stream, entry["indices"])
            ]
            filtered = [
                (tp.arrival_time_s, tp.prompt.tenant, tp.prompt.prompt_id)
                for tp in stream
                if spec.accepts(tp.prompt)
            ]
            assert sliced == filtered


# --------------------------------------------------------------------------- #
# End-to-end sharded runs
# --------------------------------------------------------------------------- #


class TestShardedRuns:
    def test_one_shard_hex_identical_to_sequential(self):
        sequential = run_scenario("fig16-xl", preset="small", seed=7)
        sharded = run_scenario_sharded("fig16-xl", preset="small", seed=7, shards=1)
        assert _digest(sharded) == _digest(sequential)

    def test_nshard_run_is_deterministic(self):
        scenario = _scenario()
        first = run_scenario_sharded(scenario, preset="full", seed=3, shards=3)
        second = run_scenario_sharded(scenario, preset="full", seed=3, shards=3)
        assert _report(first) == _report(second)

    def test_barrier_window_invariance(self):
        scenario = _scenario()
        narrow = run_scenario_sharded(
            scenario, preset="full", seed=3, shards=3, sync_window_s=30.0
        )
        wide = run_scenario_sharded(
            scenario, preset="full", seed=3, shards=3, sync_window_s=240.0
        )
        assert _digest(narrow) == _digest(wide)
        assert (
            narrow.extras["sharding"]["per_shard"] == wide.extras["sharding"]["per_shard"]
        )
        assert narrow.extras["sharding"]["windows"] > wide.extras["sharding"]["windows"]

    def test_coordinator_partitioning_matches_shard_side_filtering(self, monkeypatch):
        scenario = _scenario()
        fast = run_scenario_sharded(scenario, preset="full", seed=5, shards=3)
        monkeypatch.setattr(shard_mod, "_partition_arrivals", lambda stream, plan: None)
        slow = run_scenario_sharded(scenario, preset="full", seed=5, shards=3)
        assert _report(fast) == _report(slow)

    def test_arrivals_conserved_across_shards(self):
        scenario = _scenario()
        sequential = run_scenario(scenario, preset="full", seed=4)
        sharded = run_scenario_sharded(scenario, preset="full", seed=4, shards=3)
        per_shard = sharded.extras["sharding"]["per_shard"]
        assert (
            sum(row["arrivals"] for row in per_shard)
            == sequential.summary.total_arrivals
        )
        assert sharded.summary.total_arrivals == sequential.summary.total_arrivals

    def test_tenant_mode_preserves_per_tenant_arrivals(self):
        scenario = _scenario(tenants=_TENANTS)
        sequential = run_scenario(scenario, preset="full", seed=2)
        sharded = run_scenario_sharded(scenario, preset="full", seed=2, shards=3)
        seq_tenants = {t.name: t.arrivals for t in sequential.summary.tenants}
        shard_tenants = {t.name: t.arrivals for t in sharded.summary.tenants}
        assert shard_tenants == seq_tenants

    def test_recorded_messages_account_for_every_request(self):
        scenario = _scenario()
        run = run_scenario_sharded(
            scenario, preset="full", seed=6, shards=2, record_messages=True
        )
        recorded = run.extras["sharding"]["messages"]
        assert set(recorded) == {0, 1}
        total_completions = 0
        for shard_id, entries in recorded.items():
            decoded = [messages.decode(e) for e in entries]
            dispatches = {
                m.request_id for m in decoded if isinstance(m, messages.DispatchMessage)
            }
            completions = {
                m.request_id for m in decoded if isinstance(m, messages.CompletionMessage)
            }
            # every completion was dispatched on this shard first
            assert completions <= dispatches
            total_completions += len(completions)
        assert total_completions == run.summary.total_completions

    def test_worker_id_faults_are_rejected_naming_the_alternative(self):
        scenario = _scenario(faults=(FaultEvent(fail_at_minute=2.0, worker_id=0),))
        with pytest.raises(ValueError, match="worker faults") as excinfo:
            run_scenario_sharded(scenario, preset="full", seed=0, shards=2)
        assert "fleet_fraction" in str(excinfo.value)

    def test_sharding_extras_describe_the_plan(self):
        run = run_scenario_sharded(_scenario(), preset="full", seed=1, shards=2)
        sharding = run.extras["sharding"]
        assert sharding["shards"] == 2
        assert sharding["mode"] == "hash"
        assert len(sharding["plan"]) == 2
        assert sum(p["workers"] for p in sharding["plan"]) == 8
        assert sharding["barriers"][-1]["window_end_s"] >= 8 * 60.0
        # knobs-off runs carry no control-plane blocks (pinned no-op)
        assert "autoscale" not in sharding
        assert "stealing" not in sharding


# --------------------------------------------------------------------------- #
# Fault injection in sharded runs
# --------------------------------------------------------------------------- #


class TestShardedFaults:
    def test_map_faults_covers_the_sequential_fault_set(self):
        scenario = _scenario()
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 3})
        plan = plan_shards(config)
        event = FaultEvent(fail_at_minute=1.0, recover_at_minute=3.0, fleet_fraction=0.5)
        mapped = _map_faults((event,), plan, config.num_workers)
        # reconstruct global ids from the shard-local ones: shard s owns the
        # contiguous block after the earlier partitions
        starts, offset = {}, 0
        for spec in plan.shards:
            starts[spec.shard_id] = offset
            offset += spec.num_workers
        reconstructed = sorted(
            starts[shard_id] + local_id
            for shard_id, entries in mapped.items()
            for local_id, _fail, _recover, _degrade in entries
        )
        assert reconstructed == sorted(event.worker_ids(config.num_workers))
        for entries in mapped.values():
            for _local, fail_s, recover_s, degrade in entries:
                assert fail_s == 60.0 and recover_s == 180.0
                assert degrade is None  # hard crash, not a gray failure

    def test_fleet_fraction_faults_run_deterministically(self):
        scenario = _scenario(
            faults=(
                FaultEvent(fail_at_minute=2.0, recover_at_minute=5.0, fleet_fraction=0.5),
            )
        )
        baseline = run_scenario(
            _scenario(), preset="full", seed=4
        )  # same workload, no faults
        first = run_scenario_sharded(scenario, preset="full", seed=4, shards=2)
        second = run_scenario_sharded(scenario, preset="full", seed=4, shards=2)
        assert _report(first) == _report(second)
        # the fault window visibly degrades service relative to no faults
        assert first.summary.total_arrivals == baseline.summary.total_arrivals
        assert _digest(first) != _digest(baseline)

    def test_map_faults_leaves_unfaulted_shards_empty(self):
        # A 10% fraction of 8 workers faults exactly worker 0: the shards
        # owning the later id blocks must get an entry list, but an empty
        # one — never a spurious local fault.
        scenario = _scenario()
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 3})
        plan = plan_shards(config)
        event = FaultEvent(fail_at_minute=1.0, fleet_fraction=0.1)
        mapped = _map_faults((event,), plan, config.num_workers)
        assert set(mapped) == {spec.shard_id for spec in plan.shards}
        first = plan.shards[0].shard_id
        assert [local for local, *_ in mapped[first]] == [0]
        assert all(not mapped[spec.shard_id] for spec in plan.shards[1:])

    @pytest.mark.parametrize("fraction", [0.1, 0.33, 0.5, 0.75, 1.0])
    @pytest.mark.parametrize("num_workers,shards", [(7, 3), (8, 3), (9, 4)])
    def test_map_faults_rounding_parity_with_sequential(
        self, fraction, num_workers, shards
    ):
        # Whatever round(frac x fleet) resolves to — including uneven worker
        # splits where shard blocks differ in size — the union of shard-local
        # faults must be exactly the sequential run's faulted id set.
        scenario = _scenario(num_workers=num_workers)
        config = build_config(
            scenario, scenario.preset("full"), 0, extra={"shards": shards}
        )
        plan = plan_shards(config)
        event = FaultEvent(fail_at_minute=1.0, fleet_fraction=fraction)
        mapped = _map_faults((event,), plan, config.num_workers)
        starts, offset = {}, 0
        for spec in plan.shards:
            starts[spec.shard_id] = offset
            offset += spec.num_workers
        reconstructed = sorted(
            starts[shard_id] + local_id
            for shard_id, entries in mapped.items()
            for local_id, *_ in entries
        )
        assert reconstructed == sorted(event.worker_ids(num_workers))

    def test_map_faults_carries_the_degrade_factor(self):
        scenario = _scenario()
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 2})
        plan = plan_shards(config)
        event = FaultEvent(
            fail_at_minute=1.0, recover_at_minute=2.0, fleet_fraction=0.5,
            degrade_factor=0.4,
        )
        mapped = _map_faults((event,), plan, config.num_workers)
        factors = [
            degrade
            for entries in mapped.values()
            for _local, _fail, _recover, degrade in entries
        ]
        assert factors and all(factor == 0.4 for factor in factors)

    def test_worker_id_faults_are_rejected_with_guidance(self):
        scenario = _scenario(
            faults=(FaultEvent(fail_at_minute=1.0, worker_id=3),)
        )
        with pytest.raises(ValueError, match="worker faults by worker_id"):
            run_scenario_sharded(scenario, preset="full", seed=0, shards=2)


# --------------------------------------------------------------------------- #
# Brokered autoscaling
# --------------------------------------------------------------------------- #


def _autoscaled_scenario():
    """A fig16-xl-class overload: demand far above the initial fleet, so the
    per-shard loops must ask the broker for workers to keep up."""
    return _scenario(
        num_workers=4,
        base_qpm=60.0,
        peak_qpm=240.0,
        duration=8,
        autoscale_enabled=True,
        min_workers=2,
        max_workers=10,
        provision_delay_s=30.0,
        autoscale_epoch_s=60.0,
    )


class TestBrokeredAutoscaling:
    def test_autoscaled_run_is_deterministic_and_window_invariant(self):
        scenario = _autoscaled_scenario()
        for shards in (2, 4):
            narrow = run_scenario_sharded(
                scenario, preset="full", seed=3, shards=shards, sync_window_s=30.0
            )
            wide = run_scenario_sharded(
                scenario, preset="full", seed=3, shards=shards, sync_window_s=120.0
            )
            repeat = run_scenario_sharded(
                scenario, preset="full", seed=3, shards=shards, sync_window_s=30.0
            )
            assert _report(narrow) == _report(repeat)
            # identical RunSummary across barrier widths: the request/grant
            # exchange sits on the fixed epoch grid, not the window grid
            assert _digest(narrow) == _digest(wide)
            assert (
                narrow.extras["sharding"]["autoscale"]
                == wide.extras["sharding"]["autoscale"]
            )
            assert (
                narrow.extras["sharding"]["per_shard"]
                == wide.extras["sharding"]["per_shard"]
            )

    def test_autoscaled_run_never_exceeds_the_global_budget(self):
        scenario = _autoscaled_scenario()
        run = run_scenario_sharded(scenario, preset="full", seed=3, shards=4)
        auto = run.extras["sharding"]["autoscale"]
        granted = [g for g in auto["grants"] if g["granted"] > 0]
        assert granted, "overload scenario must produce at least one grant"
        assert auto["max_workers"] == 10
        for barrier in run.extras["sharding"]["barriers"]:
            assert barrier["in_fleet"] <= auto["max_workers"]
            assert barrier["committed_workers"] <= auto["max_workers"]
            assert barrier["committed_workers"] >= 0
        assert sum(auto["committed"].values()) <= auto["max_workers"]

    def test_broker_ledger_matches_fleet_under_fault_storm(self):
        # PR-8 regression: a brokered scale-in grant the shard cannot apply
        # (candidate failed meanwhile) used to leave the ledger one worker
        # off forever.  With reconciliation, committed == active +
        # provisioning + failed at every non-epoch barrier.  Epoch entries
        # record post-grant ledgers against pre-apply fleets, so only the
        # budget bounds are asserted there.
        scenario = _scenario(
            num_workers=4,
            base_qpm=60.0,
            peak_qpm=240.0,
            duration=8,
            autoscale_enabled=True,
            min_workers=2,
            max_workers=10,
            provision_delay_s=30.0,
            autoscale_epoch_s=60.0,
            faults=(
                FaultEvent(fail_at_minute=2.0, recover_at_minute=5.0, fleet_fraction=0.5),
                FaultEvent(fail_at_minute=3.0, recover_at_minute=6.0, fleet_fraction=0.25),
            ),
        )
        run = run_scenario_sharded(
            scenario, preset="full", seed=3, shards=2, sync_window_s=30.0
        )
        barriers = run.extras["sharding"]["barriers"]
        non_epoch = [b for b in barriers if not b["epoch"]]
        assert non_epoch and any(b["epoch"] for b in barriers)
        for barrier in non_epoch:
            assert (
                barrier["committed_workers"]
                == barrier["in_fleet"] + barrier["failed_workers"]
            ), f"ledger drift at t={barrier['window_end_s']}"
        max_workers = run.extras["sharding"]["autoscale"]["max_workers"]
        for barrier in barriers:
            assert barrier["in_fleet"] <= max_workers
            assert barrier["committed_workers"] <= max_workers

    def test_scaled_fleet_serves_more_than_the_static_fleet(self):
        scenario = _autoscaled_scenario()
        static = _scenario(
            num_workers=4, base_qpm=60.0, peak_qpm=240.0, duration=8
        )
        scaled_run = run_scenario_sharded(scenario, preset="full", seed=9, shards=2)
        static_run = run_scenario_sharded(static, preset="full", seed=9, shards=2)
        assert scaled_run.summary.fleet_peak_workers > static_run.summary.fleet_peak_workers
        assert scaled_run.summary.total_completions >= static_run.summary.total_completions


# --------------------------------------------------------------------------- #
# Cross-shard work stealing
# --------------------------------------------------------------------------- #

#: Two tenants with equal contracts but a violent burst on one: the tenant
#: bin-pack splits them 1:1 onto two shards, and the burst buries the hot
#: shard's admission queue while the cold shard idles.
# A burst the planner provisions for on *average* (the bin-pack sees the
# 8-minute extra_qpm sum) but that transiently overwhelms the hot shard at
# ~3x its planned rate, while the cold shard keeps steady headroom — the
# exact shape cross-shard stealing is for.
_SKEWED_TENANTS = [
    {
        "name": "hot",
        "traffic_share": 0.2,
        "extra_qpm": [0.0, 0.0, 150.0, 150.0, 150.0, 0.0, 0.0, 0.0],
    },
    {"name": "cold", "traffic_share": 0.8},
]


def _skewed_scenario(stealing: bool):
    return _scenario(
        num_workers=6,
        tenants=_SKEWED_TENANTS,
        duration=8,
        base_qpm=24.0,
        peak_qpm=36.0,
        fair_share_admission=True,
        shard_work_stealing=stealing,
        steal_backlog_threshold=4,
        steal_max_fraction=1.0,
        sync_window_s=15.0,
    )


class TestWorkStealing:
    def _tenant_row(self, run, name):
        return next(t for t in run.summary.tenants if t.name == name)

    def test_stealing_drops_hot_tenant_p99_and_conserves_totals(self):
        off = run_scenario_sharded(_skewed_scenario(False), preset="full", seed=11, shards=2)
        on = run_scenario_sharded(_skewed_scenario(True), preset="full", seed=11, shards=2)
        stealing = on.extras["sharding"]["stealing"]
        assert stealing["stolen_total"] > 0
        assert stealing["events"], "skewed burst must trigger at least one steal"
        # totals conserved: the same arrival stream, every request accounted
        assert on.summary.total_arrivals == off.summary.total_arrivals
        assert (
            self._tenant_row(on, "hot").arrivals
            == self._tenant_row(off, "hot").arrivals
        )
        assert (
            self._tenant_row(on, "cold").arrivals
            == self._tenant_row(off, "cold").arrivals
        )
        # the hot shard's burst latency tail collapses onto the idle shard
        assert (
            self._tenant_row(on, "hot").p99_latency_s
            < self._tenant_row(off, "hot").p99_latency_s
        )

    def test_stealing_run_is_deterministic(self):
        first = run_scenario_sharded(_skewed_scenario(True), preset="full", seed=11, shards=2)
        second = run_scenario_sharded(_skewed_scenario(True), preset="full", seed=11, shards=2)
        assert _report(first) == _report(second)

    def test_stealing_off_is_a_pinned_noop(self):
        run = run_scenario_sharded(_skewed_scenario(False), preset="full", seed=11, shards=2)
        assert "stealing" not in run.extras["sharding"]
        # per-tenant admission accounting reports no migrations
        for entry in run.extras.get("admission", {}).values():
            assert entry.get("stolen", 0) == 0


# --------------------------------------------------------------------------- #
# Contract verification over sharded merges
# --------------------------------------------------------------------------- #


class TestShardedContracts:
    def test_sharded_report_satisfies_contracts_non_vacuously(self):
        # The contracts are functions of the report dict, so the sharded
        # merge must carry enough accounting (outstanding queues, admission
        # backlog, broker budget, barrier ledger) for conservation,
        # fleet-budget and ledger-matches-fleet to engage for real.
        from repro.scenarios.contracts import verify_report, violations

        run = run_scenario_sharded(
            _autoscaled_scenario(), preset="full", seed=3, shards=2
        )
        contracts = ("conservation", "fleet-budget", "ledger-matches-fleet")
        results = verify_report(run.report(), contracts)
        assert not violations(results), [str(r) for r in results]
        assert all(not r.vacuous for r in results), [str(r) for r in results]
