"""Sharded parallel execution: partitioning, messages, barriers, parity.

The load-bearing guarantees under test:

* ``shards=1`` is *hex-identical* to the sequential runner (same RunSummary
  digest), so sharding is opt-in risk only at N > 1.
* An N-shard run is deterministic (byte-identical reports across repeats)
  and invariant to the barrier window width.
* The union of the shard arrival slices is exactly the sequential arrival
  sequence, whichever filtering path produced them (coordinator-partitioned
  fast path or shard-side stream filtering).
* Every message type round-trips through its kind-tagged dict form.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.core.config import ArgusConfig
from repro.scenarios.spec import FaultEvent, Preset, Scenario, TraceSpec
from repro.scenarios.runtime import build_config, build_stream, run_scenario
from repro.simulation import messages
from repro.simulation import shard as shard_mod
from repro.simulation.shard import (
    ShardSpec,
    _filtered_stream,
    _partition_arrivals,
    _split_workers,
    plan_shards,
    run_scenario_sharded,
)


def _scenario(
    num_workers: int = 8,
    tenants=None,
    dataset_size: int = 120,
    duration: int = 8,
    base_qpm: float = 30.0,
    peak_qpm: float = 48.0,
    faults=(),
    **config_extra,
):
    config = {"num_workers": num_workers, **config_extra}
    if tenants is not None:
        config["tenants"] = tenants
    preset = Preset(
        dataset_size=dataset_size,
        trace_params={
            "duration_minutes": duration,
            "base_qpm": base_qpm,
            "peak_qpm": peak_qpm,
        },
    )
    return Scenario(
        name="shard-test",
        description="inline sharding test scenario",
        trace=TraceSpec(source="library", name="twitter"),
        config=config,
        faults=faults,
        presets={"full": preset, "small": preset},
    )


_TENANTS = [
    {"name": "alpha", "traffic_share": 0.5},
    {"name": "beta", "traffic_share": 0.3},
    {"name": "gamma", "traffic_share": 0.2},
]


def _digest(run) -> str:
    return hashlib.sha256(
        json.dumps(run.summary.as_dict(), sort_keys=True, default=str).encode()
    ).hexdigest()


def _report(run) -> str:
    """Full deterministic report: summary + extras (barrier log included)."""
    return json.dumps(
        {"summary": run.summary.as_dict(), "extras": run.extras},
        sort_keys=True,
        default=str,
    )


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #


def _collector_state():
    return {
        "lat": np.array([0.5, 1.25], dtype=np.float64),
        "pick": np.array([20.1, 21.0], dtype=np.float64),
        "best": np.array([21.5, 21.5], dtype=np.float64),
        "relq": np.array([0.93, 0.97], dtype=np.float64),
        "minute": np.array([0, 1], dtype=np.int64),
        "tenant_col": np.array([0, 1], dtype=np.int32),
        "minute_counts": {0: [1, 0, 1], 1: [1, 1, 0]},
        "arrivals_by_minute": {0: 1, 1: 1},
        "tenant_names": ["alpha", "beta"],
        "total_arrivals": 2,
        "dropped_requests": 0,
    }


class TestMessages:
    SAMPLES = [
        messages.RunWindow(window_end_s=60.0),
        messages.MetricsDelta(
            shard_id=1, window_end_s=60.0, arrivals=5, completions=4, dropped=0, slo_violations=1
        ),
        messages.FleetDelta(
            shard_id=1,
            window_end_s=60.0,
            active_workers=3,
            workers_added=0,
            workers_retired=0,
            model_loads=2,
        ),
        messages.Finalize(),
        messages.DispatchMessage(
            shard_id=0,
            request_id=7,
            worker_id=2,
            time_s=12.5,
            tenant="alpha",
            prompt_id=91,
            predicted_rank=1,
            assigned_rank=2,
            strategy="approximate",
        ),
        messages.CompletionMessage(
            shard_id=0,
            request_id=7,
            worker_id=2,
            completion_time_s=15.0,
            latency_s=2.5,
            effective_rank=2,
            cache_hit=True,
        ),
        messages.RequeueMessage(shard_id=2, request_id=9, time_s=30.0, tenant="beta"),
    ]

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: m.kind)
    def test_round_trip(self, message):
        payload = messages.encode(message)
        assert payload["kind"] == message.kind
        json.dumps(payload)  # dict form is JSON-serializable
        assert messages.decode(payload) == message

    def test_barrier_reached_round_trips_nested(self):
        reached = messages.BarrierReached(
            shard_id=1,
            window_end_s=120.0,
            metrics=self.SAMPLES[1],
            fleet=self.SAMPLES[2],
        )
        decoded = messages.decode(json.loads(json.dumps(reached.encode())))
        assert decoded == reached
        assert isinstance(decoded.metrics, messages.MetricsDelta)
        assert isinstance(decoded.fleet, messages.FleetDelta)

    def test_shard_result_round_trips_numpy_columns(self):
        result = messages.ShardResult(
            shard_id=0,
            system_name="argus",
            num_workers=4,
            collector_state=_collector_state(),
            requests_served=2,
            batches_served=2,
            model_loads=1,
            utilization=0.5,
            fleet_peak_workers=4,
            fleet_mean_workers=4.0,
            workers_added=0,
            workers_retired=0,
            gpu_hours=0.1,
            cost_usd=0.4,
            outstanding_requests=0,
        )
        decoded = messages.decode(json.loads(json.dumps(result.encode())))
        state = decoded.collector_state
        for key, dtype in messages._STATE_DTYPES.items():
            assert state[key].dtype == dtype
            np.testing.assert_array_equal(state[key], result.collector_state[key])
        # int minute keys survive the str round-trip of JSON object keys
        assert set(state["minute_counts"]) == {0, 1}
        assert state["arrivals_by_minute"] == {0: 1, 1: 1}

    def test_decode_passes_message_instances_through(self):
        window = messages.RunWindow(window_end_s=5.0)
        assert messages.decode(window) is window

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown message kind"):
            messages.decode({"kind": "gossip"})


# --------------------------------------------------------------------------- #
# Partition planning
# --------------------------------------------------------------------------- #


class TestPlanning:
    def test_split_workers_sums_and_floors(self):
        counts = _split_workers(10, [5.0, 1.0, 0.0])
        assert sum(counts) == 10
        assert min(counts) >= 1
        assert counts[0] > counts[1]

    def test_split_workers_even_for_equal_weights(self):
        assert _split_workers(8, [1.0, 1.0, 1.0, 1.0]) == [2, 2, 2, 2]

    def test_split_workers_rejects_too_few(self):
        with pytest.raises(ValueError, match="cannot split"):
            _split_workers(2, [1.0, 1.0, 1.0])

    def test_hash_mode_for_single_tenant(self):
        config = ArgusConfig(num_workers=8, shards=4)
        plan = plan_shards(config)
        assert plan.mode == "hash"
        assert [s.num_workers for s in plan.shards] == [2, 2, 2, 2]
        assert all(s.tenant_names is None for s in plan.shards)

    def test_tenant_mode_places_whole_tenants(self):
        config = ArgusConfig(num_workers=8, shards=2, tenants=_TENANTS)
        plan = plan_shards(config)
        assert plan.mode == "tenant"
        placed = [name for spec in plan.shards for name in spec.tenant_names]
        assert sorted(placed) == ["alpha", "beta", "gamma"]
        assert sum(s.num_workers for s in plan.shards) == 8

    def test_hash_spec_accepts_partitions_prompts(self):
        from repro.prompts.dataset import PromptDataset

        specs = [ShardSpec(shard_id=i, num_shards=3, num_workers=1) for i in range(3)]
        for prompt in PromptDataset.synthetic(count=50, seed=1).prompts:
            owners = [spec.shard_id for spec in specs if spec.accepts(prompt)]
            assert len(owners) == 1


class TestConfigValidation:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, shards=0)

    def test_rejects_nonpositive_sync_window(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, shards=2, sync_window_s=0.0)

    def test_rejects_more_shards_than_workers(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=2, shards=4)

    def test_rejects_more_shards_than_tenants(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=8, shards=3, tenants=_TENANTS[:2])

    def test_rejects_autoscaling_with_shards(self):
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=8, shards=2, autoscale_enabled=True)


# --------------------------------------------------------------------------- #
# Stream slicing
# --------------------------------------------------------------------------- #


def _stream_for(scenario, seed=0):
    preset = scenario.preset("full")
    config = build_config(scenario, preset, seed)
    trace = scenario.trace.build(seed=seed, **preset.trace_params)
    return build_stream(scenario, preset, config, trace, seed)


class TestStreamSlicing:
    def test_fast_filter_matches_generic_filter(self):
        stream = _stream_for(_scenario())
        spec = ShardSpec(shard_id=1, num_shards=3, num_workers=2)
        fast = [
            (tp.arrival_time_s, tp.prompt.prompt_id) for tp in _filtered_stream(stream, spec)
        ]
        generic = [
            (tp.arrival_time_s, tp.prompt.prompt_id)
            for tp in stream
            if spec.accepts(tp.prompt)
        ]
        assert fast == generic

    def test_partitioned_slices_union_to_full_stream(self):
        scenario = _scenario()
        stream = _stream_for(scenario)
        config = build_config(
            scenario, scenario.preset("full"), 0, extra={"shards": 3}
        )
        plan = plan_shards(config)
        split = _partition_arrivals(stream, plan)
        assert split is not None and len(split) == 3
        merged = sorted(
            (float(t), int(slot))
            for times, slots in split
            for t, slot in zip(times, slots)
        )
        full = [
            (tp.arrival_time_s, tp.prompt.prompt_id % len(stream.dataset))
            for tp in stream
        ]
        assert [t for t, _ in merged] == [t for t, _ in full]
        # each arrival keeps its exact sequential prompt slot
        dataset = stream.dataset
        for (_, slot), (_, expected_slot) in zip(merged, full):
            assert dataset[slot].prompt_id % len(dataset) == expected_slot

    def test_partition_arrivals_declines_phased_streams(self):
        scenario = _scenario()
        stream = _stream_for(scenario)
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 2})
        plan = plan_shards(config)

        class NotARequestStream:
            pass

        assert _partition_arrivals(NotARequestStream(), plan) is None

    def test_partition_arrivals_declines_multi_tenant_streams(self):
        # Tenant streams interleave per-tenant arrival processes over
        # per-tenant datasets, so membership is not slot-stable; tenant-mode
        # shards keep the shard-side generic filter (proven byte-identical
        # in TestShardedRuns).
        scenario = _scenario(tenants=_TENANTS)
        stream = _stream_for(scenario)
        config = build_config(scenario, scenario.preset("full"), 0, extra={"shards": 3})
        plan = plan_shards(config)
        assert _partition_arrivals(stream, plan) is None


# --------------------------------------------------------------------------- #
# End-to-end sharded runs
# --------------------------------------------------------------------------- #


class TestShardedRuns:
    def test_one_shard_hex_identical_to_sequential(self):
        sequential = run_scenario("fig16-xl", preset="small", seed=7)
        sharded = run_scenario_sharded("fig16-xl", preset="small", seed=7, shards=1)
        assert _digest(sharded) == _digest(sequential)

    def test_nshard_run_is_deterministic(self):
        scenario = _scenario()
        first = run_scenario_sharded(scenario, preset="full", seed=3, shards=3)
        second = run_scenario_sharded(scenario, preset="full", seed=3, shards=3)
        assert _report(first) == _report(second)

    def test_barrier_window_invariance(self):
        scenario = _scenario()
        narrow = run_scenario_sharded(
            scenario, preset="full", seed=3, shards=3, sync_window_s=30.0
        )
        wide = run_scenario_sharded(
            scenario, preset="full", seed=3, shards=3, sync_window_s=240.0
        )
        assert _digest(narrow) == _digest(wide)
        assert (
            narrow.extras["sharding"]["per_shard"] == wide.extras["sharding"]["per_shard"]
        )
        assert narrow.extras["sharding"]["windows"] > wide.extras["sharding"]["windows"]

    def test_coordinator_partitioning_matches_shard_side_filtering(self, monkeypatch):
        scenario = _scenario()
        fast = run_scenario_sharded(scenario, preset="full", seed=5, shards=3)
        monkeypatch.setattr(shard_mod, "_partition_arrivals", lambda stream, plan: None)
        slow = run_scenario_sharded(scenario, preset="full", seed=5, shards=3)
        assert _report(fast) == _report(slow)

    def test_arrivals_conserved_across_shards(self):
        scenario = _scenario()
        sequential = run_scenario(scenario, preset="full", seed=4)
        sharded = run_scenario_sharded(scenario, preset="full", seed=4, shards=3)
        per_shard = sharded.extras["sharding"]["per_shard"]
        assert (
            sum(row["arrivals"] for row in per_shard)
            == sequential.summary.total_arrivals
        )
        assert sharded.summary.total_arrivals == sequential.summary.total_arrivals

    def test_tenant_mode_preserves_per_tenant_arrivals(self):
        scenario = _scenario(tenants=_TENANTS)
        sequential = run_scenario(scenario, preset="full", seed=2)
        sharded = run_scenario_sharded(scenario, preset="full", seed=2, shards=3)
        seq_tenants = {t.name: t.arrivals for t in sequential.summary.tenants}
        shard_tenants = {t.name: t.arrivals for t in sharded.summary.tenants}
        assert shard_tenants == seq_tenants

    def test_recorded_messages_account_for_every_request(self):
        scenario = _scenario()
        run = run_scenario_sharded(
            scenario, preset="full", seed=6, shards=2, record_messages=True
        )
        recorded = run.extras["sharding"]["messages"]
        assert set(recorded) == {0, 1}
        total_completions = 0
        for shard_id, entries in recorded.items():
            decoded = [messages.decode(e) for e in entries]
            dispatches = {
                m.request_id for m in decoded if isinstance(m, messages.DispatchMessage)
            }
            completions = {
                m.request_id for m in decoded if isinstance(m, messages.CompletionMessage)
            }
            # every completion was dispatched on this shard first
            assert completions <= dispatches
            total_completions += len(completions)
        assert total_completions == run.summary.total_completions

    def test_fault_schedules_are_rejected(self):
        scenario = _scenario(faults=(FaultEvent(fail_at_minute=2.0, worker_id=0),))
        with pytest.raises(ValueError, match="worker faults"):
            run_scenario_sharded(scenario, preset="full", seed=0, shards=2)

    def test_sharding_extras_describe_the_plan(self):
        run = run_scenario_sharded(_scenario(), preset="full", seed=1, shards=2)
        sharding = run.extras["sharding"]
        assert sharding["shards"] == 2
        assert sharding["mode"] == "hash"
        assert len(sharding["plan"]) == 2
        assert sum(p["workers"] for p in sharding["plan"]) == 8
        assert sharding["barriers"][-1]["window_end_s"] >= 8 * 60.0
