"""Multi-tenant serving: tenant specs, multiplexed streams, fair-share
admission, per-tenant SLO/quality/cache accounting, and the isolation
properties the tenancy layer exists to provide.

The two load-bearing guarantees pinned here:

* **Identity**: with tenancy unconfigured — or configured as the single
  default tenant — a seeded run is bit-identical to the pre-tenancy system.
* **Isolation**: under a flash crowd from one tenant, fair-share admission
  keeps the quiet tenant's SLO violation ratio within 2x its isolated-run
  value, while the same workload without fair-share degrades it >= 5x.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cache.approximate import ApproximateCache
from repro.cache.network import NetworkCondition, NetworkModel
from repro.core.admission import FairShareAdmission
from repro.core.config import ArgusConfig
from repro.core.oda import ShiftMap
from repro.experiments.runner import ExperimentRunner, build_system
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import TenantSummary, fair_share_index
from repro.metrics.slo import SloPolicy
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.simulation.engine import SimulationEngine
from repro.workloads.replay import RequestStream
from repro.workloads.tenants import (
    MultiTenantRequestStream,
    TenantSpec,
    build_runtimes,
    resolve_shares,
    tenant_trace,
)
from repro.workloads.traces import TraceLibrary


def _prompt(tenant: str = "", prompt_id: int = 0, text: str = "a red apple") -> Prompt:
    return Prompt(
        prompt_id=prompt_id,
        text=text,
        num_entities=1,
        num_attributes=1,
        num_style_tags=0,
        has_action=False,
        has_scene=False,
        complexity=0.2,
        tenant=tenant,
    )


# --------------------------------------------------------------------- #
# TenantSpec and share resolution
# --------------------------------------------------------------------- #
class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", traffic_share=1.5)
        with pytest.raises(ValueError):
            TenantSpec(name="t", slo_class="platinum")
        with pytest.raises(ValueError):
            TenantSpec(name="t", slo_multiplier=-1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", quality_floor_rank=-1)
        with pytest.raises(ValueError):
            TenantSpec(name="t", quality_floor=1.5)
        with pytest.raises(ValueError):
            TenantSpec(name="t", cache_quota=0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", extra_qpm=(5.0, -1.0))

    def test_slo_policy_resolution(self):
        base = SloPolicy(multiplier=4.0)
        # standard inherits the deployment policy unchanged.
        assert TenantSpec(name="t").slo_policy(base) is base
        # a named class pins its own multiplier.
        assert TenantSpec(name="t", slo_class="gold").slo_policy(base).multiplier == 2.0
        assert (
            TenantSpec(name="t", slo_class="best-effort").slo_policy(base).multiplier == 6.0
        )
        # an explicit multiplier wins over the class.
        spec = TenantSpec(name="t", slo_class="gold", slo_multiplier=9.0)
        assert spec.slo_policy(base).multiplier == 9.0

    def test_unique_names_enforced(self):
        with pytest.raises(ValueError):
            ArgusConfig(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))

    def test_anonymous_tenant_only_alone(self):
        with pytest.raises(ValueError):
            ArgusConfig(tenants=(TenantSpec(name=""), TenantSpec(name="b")))

    def test_shares_must_be_feasible(self):
        with pytest.raises(ValueError):
            ArgusConfig(
                tenants=(
                    TenantSpec(name="a", traffic_share=0.7),
                    TenantSpec(name="b", traffic_share=0.7),
                )
            )

    def test_share_resolution_splits_remainder(self):
        tenants = (
            TenantSpec(name="a", traffic_share=0.5),
            TenantSpec(name="b"),
            TenantSpec(name="c"),
        )
        shares = resolve_shares(tenants)
        assert shares == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_config_coerces_dict_specs(self):
        config = ArgusConfig(tenants=[{"name": "a", "weight": 2.0}])
        assert config.tenants[0] == TenantSpec(name="a", weight=2.0)
        assert config.multi_tenant
        assert not config.admission_enabled  # fairness needs >= 2 tenants

    def test_runtimes_resolve_budgets(self):
        base = SloPolicy()
        runtimes = build_runtimes(
            (TenantSpec(name="g", slo_class="gold"), TenantSpec(name="b")), base
        )
        assert runtimes["g"].budget_s == pytest.approx(2.0 * base.base_latency_s)
        assert runtimes["b"].budget_s == pytest.approx(base.budget_s)


# --------------------------------------------------------------------- #
# Multiplexed streams
# --------------------------------------------------------------------- #
class TestMultiTenantStream:
    def _tenants(self):
        return (
            TenantSpec(name="a", traffic_share=0.5),
            TenantSpec(name="b", traffic_share=0.5),
        )

    def _datasets(self, tenants):
        return {
            spec.name: PromptDataset.synthetic(count=50, seed=10 + i)
            for i, spec in enumerate(tenants)
        }

    def test_deterministic_interleave(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=30.0)
        tenants = self._tenants()
        datasets = self._datasets(tenants)
        first = list(MultiTenantRequestStream(trace, tenants, datasets, seed=4))
        second = list(MultiTenantRequestStream(trace, tenants, datasets, seed=4))
        assert first == second
        assert all(
            first[i].arrival_time_s <= first[i + 1].arrival_time_s
            for i in range(len(first) - 1)
        )
        tenant_tags = {tp.prompt.tenant for tp in first}
        assert tenant_tags == {"a", "b"}

    def test_single_default_tenant_equals_plain_stream(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=3, qpm=30.0)
        dataset = PromptDataset.synthetic(count=50, seed=10)
        plain = list(RequestStream(trace=trace, dataset=dataset, seed=4))
        multi = list(
            MultiTenantRequestStream(
                trace, (TenantSpec.default(),), {"": dataset}, seed=4
            )
        )
        assert multi == plain

    def test_extra_qpm_adds_traffic(self):
        base = TraceLibrary(seed=0).constant(duration_minutes=4, qpm=60.0)
        spec = TenantSpec(name="n", traffic_share=0.5, extra_qpm=(0.0, 100.0))
        trace = tenant_trace(base, spec, share=0.5)
        assert trace.qpm == (30.0, 130.0, 30.0, 30.0)

    def test_stream_requires_datasets_for_all_tenants(self):
        trace = TraceLibrary(seed=0).constant(duration_minutes=2, qpm=10.0)
        tenants = self._tenants()
        with pytest.raises(ValueError):
            MultiTenantRequestStream(trace, tenants, {"a": PromptDataset.synthetic(10, 1)})


# --------------------------------------------------------------------- #
# Fair-share admission controller
# --------------------------------------------------------------------- #
class TestFairShareAdmission:
    def _controller(self, engine=None, capacity_qps=10.0, weights=(1.0, 1.0)):
        engine = engine or SimulationEngine(seed=0)
        admitted = []
        tenants = tuple(
            TenantSpec(name=name, weight=weight)
            for name, weight in zip(("a", "b"), weights)
        )
        controller = FairShareAdmission(
            engine=engine,
            tenants=tenants,
            capacity_qps=lambda: capacity_qps,
            admit=lambda prompt, offered_at: admitted.append((prompt.tenant, offered_at)),
            rate_factor=1.0,
            burst_s=1.0,
        )
        return engine, controller, admitted

    def test_within_share_admits_immediately(self):
        engine, controller, admitted = self._controller()
        # Tenant a's guaranteed rate is 5 qps; offer at 2 qps.
        for i in range(10):
            assert controller.offer(i * 0.5, _prompt("a", prompt_id=i))
        assert controller.backlog() == 0
        assert controller.stats_for("a").admitted_immediately == 10

    def test_flood_queues_offender_not_victim(self):
        engine, controller, admitted = self._controller()
        # Tenant a floods far beyond its 5 qps share within one second.
        flood_queued = 0
        for i in range(50):
            if not controller.offer(0.01 * i, _prompt("a", prompt_id=i)):
                flood_queued += 1
        assert flood_queued > 30
        # Tenant b, arriving mid-flood at its own trickle, is untouched.
        assert controller.offer(0.6, _prompt("b", prompt_id=100))
        assert controller.backlog("b") == 0
        assert controller.backlog("a") == flood_queued

    def test_queue_drains_at_guaranteed_rate(self):
        engine, controller, admitted = self._controller()
        for i in range(30):
            controller.offer(0.0, _prompt("a", prompt_id=i))
        engine.run(until=3.0)
        # ~5 qps guaranteed + surplus (b idle) ~10 qps total for 3 s.
        drained = controller.stats_for("a").admitted
        assert drained >= 25
        waits = controller.stats_for("a")
        assert waits.max_wait_s > 0.0

    def test_weighted_shares(self):
        engine, controller, admitted = self._controller(weights=(3.0, 1.0))
        for i in range(40):
            controller.offer(0.0, _prompt("a", prompt_id=i))
            controller.offer(0.0, _prompt("b", prompt_id=100 + i))
        engine.run(until=2.0)
        served_a = controller.stats_for("a").admitted
        served_b = controller.stats_for("b").admitted
        assert served_a > served_b  # 3x the weight, ~3x the drain rate
        assert served_a >= 2 * served_b

    def test_unknown_tenant_bypasses(self):
        engine, controller, admitted = self._controller()
        assert controller.offer(0.0, _prompt("mystery"))

    def test_needs_two_tenants(self):
        with pytest.raises(ValueError):
            FairShareAdmission(
                engine=SimulationEngine(seed=0),
                tenants=(TenantSpec(name="solo"),),
                capacity_qps=lambda: 1.0,
                admit=lambda p, t: None,
            )


# --------------------------------------------------------------------- #
# Planning: PASM clamps and weighted affinity
# --------------------------------------------------------------------- #
class TestQualityFloors:
    def test_shift_map_clamped_folds_mass(self):
        base = ShiftMap.load_proportional(np.array([0.1, 0.2, 0.3, 0.4]))
        clamped = base.clamped(1)
        matrix = clamped.matrix
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix[:, 2:] == 0.0)
        # All the rank>=2 mass landed on rank 1.
        np.testing.assert_allclose(matrix[:, 1], base.matrix[:, 1:].sum(axis=1))

    def test_clamp_at_top_rank_is_identity(self):
        base = ShiftMap.identity(4)
        assert base.clamped(3) is base

    def test_scheduler_respects_floor(self):
        from repro.cluster.cluster import GpuCluster
        from repro.core.scheduler import PromptScheduler
        from repro.models.zoo import ModelZoo, Strategy

        engine = SimulationEngine(seed=0)
        zoo = ModelZoo()
        cluster = GpuCluster(engine, zoo, num_workers=4)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[1], 1: levels[1], 2: levels[5], 3: levels[5]})
        scheduler = PromptScheduler(cluster, num_levels=6, rng=np.random.default_rng(0))
        scheduler.set_tenants(
            build_runtimes(
                (
                    TenantSpec(name="floor", traffic_share=0.5, quality_floor_rank=2),
                    TenantSpec(name="free", traffic_share=0.5),
                ),
                SloPolicy(),
            )
        )
        # A PASM that pushes everything to the most approximate level.
        scheduler.set_shift_map(
            ShiftMap.load_proportional(np.array([0, 0, 0, 0, 0, 1.0]))
        )
        for i in range(20):
            decision = scheduler.route(_prompt("floor", prompt_id=i))
            assert decision.assigned_rank <= 2
            decision = scheduler.route(_prompt("free", prompt_id=100 + i))
            assert decision.assigned_rank == 5

    def test_floor_breach_counted_when_no_eligible_worker(self):
        from repro.cluster.cluster import GpuCluster
        from repro.core.scheduler import PromptScheduler
        from repro.models.zoo import ModelZoo, Strategy

        engine = SimulationEngine(seed=0)
        zoo = ModelZoo()
        cluster = GpuCluster(engine, zoo, num_workers=2)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[5], 1: levels[5]})
        scheduler = PromptScheduler(cluster, num_levels=6, rng=np.random.default_rng(0))
        scheduler.set_tenants(
            build_runtimes(
                (
                    TenantSpec(name="floor", traffic_share=0.5, quality_floor_rank=1),
                    TenantSpec(name="other", traffic_share=0.5),
                ),
                SloPolicy(),
            )
        )
        decision = scheduler.route(_prompt("floor"))
        # Better to serve above the floor than to drop the request.
        assert decision is not None
        assert decision.assigned_rank == 5
        assert scheduler.floor_breaches == 1

    def test_weighted_affinity_histogram(self):
        from repro.core.predictor import WorkloadDistributionPredictor

        predictor = WorkloadDistributionPredictor(num_levels=2, lookback=100)
        predictor.observe(0, weight=3.0)
        predictor.observe(1, weight=1.0)
        dist = predictor.affinity_distribution()
        assert dist[0] == pytest.approx(0.75)
        with pytest.raises(ValueError):
            predictor.observe(0, weight=0.0)


# --------------------------------------------------------------------- #
# Tenant-namespaced cache
# --------------------------------------------------------------------- #
class TestTenantCache:
    def _cache(self, tenants):
        network = NetworkModel(seed=0)
        network.set_default_condition(NetworkCondition.HEALTHY)
        return ApproximateCache(network=network, tenants=tenants)

    def test_namespaces_are_isolated(self):
        cache = self._cache((TenantSpec(name="a"), TenantSpec(name="b")))
        prompt_a = _prompt("a", prompt_id=1, text="a blue dragon in a forest")
        cache.store_states(prompt_a)
        # The *same* text from tenant b misses: b's namespace is empty.
        probe_b = _prompt("b", prompt_id=2, text="a blue dragon in a forest")
        outcome = cache.retrieve(probe_b, requested_skip=10, now_s=0.0)
        assert not outcome.hit
        # Tenant a itself hits.
        probe_a = _prompt("a", prompt_id=3, text="a blue dragon in a forest")
        outcome = cache.retrieve(probe_a, requested_skip=10, now_s=0.0)
        assert outcome.hit
        assert cache.retrieval_hit_rate_for("a") == 1.0
        assert cache.retrieval_hit_rate_for("b") == 0.0

    def test_quota_bounds_entries_and_evicts_vectors(self):
        cache = self._cache((TenantSpec(name="a", cache_quota=5), TenantSpec(name="b")))
        for i in range(20):
            cache.store_states(_prompt("a", prompt_id=i, text=f"unique text {i} xyz"))
        assert cache.tenant_entries("a") == 5
        # The vector index shrank in lockstep with the store evictions.
        assert len(cache._namespaces["a"].vectordb) == 5

    def test_one_tenants_churn_cannot_evict_anothers_set(self):
        cache = self._cache(
            (TenantSpec(name="a", cache_quota=5), TenantSpec(name="b", cache_quota=5))
        )
        victim = _prompt("b", prompt_id=999, text="the protected working set entry")
        cache.store_states(victim)
        for i in range(200):
            cache.store_states(_prompt("a", prompt_id=i, text=f"churn churn {i}"))
        assert cache.tenant_entries("b") == 1
        probe = _prompt("b", prompt_id=1000, text="the protected working set entry")
        assert cache.retrieve(probe, requested_skip=10, now_s=0.0).hit

    def test_anonymous_tenant_uses_default_namespace(self):
        cache = self._cache(())
        prompt = _prompt("", prompt_id=5, text="plain old anonymous prompt")
        cache.store_states(prompt)
        assert len(cache.store) == 1
        assert cache.tenant_entries("") == 1


# --------------------------------------------------------------------- #
# Per-tenant metrics
# --------------------------------------------------------------------- #
class TestTenantMetrics:
    def test_collector_tenant_stats(self):
        from repro.cluster.requests import CompletedRequest, Request
        from repro.models.zoo import Strategy

        collector = MetricsCollector()
        for i, (tenant, latency) in enumerate(
            [("a", 1.0), ("a", 50.0), ("b", 1.0), ("b", 1.0)]
        ):
            collector.record_arrival(0.0, tenant=tenant)
            request = Request(
                request_id=i,
                prompt=_prompt(tenant, prompt_id=i),
                arrival_time_s=0.0,
                strategy=Strategy.AC,
                predicted_rank=0,
                assigned_rank=0,
            )
            completed = CompletedRequest(
                request=request,
                worker_id=0,
                start_time_s=0.0,
                completion_time_s=latency,
                effective_rank=0,
                service_time_s=latency,
            )
            collector.record_completion(completed, pickscore=0.8, best_pickscore=1.0)
        collector.record_drop(tenant="b")
        stats_a = collector.tenant_stats("a", budget_s=10.0)
        assert stats_a["arrivals"] == 2
        assert stats_a["completions"] == 2
        assert stats_a["violation_ratio"] == pytest.approx(0.5)
        stats_b = collector.tenant_stats("b", budget_s=10.0)
        assert stats_b["violation_ratio"] == 0.0
        assert stats_b["dropped"] == 1
        assert collector.tenant_stats("ghost")["completions"] == 0
        assert set(collector.tenant_names) == {"a", "b"}

    def test_fair_share_index(self):
        def row(name, completions, weight=1.0, arrivals=None):
            return TenantSummary(
                name=name,
                slo_class="standard",
                weight=weight,
                slo_budget_s=10.0,
                arrivals=arrivals if arrivals is not None else completions,
                completions=completions,
                dropped=0,
                slo_violation_ratio=0.0,
                mean_relative_quality=1.0,
                p99_latency_s=1.0,
            )

        assert fair_share_index((row("a", 100), row("b", 100))) == pytest.approx(1.0)
        skewed = fair_share_index((row("a", 190), row("b", 10)))
        assert skewed < 0.6
        # Weight-normalised: 3x weight serving 3x traffic is perfectly fair.
        weighted = fair_share_index((row("a", 300, weight=3.0), row("b", 100)))
        assert weighted == pytest.approx(1.0)
        # Idle tenants are excluded, not counted as starved.
        idle = fair_share_index((row("a", 100), row("b", 0, arrivals=0)))
        assert idle == pytest.approx(1.0)

    def test_slo_violation_ratio_accepts_array_likes(self):
        policy = SloPolicy()
        budget = policy.budget_s
        as_list = policy.violation_ratio([budget / 2, budget * 2])
        as_array = policy.violation_ratio(np.array([budget / 2, budget * 2]))
        as_tuple = policy.violation_ratio((budget / 2, budget * 2))
        assert as_list == as_array == as_tuple == 0.5
        assert isinstance(as_array, float)
        assert policy.violation_ratio(np.array([])) == 0.0
        assert isinstance(policy.violation_ratio(np.array([])), float)


# --------------------------------------------------------------------- #
# End-to-end: identity and isolation
# --------------------------------------------------------------------- #
def _small_config(tenants=(), **overrides):
    return ArgusConfig(
        num_workers=4,
        classifier_training_prompts=300,
        profiling_prompts=150,
        classifier_epochs=6,
        tenants=tenants,
        seed=5,
        **overrides,
    )


def _fig16_style_run(tenants=()):
    """A seeded fig16-style run (argus on a twitter-like trace)."""
    config = _small_config(tenants=tenants)
    trace = TraceLibrary(seed=5).twitter_like(
        duration_minutes=10, base_qpm=25.0, peak_qpm=50.0
    )
    runner = ExperimentRunner(seed=5, dataset_size=400)
    system = build_system("argus", config=config)
    if tenants:
        datasets = {tenants[0].name: runner.make_dataset()}
        stream = MultiTenantRequestStream(
            trace, tenants, datasets, seed=runner.seed + 2
        )
        return runner.run(system, trace, stream=stream)
    return runner.run(system, trace)


class TestIdentity:
    def test_default_tenant_bit_identical_to_untenanted(self):
        plain = _fig16_style_run()
        tenant = _fig16_style_run((TenantSpec.default(),))
        assert len(tenant.summary.tenants) == 1
        # Every pre-tenancy field (and the minute series) is bit-identical.
        assert replace(tenant.summary, tenants=()) == plain.summary
        plain_json = json.dumps(plain.summary.as_dict(), sort_keys=True)
        stripped_json = json.dumps(
            replace(tenant.summary, tenants=()).as_dict(), sort_keys=True
        )
        assert stripped_json == plain_json
        plain_minutes = [
            (m.minute, m.offered_qpm, m.served_qpm, m.violation_ratio)
            for m in plain.minute_series
        ]
        tenant_minutes = [
            (m.minute, m.offered_qpm, m.served_qpm, m.violation_ratio)
            for m in tenant.minute_series
        ]
        assert tenant_minutes == plain_minutes

    def test_untenanted_summary_json_has_no_tenant_keys(self):
        summary = _fig16_style_run().summary
        payload = summary.as_dict()
        assert "tenants" not in payload
        assert "fair_share_index" not in payload


NOISY_SPIKE = (0.0,) * 6 + (130.0,) * 5 + (0.0,) * 7
QUIET = TenantSpec(name="quiet", traffic_share=0.25)
NOISY = TenantSpec(name="noisy", traffic_share=0.75, extra_qpm=NOISY_SPIKE)


def _noisy_neighbor_run(tenants, fair_share=True):
    config = _small_config(
        tenants=tenants,
        fair_share_admission=fair_share,
        admission_rate_factor=0.65,
    )
    trace = TraceLibrary(seed=5).constant(duration_minutes=18, qpm=48.0)
    datasets = {
        spec.name: PromptDataset.synthetic(count=600, seed=6 + 7919 * i)
        for i, spec in enumerate(tenants)
    }
    stream = MultiTenantRequestStream(trace, tenants, datasets, seed=7)
    runner = ExperimentRunner(seed=5, dataset_size=600)
    system = build_system("argus", config=config)
    return runner.run(system, trace, stream=stream).summary


class TestNoisyNeighborIsolation:
    @pytest.fixture(scope="class")
    def runs(self):
        isolated = _noisy_neighbor_run((QUIET,))
        fair = _noisy_neighbor_run((QUIET, NOISY), fair_share=True)
        unfair = _noisy_neighbor_run((QUIET, NOISY), fair_share=False)
        return isolated, fair, unfair

    def test_quiet_tenant_offered_stream_is_identical(self, runs):
        isolated, fair, _ = runs
        assert isolated.tenant("quiet").arrivals == fair.tenant("quiet").arrivals

    def test_fair_share_preserves_quiet_tenant_slo(self, runs):
        """The acceptance bound: within 2x of the isolated-run value."""
        isolated, fair, _ = runs
        v_iso = isolated.tenant("quiet").slo_violation_ratio
        v_fair = fair.tenant("quiet").slo_violation_ratio
        assert v_fair <= 2.0 * v_iso + 0.02

    def test_without_fair_share_quiet_tenant_degrades_5x(self, runs):
        isolated, _, unfair = runs
        v_iso = isolated.tenant("quiet").slo_violation_ratio
        v_unfair = unfair.tenant("quiet").slo_violation_ratio
        assert v_unfair >= 5.0 * max(v_iso, 0.01)

    def test_fair_share_beats_no_fair_share_by_5x(self, runs):
        _, fair, unfair = runs
        v_fair = fair.tenant("quiet").slo_violation_ratio
        v_unfair = unfair.tenant("quiet").slo_violation_ratio
        assert v_unfair >= 5.0 * max(v_fair, 0.01)

    def test_noisy_tenant_bears_its_own_overload(self, runs):
        _, fair, _ = runs
        noisy = fair.tenant("noisy")
        assert noisy.slo_violation_ratio > 0.3
        assert noisy.admission_delayed > 100
        assert noisy.mean_admission_wait_s > 1.0
        # Offered requests end up served, dropped, parked at admission, or
        # still in-flight at worker queues when the run ends; the backlog
        # field surfaces the admission-parked remainder explicitly.
        assert noisy.admission_backlog > 0
        assert noisy.completions + noisy.dropped + noisy.admission_backlog <= noisy.arrivals

    def test_fair_run_is_deterministic(self):
        first = _noisy_neighbor_run((QUIET, NOISY), fair_share=True)
        second = _noisy_neighbor_run((QUIET, NOISY), fair_share=True)
        assert first == second
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )


# --------------------------------------------------------------------- #
# Config validation satellites
# --------------------------------------------------------------------- #
class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"retrieval_latency_threshold_s": -0.5},
            {"retrieval_latency_threshold_s": 0.0},
            {"retrieval_violations_to_switch": 0},
            {"probe_interval_s": 0.0},
            {"probe_interval_s": -3.0},
            {"backlog_recalibration_min_gap_s": -1.0},
            {"scale_out_cooldown_s": -1.0},
            {"scale_in_cooldown_s": -1.0},
            {"autoscale_backlog_factor": -0.1},
            {"classifier_training_prompts": 0},
            {"classifier_epochs": 0},
            {"profiling_prompts": 0},
            {"worker_memory_gib": 0.0},
            {"worker_memory_gib": -10.0},
            {"admission_rate_factor": 0.0},
            {"admission_burst_s": -1.0},
        ],
    )
    def test_nonsensical_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            ArgusConfig(**overrides)

    def test_unknown_gpu_rejected(self):
        with pytest.raises(KeyError):
            ArgusConfig(gpu="TPU-v9")
        with pytest.raises(KeyError):
            ArgusConfig(gpu_mix=("A100", "TPU-v9"))

    def test_min_max_workers_cross_validated(self):
        # min > max is impossible through the existing per-field checks but
        # stays explicitly rejected should those bounds ever loosen.
        with pytest.raises(ValueError):
            ArgusConfig(num_workers=4, min_workers=5, max_workers=8)

    def test_valid_defaults_still_pass(self):
        config = ArgusConfig()
        assert config.tenants == ()
        assert not config.multi_tenant
