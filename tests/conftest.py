"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.models.zoo import ModelZoo
from repro.prompts.dataset import PromptDataset
from repro.quality.pickscore import PickScoreModel


@pytest.fixture(scope="session")
def zoo() -> ModelZoo:
    """A single A100 model zoo shared across tests."""
    return ModelZoo(gpu="A100")


@pytest.fixture(scope="session")
def pickscore() -> PickScoreModel:
    """A shared quality model (deterministic, seed 0)."""
    return PickScoreModel(seed=0)


@pytest.fixture(scope="session")
def prompts_small() -> list:
    """A small prompt sample for unit tests."""
    return PromptDataset.synthetic(count=200, seed=3).prompts


@pytest.fixture(scope="session")
def prompts_medium() -> list:
    """A medium prompt sample for distribution-level assertions."""
    return PromptDataset.synthetic(count=1200, seed=5).prompts
