"""Tests for the distributed cache tier: ring, per-node index, replication,
tombstones, quotas, poisoning, per-node network windows, shard-aware routing,
and the factory's bit-identity gate."""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.cache import build_cache
from repro.cache.approximate import ApproximateCache
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.tier import CacheTier, HashRing, _key_hash, _NodeIndex
from repro.core.config import ArgusConfig
from repro.prompts.dataset import PromptDataset
from repro.prompts.embedding import PromptEmbedder
from repro.workloads.tenants import TenantSpec


def _prompts(count=40, seed=0):
    return PromptDataset.synthetic(count=count, seed=seed).prompts


def _random_unit(n, dim=64, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


class TestHashRing:
    def test_deterministic_placement(self):
        a = HashRing([0, 1, 2], vnodes=32)
        b = HashRing([0, 1, 2], vnodes=32)
        for h in range(0, 2**63, 2**58):
            assert a.owner(h) == b.owner(h)

    def test_preference_distinct_and_owner_first(self):
        ring = HashRing([0, 1, 2, 3], vnodes=32)
        for h in range(0, 2**63, 2**57):
            prefs = ring.preference(h, 3)
            assert len(prefs) == len(set(prefs)) == 3
            assert prefs[0] == ring.owner(h)

    def test_add_node_moves_bounded_fraction(self):
        ring = HashRing([0, 1, 2, 3], vnodes=64)
        hashes = [h for h in range(0, 2**63, 2**52)]
        before = {h: ring.owner(h) for h in hashes}
        ring.add_node(4)
        moved = sum(1 for h in hashes if ring.owner(h) != before[h])
        # Joining a 5th node should claim roughly 1/5 of the keyspace;
        # anything migrating that didn't move to the new node is a bug.
        assert moved / len(hashes) < 0.35
        for h in hashes:
            if ring.owner(h) != before[h]:
                assert ring.owner(h) == 4

    def test_remove_node_only_reassigns_its_keys(self):
        ring = HashRing([0, 1, 2], vnodes=64)
        hashes = [h for h in range(0, 2**63, 2**52)]
        before = {h: ring.owner(h) for h in hashes}
        ring.remove_node(1)
        for h in hashes:
            if before[h] != 1:
                assert ring.owner(h) == before[h]
            else:
                assert ring.owner(h) in (0, 2)

    def test_remove_last_node_rejected(self):
        ring = HashRing([0], vnodes=8)
        with pytest.raises(ValueError):
            ring.remove_node(0)

    def test_duplicate_node_rejected(self):
        ring = HashRing([0, 1], vnodes=8)
        with pytest.raises(ValueError):
            ring.add_node(1)


class TestNodeIndex:
    def test_matches_flat_argmax(self):
        # Above the build threshold the clustered index must still return
        # the true nearest stored vector for near-duplicate queries (the
        # cache's workload: re-served prompts query their own embedding).
        vectors = _random_unit(4000, seed=1)
        index = _NodeIndex(dim=64, clusters=16, nprobe=4)
        for i, v in enumerate(vectors):
            index.upsert(f"k{i}", v, i)
        rng = np.random.default_rng(2)
        for i in rng.integers(0, len(vectors), size=50):
            [(key, sim, seq)] = index.search(vectors[i], top_k=1)
            assert key == f"k{i}"
            assert sim == pytest.approx(1.0)
            assert seq == i

    def test_tie_order_matches_flat_index(self):
        # Identical vectors tie on similarity; the winner must be the
        # earliest insertion (global seq asc), same as the flat index.
        v = _random_unit(1, seed=3)[0]
        index = _NodeIndex(dim=64, clusters=4, nprobe=2)
        for i in (5, 2, 9):
            index.upsert(f"k{i}", v, i)
        [(key, _, seq)] = index.search(v, top_k=1)
        assert (key, seq) == ("k2", 2)

    def test_delete_swaps_and_stays_searchable(self):
        vectors = _random_unit(300, seed=4)
        index = _NodeIndex(dim=64, clusters=8, nprobe=8)
        for i, v in enumerate(vectors):
            index.upsert(f"k{i}", v, i)
        for i in range(0, 300, 3):
            assert index.delete(f"k{i}")
            assert not index.delete(f"k{i}")
        for i in range(300):
            hits = index.search(vectors[i], top_k=1)
            if i % 3 == 0:
                assert not hits or hits[0][0] != f"k{i}"
            else:
                assert hits[0][0] == f"k{i}"


def _tier(**kwargs) -> CacheTier:
    defaults = dict(shards=3, replication=1, embedder=PromptEmbedder(), seed=0)
    defaults.update(kwargs)
    return CacheTier(**defaults)


class TestTierPlacementAndReplication:
    def test_store_places_owner_and_replicas(self):
        tier = _tier()
        prompts = _prompts(30)
        for p in prompts:
            tier.store_states(p, now_s=10.0)
        for p in prompts:
            key = tier.entry_key(p.tenant, p.prompt_id)
            owner = tier._nodes[tier.owner_shard(p.tenant, p.prompt_id)]
            assert key in owner.primaries
            copies = sum(1 for n in tier._nodes.values() if key in n.states)
            assert copies == 2  # owner + 1 replica

    def test_replica_invisible_until_lag_elapses(self):
        tier = _tier(replication_lag_s=30.0)
        [p] = _prompts(1)
        tier.store_states(p, now_s=100.0)
        owner_id = tier.owner_shard(p.tenant, p.prompt_id)
        # Darken the owner: before the staleness bound the replica copy is
        # not yet visible (stale miss); after it, the replica serves.
        tier.schedule_node_condition(owner_id, 0.0, 10_000.0, NetworkCondition.OUTAGE)
        early = tier.retrieve(p, requested_skip=10, now_s=110.0)
        assert not early.hit
        late = tier.retrieve(p, requested_skip=10, now_s=140.0)
        assert late.hit
        replica_reads = sum(n.replica_reads for n in tier._nodes.values())
        assert replica_reads == 1

    def test_warm_entries_visible_immediately(self):
        tier = _tier(replication_lag_s=1e9)
        prompts = _prompts(10)
        tier.warm(prompts)
        p = prompts[0]
        owner_id = tier.owner_shard(p.tenant, p.prompt_id)
        tier.schedule_node_condition(owner_id, 0.0, 10_000.0, NetworkCondition.OUTAGE)
        assert tier.retrieve(p, requested_skip=10, now_s=5.0).hit

    def test_hot_owner_spills_to_replica(self):
        tier = _tier(hot_shard_threshold=3, replication_lag_s=0.0)
        [p] = _prompts(1)
        tier.store_states(p, now_s=0.0)
        for i in range(8):
            out = tier.retrieve(p, requested_skip=10, now_s=1.0 + i)
            assert out.hit
        assert sum(n.replica_reads for n in tier._nodes.values()) > 0

    def test_retrieval_matches_flat_cache_semantics(self):
        # Same prompt stream through the flat cache and a sharded tier:
        # identical hit/miss decisions and effective skips (network held
        # healthy so only placement differs).
        prompts = _prompts(60)
        flat = ApproximateCache(network=NetworkModel(jitter_fraction=0.0))
        tier = _tier(
            replication=0,
            network=NetworkModel(jitter_fraction=0.0),
            replication_lag_s=0.0,
        )
        for cache in (flat, tier):
            for i, p in enumerate(prompts):
                cache.store_states(p, *(() if cache is flat else (float(i),)))
        for i, p in enumerate(prompts):
            a = flat.retrieve(p, requested_skip=15, now_s=100.0 + i)
            b = tier.retrieve(p, requested_skip=15, now_s=100.0 + i)
            assert a.hit == b.hit
            assert a.effective_skip == b.effective_skip
            assert a.similarity == pytest.approx(b.similarity)


class TestRebalance:
    def test_add_node_migrates_and_preserves_data(self):
        tier = _tier()
        prompts = _prompts(60)
        for p in prompts:
            tier.store_states(p, now_s=0.0)
        new_id = tier.add_node(now_s=1.0)
        assert new_id == 3
        assert tier.moved_entries > 0
        stats = tier.tier_stats()
        assert stats["shards"] == 4
        assert stats["entries"] == len(prompts)
        for p in prompts:
            assert tier.retrieve(p, requested_skip=10, now_s=500.0).hit

    def test_remove_node_hands_off_primaries(self):
        tier = _tier()
        prompts = _prompts(60)
        for p in prompts:
            tier.store_states(p, now_s=0.0)
        tier.remove_node(0, now_s=1.0)
        stats = tier.tier_stats()
        assert stats["shards"] == 2
        assert stats["entries"] == len(prompts)
        assert not stats["per_shard"]["0"]["live"]
        for p in prompts:
            assert tier.owner_shard(p.tenant, p.prompt_id) != 0
            assert tier.retrieve(p, requested_skip=10, now_s=500.0).hit

    def test_replica_sets_follow_the_ring(self):
        tier = _tier(replication=2, shards=4)
        prompts = _prompts(40)
        for p in prompts:
            tier.store_states(p, now_s=0.0)
        tier.add_node(now_s=1.0)
        for p in prompts:
            key = tier.entry_key(p.tenant, p.prompt_id)
            prefs = set(tier.ring.preference(_key_hash(key), 3))
            holders = {nid for nid, n in tier._nodes.items() if key in n.states}
            assert holders == prefs


class TestQuotaAndTombstones:
    def test_quota_evicts_lru_across_shards(self):
        spec = TenantSpec(name="alpha", cache_quota=10)
        tier = _tier(tenants=(spec,))
        prompts = _prompts(25)
        for i, p in enumerate(prompts):
            object.__setattr__(p, "tenant", "alpha")
            tier.store_states(p, now_s=float(i))
        assert tier.tenant_entries("alpha") == 10
        assert tier.evictions == 15
        assert tier.tier_stats()["entries"] == 10
        # Survivors are the most recently stored.
        for p in prompts[-10:]:
            assert tier.retrieve(p, requested_skip=10, now_s=1000.0).hit

    def test_eviction_tombstones_replicas_then_compacts(self):
        spec = TenantSpec(name="alpha", cache_quota=5)
        tier = _tier(tenants=(spec,), replication_lag_s=10.0)
        prompts = _prompts(30)
        for i, p in enumerate(prompts):
            object.__setattr__(p, "tenant", "alpha")
            tier.store_states(p, now_s=float(i))
        live_tombstones = sum(len(n.tombstones) for n in tier._nodes.values())
        assert live_tombstones > 0
        tier._compact(now_s=10_000.0)
        assert sum(len(n.tombstones) for n in tier._nodes.values()) == 0
        assert tier.tombstones_compacted >= live_tombstones


class TestPoisoning:
    def test_poison_detected_and_never_served(self):
        tier = _tier(seed=3)
        prompts = _prompts(40)
        for p in prompts:
            tier.store_states(p, now_s=0.0)
        poisoned = tier.poison(0.5, seed=1)
        assert 0 < poisoned < len(prompts)
        hits = 0
        for p in prompts:
            out = tier.retrieve(p, requested_skip=10, now_s=100.0)
            hits += out.hit
        stats = tier.tier_stats()["poison"]
        assert stats["entries_poisoned"] == poisoned
        assert stats["detected"] == poisoned
        assert stats["served"] == 0
        # Detected entries were deleted tier-wide, so they missed.
        assert hits == len(prompts) - poisoned
        assert tier.tier_stats()["entries"] == len(prompts) - poisoned

    def test_poison_deterministic_per_seed(self):
        picks = []
        for _ in range(2):
            tier = _tier()
            for p in _prompts(40):
                tier.store_states(p, now_s=0.0)
            picks.append(tier.poison(0.3, seed=9))
        assert picks[0] == picks[1]


class TestPerNodeNetworkWindows:
    """Condition windows composed per cache node (satellite: cache/network.py
    coverage — overlapping outage windows, later-wins segments)."""

    def test_only_scheduled_node_goes_dark(self):
        tier = _tier(replication=0)
        tier.schedule_node_condition(1, 100.0, 200.0, NetworkCondition.OUTAGE)
        for node_id, node in tier._nodes.items():
            expected = None if node_id == 1 else pytest.approx(0.05, abs=0.05)
            latency = node.network.retrieval_latency(150.0)
            if node_id == 1:
                assert latency is None
            else:
                assert latency is not None

    def test_overlapping_windows_later_wins(self):
        model = NetworkModel(seed=0)
        model.schedule_condition(0.0, 300.0, NetworkCondition.CONGESTED)
        model.schedule_condition(100.0, 200.0, NetworkCondition.OUTAGE)
        assert model.condition_at(50.0) is NetworkCondition.CONGESTED
        assert model.condition_at(150.0) is NetworkCondition.OUTAGE
        assert model.condition_at(250.0) is NetworkCondition.CONGESTED
        assert model.condition_at(350.0) is NetworkCondition.HEALTHY

    def test_overlapping_outages_union(self):
        model = NetworkModel(seed=0)
        model.schedule_condition(0.0, 150.0, NetworkCondition.OUTAGE)
        model.schedule_condition(100.0, 250.0, NetworkCondition.OUTAGE)
        for t in (0.0, 99.0, 100.0, 149.0, 150.0, 249.0):
            assert model.retrieval_latency(t) is None
        assert model.retrieval_latency(250.0) is not None

    def test_node_windows_compose_independently(self):
        tier = _tier(replication=0, shards=2)
        tier.schedule_node_condition(0, 0.0, 100.0, NetworkCondition.OUTAGE)
        tier.schedule_node_condition(0, 50.0, 150.0, NetworkCondition.OUTAGE)
        tier.schedule_node_condition(1, 120.0, 160.0, NetworkCondition.CONGESTED)
        n0, n1 = tier._nodes[0].network, tier._nodes[1].network
        assert n0.retrieval_latency(75.0) is None
        assert n0.retrieval_latency(125.0) is None
        assert n0.condition_at(155.0) is NetworkCondition.HEALTHY
        assert n1.condition_at(75.0) is NetworkCondition.HEALTHY
        assert n1.condition_at(130.0) is NetworkCondition.CONGESTED

    def test_unknown_node_rejected(self):
        tier = _tier()
        with pytest.raises(ValueError, match="no cache node"):
            tier.schedule_node_condition(99, 0.0, 1.0, NetworkCondition.OUTAGE)

    def test_all_nodes_dark_is_network_failure(self):
        tier = _tier(replication=0)
        [p] = _prompts(1)
        tier.store_states(p, now_s=0.0)
        for node_id in list(tier._nodes):
            tier.schedule_node_condition(node_id, 10.0, 20.0, NetworkCondition.OUTAGE)
        out = tier.retrieve(p, requested_skip=10, now_s=15.0)
        assert out.network_failed


class TestShardAwareRouting:
    def test_worker_prefers_partitions_workers(self):
        tier = _tier()
        prompts = _prompts(20)
        for p in prompts:
            preferred = [w for w in range(6) if tier.worker_prefers(p, w)]
            # Round-robin over 3 nodes: exactly 2 of 6 workers are near
            # any prompt's likely shard.
            assert len(preferred) == 2
            assert preferred[1] - preferred[0] == 3

    def test_likely_shard_is_key_owner(self):
        tier = _tier()
        for p in _prompts(20):
            assert tier.likely_shard(p) == tier.owner_shard(p.tenant, p.prompt_id)


class TestFactoryGating:
    def test_flat_cache_when_tier_disabled(self):
        config = ArgusConfig(cache_shards=1, cache_replication=0)
        assert not config.cache_tier_enabled
        assert isinstance(build_cache(config), ApproximateCache)

    def test_tier_when_sharded(self):
        config = ArgusConfig(cache_shards=3, cache_replication=1)
        assert config.cache_tier_enabled
        cache = build_cache(config)
        assert isinstance(cache, CacheTier)
        assert cache.num_shards == 3
        assert cache.replication == 1

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ArgusConfig(cache_shards=0)
        with pytest.raises(ValueError):
            ArgusConfig(cache_shards=2, cache_replication=2)
        with pytest.raises(ValueError):
            ArgusConfig(cache_node_nprobe=0)
        with pytest.raises(ValueError):
            ArgusConfig(cache_node_clusters=4, cache_node_nprobe=8)

    def test_knobs_round_trip(self):
        config = ArgusConfig(
            cache_shards=4,
            cache_replication=2,
            cache_node_vnodes=32,
            cache_replication_lag_s=12.5,
            cache_hot_shard_threshold=99,
        )
        restored = ArgusConfig.from_dict(config.to_dict())
        assert restored == config


class TestBitIdentity:
    def test_single_shard_summary_digest_pinned(self):
        # cache_shards=1 with replication off must reproduce the flat-cache
        # run bit-for-bit: this digest was captured on the seed tree before
        # the tier existed.  If it moves, the tier leaked into the default
        # code path.
        from repro.scenarios.runtime import run_scenario

        run = run_scenario("steady-baseline", preset="small", seed=0)
        assert run.config.cache_shards == 1
        digest = hashlib.sha256(
            json.dumps(run.summary.as_dict(), sort_keys=True, default=str).encode()
        ).hexdigest()
        assert digest == (
            "bc58c23ad4ba57cf4e19edc8919963d3e8e8920d83706965809799a8c102b6d7"
        )
