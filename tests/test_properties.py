"""Property-based tests (hypothesis) for the core data structures and
invariants: ODA / PASM, the allocation solver, the simulation engine, the
vector database and the LRU store."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import NoiseStateStore, StoredState
from repro.cache.vectordb import VectorDatabase
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.solver import AllocationSolver
from repro.simulation.engine import SimulationEngine


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def distributions(num_levels: int = 6):
    """Non-degenerate probability distributions over approximation levels."""
    return (
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=num_levels,
            max_size=num_levels,
        )
        .filter(lambda values: sum(values) > 1e-3)
        .map(lambda values: np.array(values) / np.sum(values))
    )


# --------------------------------------------------------------------------- #
# ODA / PASM
# --------------------------------------------------------------------------- #
class TestOdaProperties:
    @given(affinity=distributions(), load=distributions())
    @settings(max_examples=80, deadline=None)
    def test_pasm_rows_are_distributions(self, affinity, load):
        pasm = OptimizedDistributionAligner().align(affinity, load)
        assert np.all(pasm.matrix >= -1e-12)
        np.testing.assert_allclose(pasm.matrix.sum(axis=1), 1.0, atol=1e-6)

    @given(affinity=distributions(), load=distributions())
    @settings(max_examples=80, deadline=None)
    def test_pasm_realises_target_load(self, affinity, load):
        pasm = OptimizedDistributionAligner().align(affinity, load)
        realised = pasm.resulting_distribution(affinity)
        np.testing.assert_allclose(realised, load, atol=1e-6)

    @given(affinity=distributions())
    @settings(max_examples=40, deadline=None)
    def test_identical_distributions_yield_identity_behaviour(self, affinity):
        pasm = OptimizedDistributionAligner().align(affinity, affinity.copy())
        realised = pasm.resulting_distribution(affinity)
        np.testing.assert_allclose(realised, affinity, atol=1e-8)
        # Levels with positive mass keep their prompts.
        for rank, mass in enumerate(affinity):
            if mass > 1e-9:
                assert pasm.probability(rank, rank) > 0.99

    @given(load=distributions())
    @settings(max_examples=40, deadline=None)
    def test_load_proportional_map_is_valid(self, load):
        pasm = ShiftMap.load_proportional(load + 1e-9)
        np.testing.assert_allclose(pasm.matrix.sum(axis=1), 1.0, atol=1e-6)


# --------------------------------------------------------------------------- #
# Allocation solver
# --------------------------------------------------------------------------- #
class TestSolverProperties:
    @given(
        target=st.floats(min_value=0.0, max_value=300.0),
        num_workers=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_invariants(self, target, num_workers):
        quality = np.array([21.0, 20.5, 20.0, 19.0, 18.0, 16.0])
        peak = np.array([14.3, 15.7, 17.5, 19.7, 22.6, 26.5])
        plan = AllocationSolver().solve(target, quality, peak, num_workers)
        # Never places more workers than exist.
        assert plan.total_workers <= num_workers
        # Load per level never exceeds that level's capacity.
        for rank, qpm in enumerate(plan.qpm_per_level):
            assert qpm <= plan.workers_per_level[rank] * peak[rank] + 1e-6
        # Serves min(target, capacity).
        max_capacity = peak.max() * num_workers
        assert plan.total_capacity_qpm <= min(target, max_capacity) + 1e-6
        if plan.feasible:
            assert plan.total_capacity_qpm >= target - 1e-6
        # The load distribution is a probability distribution.
        assert plan.load_distribution().sum() > 0.999

    @given(
        target=st.floats(min_value=1.0, max_value=200.0),
        num_workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_quality_never_below_worst_level(self, target, num_workers):
        quality = np.array([21.0, 20.0, 18.0, 16.0])
        peak = np.array([14.0, 18.0, 22.0, 27.0])
        plan = AllocationSolver().solve(target, quality, peak, num_workers)
        if plan.total_capacity_qpm > 0:
            assert quality.min() - 1e-9 <= plan.expected_quality <= quality.max() + 1e-9


# --------------------------------------------------------------------------- #
# Simulation engine
# --------------------------------------------------------------------------- #
class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_observed_in_sorted_order(self, delays):
        engine = SimulationEngine()
        seen = []
        for delay in delays:
            engine.schedule_at(delay, lambda e: seen.append(e.now))
        engine.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(
        intervals=st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=1, max_size=10
        ),
        horizon=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_clock_never_goes_backwards(self, intervals, horizon):
        engine = SimulationEngine()
        observed = []

        def record(e):
            observed.append(e.now)

        for interval in intervals:
            engine.schedule_every(interval, record)
        engine.run(until=horizon)
        assert observed == sorted(observed)
        assert engine.now >= horizon - 1e-9


# --------------------------------------------------------------------------- #
# Vector database
# --------------------------------------------------------------------------- #
class TestVectorDatabaseProperties:
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                min_size=8,
                max_size=8,
            ).filter(lambda v: sum(abs(x) for x in v) > 0.1),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_self_query_returns_similarity_one(self, data):
        db = VectorDatabase(dim=8)
        vectors = [np.array(v) for v in data]
        for vector in vectors:
            db.upsert(vector)
        for vector in vectors[:5]:
            hit = db.nearest(vector)
            assert hit is not None
            assert hit.similarity >= 0.999

    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                min_size=6,
                max_size=6,
            ).filter(lambda v: sum(abs(x) for x in v) > 0.1),
            min_size=2,
            max_size=25,
        ),
        top_k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_sorted_and_bounded(self, data, top_k):
        db = VectorDatabase(dim=6)
        for v in data:
            db.upsert(np.array(v))
        hits = db.search(np.array(data[0]), top_k=top_k)
        assert len(hits) == min(top_k, len(data))
        sims = [h.similarity for h in hits]
        assert sims == sorted(sims, reverse=True)
        assert all(-1.0 - 1e-6 <= s <= 1.0 + 1e-6 for s in sims)


# --------------------------------------------------------------------------- #
# LRU noise-state store
# --------------------------------------------------------------------------- #
class TestStoreProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=20),
        prompt_ids=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_store_never_exceeds_capacity(self, capacity, prompt_ids):
        store = NoiseStateStore(capacity_entries=capacity)
        for pid in prompt_ids:
            store.put(StoredState(prompt_id=pid, prompt_text=str(pid), available_steps=(5,)))
            assert len(store) <= capacity
        # The most recently inserted prompt is always present.
        assert prompt_ids[-1] in store

    @given(prompt_ids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_is_consistent(self, prompt_ids):
        store = NoiseStateStore(capacity_entries=1000)
        hits = 0
        lookups = 0
        for pid in prompt_ids:
            lookups += 1
            if store.get(pid) is not None:
                hits += 1
            else:
                store.put(StoredState(prompt_id=pid, prompt_text=str(pid), available_steps=(5,)))
        assert store.stats.hits == hits
        assert store.stats.misses == lookups - hits
        assert store.stats.hit_rate == (hits / lookups if lookups else 0.0)
