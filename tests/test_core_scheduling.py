"""Tests for the predictor, load estimator, prompt scheduler, strategy
switcher and allocator loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifier.trainer import ClassifierTrainer
from repro.cluster.cluster import GpuCluster
from repro.core.allocator import Allocator
from repro.core.config import ArgusConfig
from repro.core.oda import ShiftMap
from repro.core.predictor import LoadEstimator, WorkloadDistributionPredictor
from repro.core.scheduler import PromptScheduler, WorkerSelector
from repro.core.strategy import StrategySwitcher
from repro.models.zoo import ModelZoo, Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.pickscore import PickScoreModel
from repro.simulation.engine import SimulationEngine


class TestWorkloadDistributionPredictor:
    def test_uniform_before_observations(self):
        predictor = WorkloadDistributionPredictor(num_levels=4)
        np.testing.assert_allclose(predictor.affinity_distribution(), np.full(4, 0.25))

    def test_distribution_reflects_observations(self):
        predictor = WorkloadDistributionPredictor(num_levels=3, lookback=100)
        predictor.observe_many([0] * 20 + [2] * 80)
        dist = predictor.affinity_distribution()
        assert dist[0] == pytest.approx(0.2)
        assert dist[2] == pytest.approx(0.8)

    def test_lookback_window_drops_old_observations(self):
        predictor = WorkloadDistributionPredictor(num_levels=2, lookback=10)
        predictor.observe_many([0] * 10)
        predictor.observe_many([1] * 10)
        assert predictor.affinity_distribution()[1] == pytest.approx(1.0)

    def test_prediction_error_low_for_stable_mix(self):
        # §5.7: the predictor achieves L2 error <= 0.01 with a 1000-sample
        # window on a stationary prompt mix.
        rng = np.random.default_rng(0)
        truth = np.array([0.05, 0.1, 0.15, 0.3, 0.25, 0.15])
        predictor = WorkloadDistributionPredictor(num_levels=6, lookback=1000)
        predictor.observe_many(rng.choice(6, size=5000, p=truth).tolist())
        assert predictor.prediction_error(truth) < 0.05

    def test_invalid_rank_rejected(self):
        predictor = WorkloadDistributionPredictor(num_levels=3)
        with pytest.raises(ValueError):
            predictor.observe(3)

    def test_reset(self):
        predictor = WorkloadDistributionPredictor(num_levels=2)
        predictor.observe(1)
        predictor.reset()
        assert predictor.num_observations == 0


class TestLoadEstimator:
    def test_zero_before_observations(self):
        assert LoadEstimator().estimated_qpm() == 0.0

    def test_estimates_constant_rate(self):
        estimator = LoadEstimator(safety_factor=1.0)
        for minute in range(5):
            for i in range(120):
                estimator.observe_arrival(minute * 60.0 + i * 0.5)
        estimate = estimator.estimated_qpm()
        assert 100.0 <= estimate <= 140.0

    def test_reacts_to_spike(self):
        estimator = LoadEstimator(safety_factor=1.0)
        for i in range(60):
            estimator.observe_arrival(i)
        for i in range(240):
            estimator.observe_arrival(60.0 + i * 0.25)
        estimator.observe_arrival(121.0)
        assert estimator.estimated_qpm() >= 200.0

    def test_safety_factor_applied(self):
        base = LoadEstimator(safety_factor=1.0)
        padded = LoadEstimator(safety_factor=1.5)
        for estimator in (base, padded):
            for i in range(60):
                estimator.observe_arrival(float(i))
            estimator.observe_arrival(61.0)
        assert padded.estimated_qpm() == pytest.approx(base.estimated_qpm() * 1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LoadEstimator(window_minutes=0)
        with pytest.raises(ValueError):
            LoadEstimator(safety_factor=0.5)

    def test_reset(self):
        estimator = LoadEstimator()
        estimator.observe_arrival(0.0)
        estimator.reset()
        assert estimator.estimated_qpm() == 0.0


@pytest.fixture(scope="module")
def trained_predictor():
    pickscore = PickScoreModel(seed=0)
    prompts = PromptDataset.synthetic(count=600, seed=17).prompts
    return ClassifierTrainer(pickscore).train(prompts, Strategy.AC, epochs=15, seed=0)


class TestPromptScheduler:
    def _build(self, zoo, num_workers=4, slo_budget=None):
        engine = SimulationEngine(seed=0)
        cluster = GpuCluster(
            engine, zoo, num_workers=num_workers, initial_level=zoo.exact_level(Strategy.AC)
        )
        scheduler = PromptScheduler(
            cluster, num_levels=6, rng=np.random.default_rng(0), slo_budget_s=slo_budget
        )
        return engine, cluster, scheduler

    def test_routes_to_worker_at_target_level(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[0], 1: levels[0], 2: levels[3], 3: levels[3]})
        scheduler.set_shift_map(ShiftMap.identity(6))
        decision = scheduler.route(prompts_small[0])
        assert decision is not None
        # Without a classifier the prediction defaults to rank 0.
        assert decision.predicted_rank == 0
        assert decision.assigned_rank == 0
        assert decision.worker_id in (0, 1)

    def test_uses_classifier_predictions(self, zoo, prompts_small, trained_predictor):
        engine, cluster, scheduler = self._build(zoo)
        scheduler.set_predictor(trained_predictor)
        predictions = {scheduler.predict_rank(p) for p in prompts_small[:50]}
        assert len(predictions) > 1

    def test_falls_back_to_nearest_level(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=2)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[2], 1: levels[2]})
        # Force a target of rank 5; only rank-2 workers exist.
        scheduler.set_shift_map(ShiftMap(matrix=np.tile(np.eye(6)[5], (6, 1))))
        decision = scheduler.route(prompts_small[0])
        assert decision.assigned_rank == 2

    def test_no_healthy_workers_returns_none(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=1)
        cluster.fail_worker(0)
        assert scheduler.route(prompts_small[0]) is None

    def test_worker_selector_picks_least_loaded(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=2)
        from repro.cluster.requests import Request

        request = Request(
            request_id=0,
            prompt=prompts_small[0],
            arrival_time_s=0.0,
            strategy=Strategy.AC,
            predicted_rank=0,
            assigned_rank=0,
        )
        cluster.dispatch(request, worker_id=0)
        decision = scheduler.route(prompts_small[1])
        assert decision.worker_id == 1

    def test_slo_protection_escalates_to_faster_level(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=2, slo_budget=12.6)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[0], 1: levels[5]})
        # Saturate the slow worker far beyond the SLO budget.
        from repro.cluster.requests import Request

        for i in range(6):
            cluster.dispatch(
                Request(
                    request_id=i,
                    prompt=prompts_small[i],
                    arrival_time_s=0.0,
                    strategy=Strategy.AC,
                    predicted_rank=0,
                    assigned_rank=0,
                ),
                worker_id=0,
            )
        scheduler.set_shift_map(ShiftMap.identity(6))
        decision = scheduler.route(prompts_small[10])
        assert decision.worker_id == 1
        assert decision.assigned_rank == 5

    def test_shift_fraction_tracking(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo)
        scheduler.set_shift_map(ShiftMap.load_proportional(np.array([0, 0, 0, 0, 0, 1.0])))
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({i: levels[5] for i in range(4)})
        for prompt in prompts_small[:10]:
            scheduler.route(prompt)
        assert scheduler.shift_fraction == pytest.approx(1.0)

    def test_mismatched_pasm_rejected(self, zoo):
        engine, cluster, scheduler = self._build(zoo)
        with pytest.raises(ValueError):
            scheduler.set_shift_map(ShiftMap.identity(4))

    def test_worker_selector_requires_candidates(self):
        with pytest.raises(ValueError):
            WorkerSelector().select([])


class TestProtectSloEdgeCases:
    """Edge coverage for the §4.7 tail-latency protection."""

    def _build(self, zoo, num_workers=3, slo_budget=12.6):
        engine = SimulationEngine(seed=0)
        cluster = GpuCluster(
            engine, zoo, num_workers=num_workers, initial_level=zoo.exact_level(Strategy.AC)
        )
        scheduler = PromptScheduler(
            cluster, num_levels=6, rng=np.random.default_rng(0), slo_budget_s=slo_budget
        )
        scheduler.set_shift_map(ShiftMap.identity(6))
        return engine, cluster, scheduler

    def _saturate(self, cluster, worker_id, prompts, count=8):
        from repro.cluster.requests import Request

        for i in range(count):
            cluster.dispatch(
                Request(
                    request_id=1000 + worker_id * 100 + i,
                    prompt=prompts[i],
                    arrival_time_s=0.0,
                    strategy=Strategy.AC,
                    predicted_rank=0,
                    assigned_rank=0,
                ),
                worker_id=worker_id,
            )

    def test_empty_candidate_set_returns_original_worker(self, zoo, prompts_small):
        # All workers fail *after* a routing decision picked one: the
        # protection must not blow up on an empty healthy set.
        engine, cluster, scheduler = self._build(zoo)
        target = cluster.workers[0]
        for worker in cluster.workers:
            worker.fail()
        assert scheduler._protect_slo(target) is target

    def test_all_workers_saturated_falls_back_to_least_loaded(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=3)
        # Saturate every worker beyond the budget, with worker 2 least bad.
        self._saturate(cluster, 0, prompts_small, count=9)
        self._saturate(cluster, 1, prompts_small, count=8)
        self._saturate(cluster, 2, prompts_small, count=7)
        chosen = scheduler._protect_slo(cluster.workers[0])
        assert chosen.worker_id == 2

    def test_no_protection_when_budget_unset(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, slo_budget=None)
        self._saturate(cluster, 0, prompts_small, count=9)
        assert scheduler._protect_slo(cluster.workers[0]) is cluster.workers[0]

    def test_per_request_budget_overrides_global(self, zoo, prompts_small):
        engine, cluster, scheduler = self._build(zoo, num_workers=2, slo_budget=1e9)
        levels = zoo.levels(Strategy.AC)
        cluster.apply_assignment({0: levels[0], 1: levels[5]})
        self._saturate(cluster, 0, prompts_small, count=8)
        # Under the (huge) global budget the loaded worker is fine...
        assert scheduler._protect_slo(cluster.workers[0]).worker_id == 0
        # ...but a request carrying a tight tenant budget escalates.
        assert scheduler._protect_slo(cluster.workers[0], budget_s=10.0).worker_id == 1

    def test_requeue_race_reroutes_instead_of_raising(self, zoo, prompts_small):
        # PR 2 inheritance: a routing decision can race a failure/drain on
        # its target; the dispatch must hand the request back for re-routing.
        engine = SimulationEngine(seed=0)
        rerouted = []
        cluster = GpuCluster(
            engine,
            zoo,
            num_workers=2,
            initial_level=zoo.exact_level(Strategy.AC),
            on_requeue=rerouted.append,
        )
        scheduler = PromptScheduler(cluster, num_levels=6, rng=np.random.default_rng(0))
        scheduler.set_shift_map(ShiftMap.identity(6))
        decision = scheduler.route(prompts_small[0])
        assert decision is not None
        from repro.cluster.requests import Request

        request = Request(
            request_id=0,
            prompt=prompts_small[0],
            arrival_time_s=0.0,
            strategy=Strategy.AC,
            predicted_rank=decision.predicted_rank,
            assigned_rank=decision.assigned_rank,
        )
        cluster.fail_worker(decision.worker_id)
        cluster.dispatch(request, decision.worker_id)
        assert rerouted == [request]
        # The surviving worker can take the re-route.
        redo = scheduler.route(prompts_small[0])
        assert redo is not None
        assert redo.worker_id != decision.worker_id


class TestStrategySwitcher:
    def test_default_is_ac(self):
        assert StrategySwitcher().active is Strategy.AC

    def test_switches_after_consecutive_slow_retrievals(self):
        switcher = StrategySwitcher(retrieval_latency_threshold_s=0.5, violations_to_switch=5)
        for i in range(4):
            assert switcher.observe_retrieval(2.0, now_s=float(i)) is Strategy.AC
        assert switcher.observe_retrieval(2.0, now_s=5.0) is Strategy.SM
        assert switcher.num_switches == 1
        assert switcher.events[0].reason == "cache retrieval degraded"

    def test_healthy_retrievals_reset_counter(self):
        switcher = StrategySwitcher(violations_to_switch=3)
        switcher.observe_retrieval(2.0, 0.0)
        switcher.observe_retrieval(2.0, 1.0)
        switcher.observe_retrieval(0.05, 2.0)
        switcher.observe_retrieval(2.0, 3.0)
        switcher.observe_retrieval(2.0, 4.0)
        assert switcher.active is Strategy.AC

    def test_outage_counts_as_violation(self):
        switcher = StrategySwitcher(violations_to_switch=2)
        switcher.observe_retrieval(None, 0.0)
        switcher.observe_retrieval(None, 1.0)
        assert switcher.active is Strategy.SM

    def test_switches_back_after_healthy_probes(self):
        switcher = StrategySwitcher(violations_to_switch=1, probes_to_recover=2)
        switcher.observe_retrieval(5.0, 0.0)
        assert switcher.active is Strategy.SM
        switcher.observe_probe(0.05, 10.0)
        assert switcher.active is Strategy.SM
        switcher.observe_probe(0.05, 20.0)
        assert switcher.active is Strategy.AC
        assert switcher.num_switches == 2

    def test_failed_probe_resets_recovery(self):
        switcher = StrategySwitcher(violations_to_switch=1, probes_to_recover=2)
        switcher.observe_retrieval(5.0, 0.0)
        switcher.observe_probe(0.05, 10.0)
        switcher.observe_probe(None, 20.0)
        switcher.observe_probe(0.05, 30.0)
        assert switcher.active is Strategy.SM

    def test_switching_can_be_disabled(self):
        switcher = StrategySwitcher(violations_to_switch=1, allow_switching=False)
        switcher.observe_retrieval(None, 0.0)
        assert switcher.active is Strategy.AC

    def test_force_strategy(self):
        switcher = StrategySwitcher()
        switcher.force_strategy(Strategy.SM, 0.0)
        assert switcher.active is Strategy.SM
        switcher.force_strategy(Strategy.SM, 1.0)
        assert switcher.num_switches == 1

    def test_recent_latency_tracking(self):
        switcher = StrategySwitcher()
        assert switcher.recent_mean_retrieval_latency() is None
        switcher.observe_retrieval(0.1, 0.0)
        switcher.observe_retrieval(0.3, 1.0)
        assert switcher.recent_mean_retrieval_latency() == pytest.approx(0.2)


class TestAllocator:
    def _build(self, num_workers=4, prompt_aware=True):
        config = ArgusConfig(num_workers=num_workers)
        zoo = ModelZoo()
        engine = SimulationEngine(seed=0)
        cluster = GpuCluster(
            engine, zoo, num_workers=num_workers, initial_level=zoo.exact_level(Strategy.AC)
        )
        scheduler = PromptScheduler(cluster, num_levels=6, rng=np.random.default_rng(0))
        quality = {
            Strategy.AC: np.array([21.0, 20.8, 20.5, 19.8, 18.5, 16.5]),
            Strategy.SM: np.array([21.0, 20.6, 20.2, 19.5, 18.0, 16.0]),
        }
        allocator = Allocator(
            config=config,
            zoo=zoo,
            cluster=cluster,
            scheduler=scheduler,
            quality_vectors=quality,
            prompt_aware=prompt_aware,
        )
        return engine, cluster, scheduler, allocator

    def test_low_load_keeps_exact_levels(self):
        engine, cluster, scheduler, allocator = self._build()
        for i in range(30):
            allocator.observe_arrival(float(i))
        engine.clock.advance_to(61.0)
        allocator.observe_arrival(61.0)
        record = allocator.recalibrate(61.0, Strategy.AC)
        assert record.plan.workers_per_level[0] == 4
        assert set(cluster.level_assignment().values()) == {0}

    def test_high_load_moves_workers_to_faster_levels(self):
        engine, cluster, scheduler, allocator = self._build()
        for i in range(90):
            allocator.observe_arrival(i * 0.6)
        engine.clock.advance_to(61.0)
        allocator.observe_arrival(61.0)
        record = allocator.recalibrate(61.0, Strategy.AC)
        assert record.target_qpm > 80.0
        assert max(cluster.level_assignment().values()) > 0

    def test_prompt_aware_uses_oda(self):
        from repro.core.oda import OptimizedDistributionAligner

        engine, cluster, scheduler, allocator = self._build(prompt_aware=True)
        for rank in [4] * 60 + [1] * 20:
            allocator.observe_affinity(Strategy.AC, rank)
        for i in range(70):
            allocator.observe_arrival(i * 0.85)
        engine.clock.advance_to(61.0)
        record = allocator.recalibrate(61.0, Strategy.AC)
        # The installed PASM must be the ODA alignment of the observed
        # affinity distribution with the solver's load distribution.
        expected = OptimizedDistributionAligner().align(
            allocator.predictors[Strategy.AC].affinity_distribution(),
            record.plan.load_distribution(),
        )
        np.testing.assert_allclose(record.shift_map.matrix, expected.matrix, atol=1e-9)
        assert scheduler.shift_map is record.shift_map

    def test_prompt_agnostic_uses_load_proportional_map(self):
        engine, cluster, scheduler, allocator = self._build(prompt_aware=False)
        for i in range(90):
            allocator.observe_arrival(i * 0.6)
        engine.clock.advance_to(61.0)
        record = allocator.recalibrate(61.0, Strategy.AC)
        matrix = record.shift_map.matrix
        np.testing.assert_allclose(matrix[0], matrix[5])

    def test_switch_margin_inflates_target(self):
        engine, cluster, scheduler, allocator = self._build()
        for i in range(60):
            allocator.observe_arrival(float(i))
        engine.clock.advance_to(61.0)
        normal = allocator.recalibrate(61.0, Strategy.AC).target_qpm
        allocator.switching_in_progress = True
        inflated = allocator.recalibrate(61.0, Strategy.AC).target_qpm
        assert inflated == pytest.approx(normal * allocator.config.switch_margin)

    def test_no_healthy_workers(self):
        engine, cluster, scheduler, allocator = self._build(num_workers=1)
        cluster.fail_worker(0)
        record = allocator.recalibrate(0.0, Strategy.AC)
        assert not record.plan.feasible

    def test_history_recorded(self):
        engine, cluster, scheduler, allocator = self._build()
        allocator.recalibrate(0.0, Strategy.AC)
        allocator.recalibrate(0.0, Strategy.SM)
        assert len(allocator.history) == 2
        assert allocator.last_record.strategy is Strategy.SM
