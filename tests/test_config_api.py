"""Tests for ArgusConfig dict round-tripping and the repro.api facade."""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.config import ArgusConfig


# --------------------------------------------------------------------- #
# to_dict / from_dict
# --------------------------------------------------------------------- #


def test_config_round_trip_default():
    config = ArgusConfig()
    assert ArgusConfig.from_dict(config.to_dict()) == config


def test_config_round_trip_is_json_safe():
    config = ArgusConfig(num_workers=6, seed=9, autoscale_enabled=True)
    payload = json.loads(json.dumps(config.to_dict()))
    assert ArgusConfig.from_dict(payload) == config


def test_config_round_trip_with_tenants_and_slo():
    config = ArgusConfig(
        num_workers=4,
        tenants=[
            {"name": "gold", "weight": 2.0, "traffic_share": 0.6, "cache_quota": 100},
            {"name": "bronze", "weight": 1.0, "traffic_share": 0.4},
        ],
    )
    rebuilt = ArgusConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config
    assert rebuilt.tenants[0].name == "gold"
    assert rebuilt.slo == config.slo


def test_config_from_dict_rejects_unknown_key_with_suggestion():
    with pytest.raises(ValueError, match="num_workers"):
        ArgusConfig.from_dict({"num_worker": 4})
    with pytest.raises(ValueError, match="unknown config key"):
        ArgusConfig.from_dict({"definitely_not_a_knob": 1})


# --------------------------------------------------------------------- #
# Facade
# --------------------------------------------------------------------- #


def test_facade_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_facade_load_scenario_and_run():
    scenario = repro.load_scenario("steady-baseline")
    assert scenario.name == "steady-baseline"
    run = repro.run(scenario, preset="small")
    assert run.summary.total_completions > 0
    # Facade output matches the deep-import path bit for bit.
    from repro.scenarios.runtime import run_scenario

    deep = run_scenario("steady-baseline", preset="small")
    assert run.report().to_json() == deep.report().to_json()


def test_facade_replay_smoke():
    result = repro.replay(
        "steady-baseline", preset="small", time_scale=300.0, max_minutes=1.0
    )
    assert result.requests_ok == result.requests_sent > 0
    assert result.report["system"] == "gateway"
