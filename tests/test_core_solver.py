"""Tests for the Eq. 1 allocation solver (specialised and ILP forms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import AllocationSolver
from repro.models.zoo import ModelZoo, Strategy

#: Simple synthetic profile: quality drops, throughput rises with rank.
QUALITY = np.array([21.0, 20.5, 20.0, 19.0, 18.0, 16.0])
PEAK = np.array([14.3, 15.7, 17.5, 19.7, 22.6, 26.5])


class TestAllocationSolver:
    def test_low_load_uses_best_quality_only(self):
        plan = AllocationSolver().solve(50.0, QUALITY, PEAK, num_workers=8)
        assert plan.feasible
        assert plan.workers_per_level[0] == 8
        assert plan.qpm_per_level[0] == pytest.approx(50.0)
        assert plan.expected_quality == pytest.approx(QUALITY[0])

    def test_total_workers_never_exceeds_cluster(self):
        for target in (10.0, 80.0, 150.0, 300.0):
            plan = AllocationSolver().solve(target, QUALITY, PEAK, num_workers=8)
            assert plan.total_workers <= 8

    def test_meets_target_when_feasible(self):
        for target in (30.0, 90.0, 120.0, 160.0, 200.0):
            plan = AllocationSolver().solve(target, QUALITY, PEAK, num_workers=8)
            assert plan.feasible
            assert plan.total_capacity_qpm == pytest.approx(target, rel=1e-6)

    def test_infeasible_load_reported(self):
        max_capacity = PEAK[-1] * 8
        plan = AllocationSolver().solve(max_capacity * 1.5, QUALITY, PEAK, num_workers=8)
        assert not plan.feasible
        assert plan.workers_per_level[-1] == 8
        assert plan.total_capacity_qpm == pytest.approx(max_capacity)

    def test_quality_monotone_in_load(self):
        solver = AllocationSolver()
        qualities = [
            solver.solve(target, QUALITY, PEAK, num_workers=8).expected_quality
            for target in (40.0, 100.0, 150.0, 200.0)
        ]
        assert qualities == sorted(qualities, reverse=True)

    def test_load_distribution_is_probability(self):
        plan = AllocationSolver().solve(130.0, QUALITY, PEAK, num_workers=8)
        dist = plan.load_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_worker_assignment_covers_all_workers(self):
        plan = AllocationSolver().solve(130.0, QUALITY, PEAK, num_workers=8)
        assignment = plan.worker_assignment(list(range(8)))
        assert set(assignment) == set(range(8))
        counts = [0] * 6
        for rank in assignment.values():
            counts[rank] += 1
        assert tuple(counts) == plan.workers_per_level

    def test_assignment_with_fewer_workers_than_plan(self):
        plan = AllocationSolver().solve(130.0, QUALITY, PEAK, num_workers=8)
        assignment = plan.worker_assignment([3, 5])
        assert set(assignment) == {3, 5}

    def test_zero_load(self):
        plan = AllocationSolver().solve(0.0, QUALITY, PEAK, num_workers=4)
        assert plan.feasible
        assert plan.total_capacity_qpm == pytest.approx(0.0)

    def test_single_level(self):
        plan = AllocationSolver().solve(
            20.0, np.array([21.0]), np.array([14.3]), num_workers=2
        )
        assert plan.workers_per_level == (2,)
        assert plan.feasible

    def test_input_validation(self):
        solver = AllocationSolver()
        with pytest.raises(ValueError):
            solver.solve(-5.0, QUALITY, PEAK, 8)
        with pytest.raises(ValueError):
            solver.solve(10.0, QUALITY, PEAK, 0)
        with pytest.raises(ValueError):
            solver.solve(10.0, QUALITY[:3], PEAK, 8)
        with pytest.raises(ValueError):
            solver.solve(10.0, QUALITY, np.zeros(6), 8)

    def test_greedy_path_for_large_clusters(self):
        solver = AllocationSolver(enumerate_limit=10)
        plan = solver.solve(400.0, QUALITY, PEAK, num_workers=32)
        assert plan.feasible
        assert plan.total_workers <= 32
        assert plan.total_capacity_qpm == pytest.approx(400.0, rel=1e-6)

    def test_real_zoo_profiles(self):
        zoo = ModelZoo()
        peak = np.array([l.peak_throughput_qpm for l in zoo.levels(Strategy.AC)])
        plan = AllocationSolver().solve(150.0, QUALITY, peak, num_workers=8)
        assert plan.feasible


class TestIlpFormulation:
    def test_ilp_matches_specialised_solver_objective(self):
        solver = AllocationSolver()
        for target in (40.0, 100.0, 140.0):
            fast = solver.solve(target, QUALITY[:4], PEAK[:4], num_workers=4)
            ilp = solver.solve_ilp(target, QUALITY[:4], PEAK[:4], num_workers=4)
            assert ilp.feasible == fast.feasible
            assert ilp.expected_quality == pytest.approx(fast.expected_quality, rel=1e-3)

    def test_ilp_respects_worker_count(self):
        plan = AllocationSolver().solve_ilp(45.0, QUALITY[:3], PEAK[:3], num_workers=3)
        assert plan.total_workers <= 3
        assert plan.total_capacity_qpm == pytest.approx(45.0, rel=1e-6)

    def test_ilp_infeasible_load(self):
        plan = AllocationSolver().solve_ilp(500.0, QUALITY[:3], PEAK[:3], num_workers=3)
        assert not plan.feasible
