"""Tests for the approximate-caching substrate: VDB, store, network, pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.approximate import ApproximateCache
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.store import NoiseStateStore, StoredState
from repro.cache.vectordb import VectorDatabase
from repro.prompts.dataset import PromptDataset
from repro.prompts.embedding import PromptEmbedder


class TestVectorDatabase:
    def _random_vectors(self, n, dim=16, seed=0):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, dim))
        return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)

    def test_upsert_and_len(self):
        db = VectorDatabase(dim=16)
        for vector in self._random_vectors(10):
            db.upsert(vector)
        assert len(db) == 10

    def test_nearest_returns_exact_match(self):
        db = VectorDatabase(dim=16)
        vectors = self._random_vectors(50)
        keys = [db.upsert(v, payload={"i": i}) for i, v in enumerate(vectors)]
        hit = db.nearest(vectors[17])
        assert hit is not None
        assert hit.key == keys[17]
        assert hit.similarity == pytest.approx(1.0)
        assert hit.payload == {"i": 17}

    def test_search_top_k_ordering(self):
        db = VectorDatabase(dim=16)
        for vector in self._random_vectors(100):
            db.upsert(vector)
        query = self._random_vectors(1, seed=9)[0]
        hits = db.search(query, top_k=5)
        assert len(hits) == 5
        sims = [h.similarity for h in hits]
        assert sims == sorted(sims, reverse=True)

    def test_empty_database(self):
        db = VectorDatabase(dim=8)
        assert db.nearest(np.ones(8)) is None
        assert db.search(np.ones(8), top_k=3) == []

    def test_delete(self):
        db = VectorDatabase(dim=8)
        vectors = self._random_vectors(5, dim=8)
        keys = [db.upsert(v) for v in vectors]
        assert db.delete(keys[2])
        assert not db.delete(keys[2])
        assert len(db) == 4
        hit = db.nearest(vectors[2])
        assert hit.key != keys[2]

    def test_growth_beyond_initial_capacity(self):
        db = VectorDatabase(dim=8)
        vectors = self._random_vectors(1500, dim=8)
        for vector in vectors:
            db.upsert(vector)
        assert len(db) == 1500
        assert db.nearest(vectors[1400]).similarity == pytest.approx(1.0)

    def test_dimension_mismatch(self):
        db = VectorDatabase(dim=8)
        with pytest.raises(ValueError):
            db.upsert(np.ones(9))

    def test_invalid_index_type(self):
        with pytest.raises(ValueError):
            VectorDatabase(dim=8, index_type="annoy")

    def test_ivf_recall_close_to_flat(self):
        vectors = self._random_vectors(600, dim=24, seed=3)
        flat = VectorDatabase(dim=24, index_type="flat")
        ivf = VectorDatabase(dim=24, index_type="ivf", num_clusters=8, nprobe=4)
        for vector in vectors:
            flat.upsert(vector)
            ivf.upsert(vector)
        rng = np.random.default_rng(5)
        queries = vectors[rng.choice(len(vectors), size=40, replace=False)]
        agree = sum(
            1 for q in queries if flat.nearest(q).key == ivf.nearest(q).key
        )
        assert agree >= 30  # IVF trades a little recall for speed.


class TestNoiseStateStore:
    def test_put_and_get(self):
        store = NoiseStateStore(capacity_entries=10)
        store.put(StoredState(prompt_id=1, prompt_text="x", available_steps=(5, 10, 15)))
        assert 1 in store
        entry = store.get(1)
        assert entry is not None
        assert entry.available_steps == (5, 10, 15)

    def test_miss_recorded(self):
        store = NoiseStateStore()
        assert store.get(42) is None
        assert store.stats.misses == 1
        assert store.stats.hit_rate == 0.0

    def test_hit_rate(self):
        store = NoiseStateStore()
        store.put(StoredState(prompt_id=1, prompt_text="x", available_steps=(5,)))
        store.get(1)
        store.get(2)
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        store = NoiseStateStore(capacity_entries=2)
        for pid in (1, 2, 3):
            store.put(StoredState(prompt_id=pid, prompt_text="x", available_steps=(5,)))
        assert 1 not in store
        assert 2 in store and 3 in store
        assert store.stats.evictions == 1

    def test_get_refreshes_lru_order(self):
        store = NoiseStateStore(capacity_entries=2)
        store.put(StoredState(prompt_id=1, prompt_text="x", available_steps=(5,)))
        store.put(StoredState(prompt_id=2, prompt_text="y", available_steps=(5,)))
        store.get(1)
        store.put(StoredState(prompt_id=3, prompt_text="z", available_steps=(5,)))
        assert 1 in store and 2 not in store

    def test_best_step_for(self):
        state = StoredState(prompt_id=1, prompt_text="x", available_steps=(5, 10, 15))
        assert state.best_step_for(20) == 15
        assert state.best_step_for(10) == 10
        assert state.best_step_for(3) is None

    def test_total_size(self):
        state = StoredState(prompt_id=1, prompt_text="x", available_steps=(5, 10))
        assert state.total_size_kib == pytest.approx(288.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NoiseStateStore(capacity_entries=0)


class TestNetworkModel:
    def test_healthy_latency_small(self):
        network = NetworkModel(seed=0)
        for t in (0.0, 10.0, 100.0):
            latency = network.retrieval_latency(t)
            assert latency is not None and latency < 0.2

    def test_congestion_window(self):
        network = NetworkModel(seed=0)
        network.schedule_condition(100.0, 200.0, NetworkCondition.CONGESTED)
        assert network.condition_at(50.0) is NetworkCondition.HEALTHY
        assert network.condition_at(150.0) is NetworkCondition.CONGESTED
        assert network.retrieval_latency(150.0) > 0.5

    def test_outage_returns_none(self):
        network = NetworkModel(seed=0)
        network.schedule_condition(10.0, 20.0, NetworkCondition.OUTAGE)
        assert network.retrieval_latency(15.0) is None
        assert network.probe(15.0) is None

    def test_probe_mean_healthy(self):
        network = NetworkModel(seed=0)
        probe = network.probe(5.0)
        assert probe is not None and probe < 0.2

    def test_invalid_window(self):
        network = NetworkModel()
        with pytest.raises(ValueError):
            network.schedule_condition(10.0, 5.0, NetworkCondition.CONGESTED)

    def test_later_windows_take_precedence(self):
        network = NetworkModel(seed=0)
        network.schedule_condition(0.0, 100.0, NetworkCondition.CONGESTED)
        network.schedule_condition(40.0, 60.0, NetworkCondition.OUTAGE)
        assert network.condition_at(50.0) is NetworkCondition.OUTAGE
        assert network.condition_at(80.0) is NetworkCondition.CONGESTED


class TestApproximateCache:
    @pytest.fixture()
    def warm_cache(self, prompts_small):
        cache = ApproximateCache(embedder=PromptEmbedder(dim=32), network=NetworkModel(seed=0))
        cache.warm(prompts_small[:100])
        return cache

    def test_k0_never_retrieves(self, warm_cache, prompts_small):
        outcome = warm_cache.retrieve(prompts_small[0], requested_skip=0, now_s=0.0)
        assert outcome.effective_skip == 0
        assert outcome.retrieval_latency_s == 0.0
        assert not outcome.hit

    def test_hit_for_identical_prompt(self, warm_cache, prompts_small):
        outcome = warm_cache.retrieve(prompts_small[0], requested_skip=20, now_s=0.0)
        assert outcome.hit
        assert outcome.effective_skip == 20
        assert outcome.similarity == pytest.approx(1.0)
        assert outcome.retrieval_latency_s > 0.0

    def test_similar_topic_prompt_hits(self, warm_cache, prompts_medium, prompts_small):
        cached_topics = {p.topic for p in prompts_small[:100]}
        candidates = [p for p in prompts_medium if p.topic in cached_topics]
        hits = sum(
            1
            for p in candidates[:50]
            if warm_cache.retrieve(p, requested_skip=15, now_s=0.0).hit
        )
        assert hits > 25

    def test_miss_when_cache_empty(self, prompts_small):
        cache = ApproximateCache(embedder=PromptEmbedder(dim=32))
        outcome = cache.retrieve(prompts_small[0], requested_skip=20, now_s=0.0)
        assert not outcome.hit
        assert outcome.effective_skip == 0

    def test_network_outage_marks_failure(self, prompts_small):
        network = NetworkModel(seed=0)
        network.set_default_condition(NetworkCondition.OUTAGE)
        cache = ApproximateCache(embedder=PromptEmbedder(dim=32), network=network)
        cache.warm(prompts_small[:10])
        outcome = cache.retrieve(prompts_small[0], requested_skip=20, now_s=0.0)
        assert outcome.network_failed
        assert outcome.effective_skip == 0

    def test_store_states_is_idempotent(self, prompts_small):
        cache = ApproximateCache(embedder=PromptEmbedder(dim=32))
        cache.store_states(prompts_small[0])
        cache.store_states(prompts_small[0])
        assert len(cache.vectordb) == 1

    def test_effective_skip_capped_by_checkpoints(self, prompts_small):
        cache = ApproximateCache(
            embedder=PromptEmbedder(dim=32), checkpoint_steps=(5, 10)
        )
        cache.warm(prompts_small[:5])
        outcome = cache.retrieve(prompts_small[0], requested_skip=25, now_s=0.0)
        assert outcome.hit
        assert outcome.effective_skip == 10

    def test_probe_network_delegates(self, warm_cache):
        assert warm_cache.probe_network(0.0) is not None

    def test_hit_rate_tracking(self, warm_cache, prompts_small):
        warm_cache.retrieve(prompts_small[0], requested_skip=20, now_s=0.0)
        assert 0.0 <= warm_cache.hit_rate <= 1.0
