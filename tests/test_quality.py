"""Tests for the PickScore model, optimal-model selection, degradation
profiles, per-level quality profiles and the user-study simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.zoo import ModelZoo, Strategy
from repro.quality.degradation import profile_degradation
from repro.quality.optimal import OPTIMALITY_THRESHOLD, OptimalModelSelector
from repro.quality.pickscore import PickScoreModel
from repro.quality.profiles import QualityProfiler, pareto_frontier
from repro.quality.user_study import UserStudySimulator


class TestPickScoreModel:
    def test_scores_are_deterministic(self, pickscore, prompts_small):
        prompt = prompts_small[0]
        assert pickscore.score(prompt, Strategy.AC, 3) == pickscore.score(prompt, Strategy.AC, 3)

    def test_best_score_in_plausible_range(self, pickscore, prompts_small):
        for prompt in prompts_small[:50]:
            assert 18.0 <= pickscore.best_score(prompt) <= 25.0

    def test_scores_never_exceed_best(self, pickscore, prompts_small):
        for prompt in prompts_small[:50]:
            best = pickscore.best_score(prompt)
            for rank in range(6):
                assert pickscore.score(prompt, Strategy.AC, rank) <= best + 1e-9

    def test_rank_zero_is_always_optimal_quality(self, pickscore, prompts_small):
        for prompt in prompts_small[:50]:
            score = pickscore.score(prompt, Strategy.AC, 0)
            assert score >= OPTIMALITY_THRESHOLD * pickscore.best_score(prompt)

    def test_scores_within_tolerance_stay_high(self, pickscore, prompts_small):
        for prompt in prompts_small[:50]:
            tolerance = pickscore.tolerance_rank(prompt, Strategy.AC)
            best = pickscore.best_score(prompt)
            for rank in range(tolerance + 1):
                assert pickscore.score(prompt, Strategy.AC, rank) >= 0.95 * best

    def test_scores_degrade_beyond_tolerance(self, pickscore, prompts_small):
        degraded = 0
        for prompt in prompts_small:
            tolerance = pickscore.tolerance_rank(prompt, Strategy.AC)
            if tolerance < 5:
                best = pickscore.best_score(prompt)
                assert pickscore.score(prompt, Strategy.AC, 5) < 0.92 * best
                degraded += 1
        assert degraded > 0

    def test_degradation_monotone_in_gap(self, pickscore, prompts_small):
        for prompt in prompts_small[:50]:
            tolerance = pickscore.tolerance_rank(prompt, Strategy.AC)
            scores = [pickscore.score(prompt, Strategy.AC, r) for r in range(tolerance, 6)]
            # Allow tiny jitter but require an overall downward trend.
            for earlier, later in zip(scores, scores[2:]):
                assert later <= earlier + 0.3

    def test_tolerance_tracks_complexity(self, pickscore, prompts_medium):
        simple = [p for p in prompts_medium if p.complexity < 0.2]
        complex_ = [p for p in prompts_medium if p.complexity > 0.7]
        mean_simple = np.mean([pickscore.tolerance_rank(p, Strategy.AC) for p in simple])
        mean_complex = np.mean([pickscore.tolerance_rank(p, Strategy.AC) for p in complex_])
        assert mean_simple > mean_complex + 1.5

    def test_ac_more_permissive_than_sm(self, pickscore, prompts_medium):
        ac = np.mean([pickscore.tolerance_rank(p, Strategy.AC) for p in prompts_medium])
        sm = np.mean([pickscore.tolerance_rank(p, Strategy.SM) for p in prompts_medium])
        assert ac >= sm

    def test_invalid_rank_rejected(self, pickscore, prompts_small):
        with pytest.raises(ValueError):
            pickscore.score(prompts_small[0], Strategy.AC, 6)

    def test_sample_relative_quality(self, pickscore, prompts_small):
        sample = pickscore.sample(prompts_small[0], Strategy.AC, 0)
        assert 0.9 <= sample.relative_quality <= 1.0

    def test_mean_score_decreases_with_rank(self, pickscore, prompts_medium):
        means = [
            pickscore.mean_score(list(prompts_medium), Strategy.SM, rank) for rank in range(6)
        ]
        assert means[0] > means[5]
        assert means == sorted(means, reverse=True)


class TestOptimalModelSelector:
    def test_optimal_rank_is_fastest_acceptable(self, pickscore, prompts_small):
        selector = OptimalModelSelector(pickscore)
        for prompt in prompts_small[:50]:
            choice = selector.optimal_choice(prompt, Strategy.AC)
            cutoff = OPTIMALITY_THRESHOLD * choice.best_score
            assert choice.scores[choice.optimal_rank] >= cutoff
            for faster in range(choice.optimal_rank + 1, 6):
                assert choice.scores[faster] < cutoff

    def test_optimal_matches_tolerance_model(self, pickscore, prompts_small):
        # The generative model guarantees levels within tolerance clear the
        # 0.9 threshold, so the optimal rank is at least the tolerance rank.
        selector = OptimalModelSelector(pickscore)
        for prompt in prompts_small[:50]:
            tolerance = pickscore.tolerance_rank(prompt, Strategy.AC)
            assert selector.optimal_rank(prompt, Strategy.AC) >= tolerance

    def test_affinity_distribution_sums_to_one(self, pickscore, prompts_medium):
        selector = OptimalModelSelector(pickscore)
        dist = selector.affinity_distribution(list(prompts_medium), Strategy.AC)
        assert dist.sum() == pytest.approx(1.0)
        assert len(dist) == 6

    def test_substantial_fraction_tolerates_approximation(self, pickscore, prompts_medium):
        # Observation 1 / Fig. 8: a substantial fraction of prompts is
        # optimally served by an approximated level.
        selector = OptimalModelSelector(pickscore)
        dist = selector.affinity_distribution(list(prompts_medium), Strategy.AC)
        assert dist[0] < 0.5
        assert dist[3:].sum() > 0.3

    def test_excluding_ranks_moves_mass(self, pickscore, prompts_medium):
        selector = OptimalModelSelector(pickscore)
        prompts = list(prompts_medium)[:400]
        full = selector.affinity_distribution(prompts, Strategy.SM)
        without_m1 = selector.affinity_distribution_excluding(prompts, Strategy.SM, {0})
        assert without_m1[0] == 0.0
        assert without_m1.sum() == pytest.approx(1.0)
        assert without_m1[1] >= full[1]

    def test_cannot_exclude_everything(self, pickscore, prompts_small):
        selector = OptimalModelSelector(pickscore)
        with pytest.raises(ValueError):
            selector.affinity_distribution_excluding(
                list(prompts_small), Strategy.SM, set(range(6))
            )

    def test_invalid_threshold(self, pickscore):
        with pytest.raises(ValueError):
            OptimalModelSelector(pickscore, threshold=0.0)


class TestDegradationProfile:
    def test_shape_and_nonnegative(self, pickscore, prompts_medium):
        profile = profile_degradation(list(prompts_medium)[:500], pickscore, Strategy.AC)
        assert profile.matrix.shape == (6, 6)
        assert np.all(profile.matrix >= 0)

    def test_no_loss_when_shifting_to_slower(self, pickscore, prompts_medium):
        profile = profile_degradation(list(prompts_medium)[:500], pickscore, Strategy.AC)
        for affinity in range(6):
            for target in range(affinity + 1):
                assert profile.loss(target, affinity) == pytest.approx(0.0)

    def test_loss_grows_with_gap(self, pickscore, prompts_medium):
        profile = profile_degradation(list(prompts_medium)[:800], pickscore, Strategy.AC)
        for affinity in range(4):
            losses = [profile.loss(t, affinity) for t in range(affinity, 6)]
            assert losses == sorted(losses)

    def test_superlinearity_check(self, pickscore, prompts_medium):
        profile = profile_degradation(list(prompts_medium)[:800], pickscore, Strategy.AC)
        assert profile.is_superlinear()


class TestQualityProfiler:
    def test_quality_vector_monotone(self, zoo, pickscore, prompts_medium):
        profiler = QualityProfiler(zoo, pickscore)
        quality = profiler.quality_vector(Strategy.AC, list(prompts_medium)[:400])
        assert len(quality) == 6
        assert quality[0] > quality[5]

    def test_throughput_vector_monotone(self, zoo, pickscore):
        profiler = QualityProfiler(zoo, pickscore)
        throughput = profiler.throughput_vector(Strategy.AC)
        assert list(throughput) == sorted(throughput)

    def test_pickscore_per_latency_favors_faster_levels(self, zoo, pickscore, prompts_medium):
        profiler = QualityProfiler(zoo, pickscore)
        profiles = profiler.profile_strategy(Strategy.AC, list(prompts_medium)[:300])
        assert profiles[-1].pickscore_per_latency > profiles[0].pickscore_per_latency

    def test_pareto_scatter_has_ac_sm_and_quantized(self, zoo, pickscore, prompts_medium):
        profiler = QualityProfiler(zoo, pickscore)
        points = profiler.pareto_scatter(list(prompts_medium)[:300])
        families = {p.family for p in points}
        assert families == {"AC", "SM", "quantized"}
        assert len(points) == 18

    def test_ac_levels_dominate_pareto_frontier(self, zoo, pickscore, prompts_medium):
        # Fig. 13: AC variants frequently lie on the Pareto frontier.
        profiler = QualityProfiler(zoo, pickscore)
        points = profiler.pareto_scatter(list(prompts_medium)[:400])
        frontier = pareto_frontier(points)
        ac_on_frontier = sum(1 for p in frontier if p.family == "AC")
        assert ac_on_frontier >= len(frontier) / 2

    def test_frontier_is_subset_and_sorted(self, zoo, pickscore, prompts_medium):
        profiler = QualityProfiler(zoo, pickscore)
        points = profiler.pareto_scatter(list(prompts_medium)[:200])
        frontier = pareto_frontier(points)
        assert set(p.name for p in frontier) <= set(p.name for p in points)
        throughputs = [p.throughput_ipm for p in frontier]
        assert throughputs == sorted(throughputs)


class TestUserStudySimulator:
    def test_better_quality_gets_more_votes(self):
        study = UserStudySimulator(num_participants=60, seed=0)
        good = study.run("good", [0.97] * 50)
        bad = study.run("bad", [0.75] * 50)
        assert good.prompt_relevance_rate > bad.prompt_relevance_rate
        assert good.overall_quality_rate > bad.overall_quality_rate

    def test_compare_sorts_best_first(self):
        study = UserStudySimulator(num_participants=40, seed=1)
        results = study.compare({"a": [0.95] * 30, "b": [0.7] * 30, "c": [0.85] * 30})
        rates = [r.prompt_relevance_rate for r in results]
        assert rates == sorted(rates, reverse=True)
        assert results[0].system == "a"

    def test_rates_are_probabilities(self):
        study = UserStudySimulator(num_participants=30, seed=2)
        result = study.run("x", [0.9, 0.8, 0.95])
        assert 0.0 <= result.prompt_relevance_rate <= 1.0
        assert 0.0 <= result.overall_quality_rate <= 1.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            UserStudySimulator().run("x", [])

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            UserStudySimulator(num_participants=0)
