"""Equivalence and invariant tests for the PR-3 hot-path optimisations.

Every optimisation in this PR must be observationally equivalent to the
seed implementation (the fig16 acceptance gate is a bit-for-bit identical
``RunSummary``).  These tests pin the per-component equivalences against
the seed-faithful references preserved in :mod:`benchmarks.perf.legacy`.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.perf import legacy
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.vectordb import VectorDatabase
from repro.cluster.requests import CompletedRequest, Request
from repro.core.oda import ShiftMap
from repro.core.solver import AllocationSolver
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import summarize
from repro.models.zoo import Strategy
from repro.prompts.embedding import PromptEmbedder
from repro.prompts.features import PromptFeaturizer
from repro.prompts.generator import Prompt, PromptGenerator
from repro.quality.pickscore import PickScoreModel
from repro.simulation.engine import SimulationEngine


def _clustered_vectors(n: int, dim: int = 32, clusters: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    vectors = centers[rng.integers(0, clusters, size=n)] + 0.3 * rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


class TestIndexEquivalence:
    """flat / IVF / HNSW agreement on clustered prompt-like workloads."""

    @pytest.fixture(scope="class")
    def workload(self):
        vectors = _clustered_vectors(4000, seed=3)
        rng = np.random.default_rng(4)
        queries = vectors[rng.choice(len(vectors), size=100, replace=False)]
        return vectors, queries

    def _filled(self, index_type: str, vectors) -> VectorDatabase:
        db = VectorDatabase(dim=vectors.shape[1], index_type=index_type)
        for vector in vectors:
            db.upsert(vector)
        return db

    def test_flat_matches_legacy_brute_force(self, workload):
        vectors, queries = workload
        db = self._filled("flat", vectors)
        for query in queries:
            optimized = db.search(query, top_k=1)[0]
            key, _sim = legacy.legacy_flat_search(db, query, top_k=1)[0]
            assert optimized.key == key

    def test_ivf_recall_at_1(self, workload):
        vectors, queries = workload
        flat = self._filled("flat", vectors)
        ivf = self._filled("ivf", vectors)
        agree = sum(
            1 for q in queries if flat.nearest(q).key == ivf.nearest(q).key
        )
        assert agree >= 75

    def test_hnsw_recall_at_1(self, workload):
        vectors, queries = workload
        flat = self._filled("flat", vectors)
        hnsw = self._filled("hnsw", vectors)
        agree = sum(
            1 for q in queries if flat.nearest(q).key == hnsw.nearest(q).key
        )
        assert agree >= 90

    @pytest.mark.parametrize("index_type", ["flat", "ivf", "hnsw"])
    def test_delete_upsert_churn_keeps_search_correct(self, index_type):
        vectors = _clustered_vectors(600, seed=7)
        db = VectorDatabase(dim=vectors.shape[1], index_type=index_type)
        keys = [db.upsert(v, payload={"i": i}) for i, v in enumerate(vectors)]
        # Delete more than half so the HNSW tombstone compaction triggers.
        deleted = set(keys[::3]) | set(keys[1::3])
        for key in deleted:
            assert db.delete(key)
        assert len(db) == 600 - len(deleted)
        for key in list(deleted)[:5]:
            assert not db.delete(key)
        live = [i for i, key in enumerate(keys) if key not in deleted]
        rng = np.random.default_rng(8)
        for i in rng.choice(live, size=30, replace=False):
            hit = db.nearest(vectors[i])
            assert hit is not None
            assert hit.key == keys[i]
            assert hit.payload == {"i": i}
            assert hit.similarity == pytest.approx(1.0)
        # Fresh upserts after churn are findable.
        fresh = _clustered_vectors(50, seed=9)
        fresh_keys = [db.upsert(v, payload={"fresh": j}) for j, v in enumerate(fresh)]
        for j in (0, 17, 49):
            assert db.nearest(fresh[j]).key == fresh_keys[j]

    def test_ivf_rebuilds_under_steady_size_churn(self):
        """Delete/insert turnover at constant size must still refresh
        centroids — the rebuild trigger counts inserts, not net growth."""
        from collections import deque

        vectors = _clustered_vectors(1000, seed=10)
        db = VectorDatabase(dim=vectors.shape[1], index_type="ivf")
        live = deque(db.upsert(v) for v in vectors[:300])
        db.search(vectors[0])  # initial build resets the insert counter
        for i, vector in enumerate(vectors[300:]):
            db.delete(live.popleft())
            live.append(db.upsert(vector))
            if i % 50 == 0:
                db.search(vector)
        db.search(vectors[-1])
        # 700 churn inserts at constant size must have triggered at least
        # one rebuild (counter resets), even though the count never grew.
        assert db._inserts_since_rebuild < db.IVF_REBUILD_INTERVAL
        assert len(db) == 300

    def test_top_k_deterministic_tie_break(self):
        db = VectorDatabase(dim=8)
        vector = np.ones(8) / np.sqrt(8.0)
        first = db.upsert(vector)
        db.upsert(vector)
        db.upsert(vector)
        hits = db.search(vector, top_k=3)
        # Exactly equal similarities resolve by insertion order.
        assert [h.key for h in hits] == [first, first + 1, first + 2]
        assert db.nearest(vector).key == first

    def test_top_k_ties_straddling_partition_boundary(self):
        """Equal sims crossing the k-th position must still resolve
        index-ascending (argpartition alone picks an arbitrary subset)."""
        from repro.cache.vectordb import _top_k_positions

        rng = np.random.default_rng(24)
        for _ in range(500):
            n = int(rng.integers(8, 60))
            sims = rng.choice([0.9, 0.7, 0.5], size=n)  # heavy exact ties
            top_k = int(rng.integers(2, n))
            got = _top_k_positions(sims, top_k).tolist()
            reference = sorted(range(n), key=lambda i: (-sims[i], i))[:top_k]
            assert got == reference


def _make_completion(i: int, prompt, arrival: float, latency: float) -> CompletedRequest:
    request = Request(
        request_id=i,
        prompt=prompt,
        arrival_time_s=arrival,
        strategy=Strategy.AC,
        predicted_rank=0,
        assigned_rank=0,
    )
    return CompletedRequest(
        request=request,
        worker_id=0,
        start_time_s=arrival,
        completion_time_s=arrival + latency,
        effective_rank=0,
        service_time_s=latency,
    )


class TestColumnarCollectorEquivalence:
    @pytest.fixture()
    def filled(self):
        rng = np.random.default_rng(11)
        prompts = PromptGenerator(seed=1).generate(16)
        new = MetricsCollector()
        old = legacy.LegacyMetricsCollector()
        arrival = 0.0
        for i in range(3000):
            arrival += float(rng.exponential(0.2))
            latency = float(rng.uniform(0.5, 20.0))
            score = float(rng.uniform(15.0, 22.0))
            best = score + float(rng.uniform(0.0, 2.0))
            completion = _make_completion(i, prompts[i % 16], arrival, latency)
            for collector in (new, old):
                collector.record_arrival(arrival)
                collector.record_completion(completion, score, best)
        return new, old

    def test_run_summary_bit_identical(self, filled):
        new, old = filled
        summary_new = summarize("argus", "unit", new, duration_minutes=10.0)
        summary_old = summarize("argus", "unit", old, duration_minutes=10.0)
        assert summary_new == summary_old  # dataclass equality: every field

    def test_scalar_summaries_bit_identical(self, filled):
        new, old = filled
        assert new.slo_violation_ratio() == old.slo_violation_ratio()
        assert new.effective_accuracy() == old.effective_accuracy()
        assert new.mean_pickscore() == old.mean_pickscore()
        assert new.mean_relative_quality() == old.mean_relative_quality()
        for percentile in (50, 90, 99, 100):
            assert new.latency_percentile(percentile) == old.latency_percentile(percentile)
        assert new.relative_qualities() == old.relative_qualities()

    def test_minute_series_matches(self, filled):
        new, old = filled
        series_new = new.minute_series()
        series_old = old.minute_series()
        assert [m.minute for m in series_new] == [m.minute for m in series_old]
        for stats_new, stats_old in zip(series_new, series_old):
            assert stats_new.completions == stats_old.completions
            assert stats_new.slo_violations == stats_old.slo_violations
            assert stats_new.arrivals == stats_old.arrivals
            assert stats_new.mean_pickscore == stats_old.mean_pickscore
            assert stats_new.mean_relative_quality == stats_old.mean_relative_quality
            assert list(stats_new.latencies) == list(stats_old.latencies)

    def test_lazy_sample_view(self, filled):
        new, _ = filled
        samples = new.samples
        assert len(samples) == 3000
        assert samples[0].completed.request.request_id == 0
        assert samples[-1].completed.request.request_id == 2999
        assert samples[5].latency_s == new.latency_percentile(0) or samples[5].latency_s > 0
        ranks = {s.completed.effective_rank for s in samples}
        assert ranks == {0}

    def test_lean_mode_drops_objects_but_keeps_summaries(self):
        collector = MetricsCollector(retain_completed=False)
        prompt = PromptGenerator(seed=2).generate_one()
        collector.record_completion(_make_completion(0, prompt, 0.0, 5.0), 20.0, 21.0)
        assert collector.total_completions == 1
        assert collector.mean_pickscore() == pytest.approx(20.0)
        with pytest.raises(RuntimeError):
            _ = collector.samples[0]


class TestSolverCacheAndVectorization:
    QUALITY = np.array([21.0, 20.5, 20.0, 19.0, 18.0, 16.0])
    PEAK = np.array([14.3, 15.7, 17.5, 19.7, 22.6, 26.5])

    def test_cache_hit_returns_same_plan(self):
        solver = AllocationSolver()
        first = solver.solve(120.0, self.QUALITY, self.PEAK, 8)
        second = solver.solve(120.0, self.QUALITY, self.PEAK, 8)
        assert first is second
        assert solver.cache_hits == 1

    def test_cache_invalidation_on_fleet_change(self):
        solver = AllocationSolver()
        solver.solve(120.0, self.QUALITY, self.PEAK, 8)
        solver.solve(120.0, self.QUALITY, self.PEAK, 7)
        solver.solve(120.0, self.QUALITY, self.PEAK, 8, speed_factors=[1.0] * 7 + [2.0])
        assert solver.cache_misses == 3

    def test_cache_invalidation_on_profile_change(self):
        solver = AllocationSolver()
        solver.solve(120.0, self.QUALITY, self.PEAK, 8)
        solver.solve(120.0, self.QUALITY * 1.001, self.PEAK, 8)
        solver.solve(120.0, self.QUALITY, self.PEAK * 1.001, 8)
        assert solver.cache_misses == 3
        assert solver.cache_hits == 0

    def test_cache_eviction_bounded(self):
        solver = AllocationSolver(cache_size=4)
        for target in range(10):
            solver.solve(float(target + 1), self.QUALITY, self.PEAK, 4)
        assert len(solver._cache) <= 4

    def test_quantum_bucketing_rounds_target_up(self):
        solver = AllocationSolver(cache_quantum_qpm=10.0)
        plan_a = solver.solve(101.0, self.QUALITY, self.PEAK, 8)
        plan_b = solver.solve(109.0, self.QUALITY, self.PEAK, 8)
        assert plan_a is plan_b
        assert plan_a.target_qpm == pytest.approx(110.0)

    def test_vectorized_matches_scalar_enumeration(self):
        solver = AllocationSolver()
        rng = np.random.default_rng(13)
        for _ in range(300):
            num_levels = int(rng.integers(2, 7))
            num_workers = int(rng.integers(1, 9))
            quality = np.sort(rng.uniform(10, 25, size=num_levels))[::-1].copy()
            peak = np.sort(rng.uniform(5, 30, size=num_levels)).copy()
            if rng.random() < 0.25:
                quality[int(rng.integers(0, num_levels))] = quality[0]
            target = float(rng.uniform(0, peak.max() * num_workers * 1.3))
            vectorized = solver._best_counts_enumerated(target, quality, peak, num_workers)
            scalar = solver._enumerate_best_counts_scalar(
                target,
                quality,
                num_workers,
                lambda counts: [counts[l] * peak[l] for l in range(num_levels)],
            )
            assert vectorized == scalar

    def test_incremental_greedy_matches_recomputed_reference(self):
        solver = AllocationSolver(enumerate_limit=1)
        rng = np.random.default_rng(14)
        for _ in range(100):
            num_levels = int(rng.integers(2, 7))
            num_workers = int(rng.integers(8, 64))
            quality = np.sort(rng.uniform(10, 25, size=num_levels))[::-1].copy()
            peak = np.sort(rng.uniform(5, 30, size=num_levels)).copy()
            target = float(rng.uniform(0, peak.max() * num_workers * 1.2))
            counts = solver._best_counts_greedy(target, quality, peak, num_workers)
            reference = self._seed_greedy(target, quality, peak, num_workers)
            assert counts == reference

    @staticmethod
    def _seed_greedy(target_qpm, quality, peak_qpm, num_workers):
        num_levels = len(quality)
        counts = [0] * num_levels
        counts[0] = num_workers
        levels_by_speed = np.argsort(peak_qpm)

        def capacity(c):
            return float(sum(c[l] * peak_qpm[l] for l in range(num_levels)))

        while capacity(counts) < target_qpm:
            upgraded = False
            for level in levels_by_speed:
                if counts[level] > 0:
                    faster = [
                        l for l in range(num_levels) if peak_qpm[l] > peak_qpm[level]
                    ]
                    if not faster:
                        continue
                    next_level = min(faster, key=lambda l: peak_qpm[l])
                    counts[level] -= 1
                    counts[next_level] += 1
                    upgraded = True
                    break
            if not upgraded:
                break
        return counts


class TestEngineTupleHeap:
    def test_pending_counter_tracks_cancellations(self):
        engine = SimulationEngine()
        events = [engine.schedule_at(float(i), lambda e: None) for i in range(10)]
        assert engine.pending_events == 10
        events[3].cancel()
        events[3].cancel()  # double-cancel must not double-decrement
        assert engine.pending_events == 9
        engine.run()
        assert engine.pending_events == 0
        assert engine.events_processed == 9

    def test_cancel_after_execution_is_noop(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda e: None)
        engine.schedule_at(2.0, lambda e: None)
        engine.step()
        assert event.executed
        event.cancel()  # stale handle: must not corrupt the live counter
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0

    def test_order_matches_legacy_engine(self):
        rng = np.random.default_rng(15)
        times = rng.uniform(0, 100, size=200)

        def drive(engine_cls):
            engine = engine_cls(seed=0)
            order = []
            for i, t in enumerate(times):
                engine.schedule_at(float(t), lambda e, i=i: order.append(i))
            engine.run()
            return order

        assert drive(SimulationEngine) == drive(legacy.LegacySimulationEngine)


class TestNetworkBisectEquivalence:
    def test_matches_linear_scan_with_overlaps(self):
        rng = np.random.default_rng(16)
        network = NetworkModel(seed=0)
        conditions = [
            NetworkCondition.CONGESTED,
            NetworkCondition.OUTAGE,
            NetworkCondition.HEALTHY,
        ]
        edges = []
        for i in range(40):
            start = float(rng.uniform(0, 1000))
            end = start + float(rng.uniform(1, 200))
            network.schedule_condition(start, end, conditions[i % 3])
            edges.extend([start, end])
        probes = list(rng.uniform(-10, 1300, size=500)) + edges
        for time_s in probes:
            assert network.condition_at(time_s) is legacy.legacy_condition_at(
                network, time_s
            )

    def test_rebuild_after_new_window(self):
        network = NetworkModel(seed=0)
        network.schedule_condition(0.0, 100.0, NetworkCondition.CONGESTED)
        assert network.condition_at(50.0) is NetworkCondition.CONGESTED
        network.schedule_condition(40.0, 60.0, NetworkCondition.OUTAGE)
        assert network.condition_at(50.0) is NetworkCondition.OUTAGE
        network.set_default_condition(NetworkCondition.OUTAGE)
        assert network.condition_at(2000.0) is NetworkCondition.OUTAGE


class TestEmbedderEquivalence:
    def test_batch_matches_single_bitwise(self):
        prompts = PromptGenerator(seed=17).generate(60)
        single = PromptEmbedder(dim=32)
        batched = PromptEmbedder(dim=32)
        reference = np.stack([single.embed(p) for p in prompts])
        matrix = batched.embed_batch(prompts)
        assert np.array_equal(matrix, reference)

    def test_key_distinguishes_same_id_same_topic(self):
        base = PromptGenerator(seed=18).generate_one()
        other = Prompt(
            prompt_id=base.prompt_id,
            text=base.text + " extra tokens here",
            num_entities=base.num_entities,
            num_attributes=base.num_attributes,
            num_style_tags=base.num_style_tags,
            has_action=base.has_action,
            has_scene=base.has_scene,
            complexity=base.complexity,
            topic=base.topic,
        )
        embedder = PromptEmbedder(dim=32)
        assert not np.array_equal(embedder.embed(base), embedder.embed(other))

    def test_matches_legacy_embed(self):
        prompts = PromptGenerator(seed=19).generate(20)
        optimized = PromptEmbedder(dim=32)
        reference = PromptEmbedder(dim=32)
        for prompt in prompts:
            assert np.array_equal(
                optimized.embed(prompt), legacy.legacy_embed(reference, prompt)
            )


class TestScoringEquivalence:
    def test_pickscore_matches_legacy_keys_and_values(self):
        prompts = PromptGenerator(seed=20).generate(30)
        optimized = PickScoreModel(seed=3)
        reference = PickScoreModel(seed=3)
        for prompt in prompts:
            for strategy in (Strategy.AC, Strategy.SM):
                for rank in range(optimized.num_levels):
                    assert optimized.score(prompt, strategy, rank) == (
                        legacy.legacy_pickscore_score(reference, prompt, strategy, rank)
                    )
            assert optimized.best_score(prompt) == legacy.legacy_pickscore_best(
                reference, prompt
            )

    def test_featurizer_cache_matches_legacy(self):
        prompts = PromptGenerator(seed=21).generate(20)
        featurizer = PromptFeaturizer()
        for prompt in prompts:
            cached = featurizer.featurize(prompt)
            again = featurizer.featurize(prompt)
            assert again is cached  # memoised
            assert np.array_equal(cached, legacy.legacy_featurize(featurizer, prompt))
        # Raw-text input bypasses the cache but still matches.
        vector = featurizer.featurize(prompts[0].text)
        assert np.array_equal(vector, featurizer.featurize(prompts[0]))

    def test_shift_map_sampling_matches_choice(self):
        rng_matrix = np.random.default_rng(22)
        matrix = rng_matrix.random((5, 5)) + 0.05
        matrix /= matrix.sum(axis=1, keepdims=True)
        shift_map = ShiftMap(matrix=matrix)
        rng_a = np.random.default_rng(23)
        rng_b = np.random.default_rng(23)
        draws_new = [shift_map.sample_target(i % 5, rng_a) for i in range(200)]
        draws_old = [
            legacy.legacy_sample_target(shift_map, i % 5, rng_b) for i in range(200)
        ]
        assert draws_new == draws_old
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
