"""Compare Argus with the paper's baselines on a bursty production-like load.

Run with::

    python examples/compare_serving_systems.py

Reproduces a miniature version of Fig. 16: every serving system replays the
same bursty trace on the same 8-GPU simulated cluster, and the script prints
the throughput / SLO / quality table plus a simulated user study (§5.4).
"""

from __future__ import annotations

from repro import ArgusConfig, TraceLibrary, compare_systems
from repro.quality.user_study import UserStudySimulator

SYSTEMS = ["argus", "pac", "proteus", "sommelier", "nirvana", "clipper-ha", "clipper-ht"]


def main() -> None:
    trace = TraceLibrary(seed=0).bursty(duration_minutes=60)
    print(
        f"Workload: bursty, {trace.duration_minutes} minutes, "
        f"mean {trace.mean_qpm:.0f} QPM, peak {trace.peak_qpm:.0f} QPM"
    )
    print(f"Comparing: {', '.join(SYSTEMS)} (this takes a couple of minutes)\n")

    results = compare_systems(
        SYSTEMS,
        trace,
        config_factory=lambda: ArgusConfig(
            num_workers=8, classifier_training_prompts=800, profiling_prompts=400
        ),
        seed=0,
        dataset_size=1500,
    )

    header = f"{'system':<12} {'served QPM':>10} {'SLO viol.':>10} {'rel. quality':>13} {'PickScore':>10} {'loads':>6}"
    print(header)
    print("-" * len(header))
    for name in SYSTEMS:
        summary = results[name].summary
        print(
            f"{summary.system:<12} {summary.mean_served_qpm:>10.1f} "
            f"{summary.slo_violation_ratio:>9.2%} {summary.mean_relative_quality:>12.2%} "
            f"{summary.mean_pickscore:>10.2f} {summary.model_loads:>6d}"
        )

    print("\nSimulated user study (§5.4): suitability vote rates")
    study = UserStudySimulator(num_participants=186, seed=0)
    votes = study.compare(
        {results[name].summary.system: _relative_qualities(results[name]) for name in SYSTEMS}
    )
    for outcome in votes:
        print(
            f"  {outcome.system:<12} relevance={outcome.prompt_relevance_rate:.2%} "
            f"quality={outcome.overall_quality_rate:.2%}"
        )


def _relative_qualities(result):
    """Per-request relative qualities, rebuilt from the minute series."""
    samples = []
    for stats in result.minute_series:
        samples.extend(stats.relative_qualities)
    return samples or [0.0]


if __name__ == "__main__":
    main()
