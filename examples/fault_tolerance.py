"""Fault-tolerance walkthrough: GPU failures and a cache-network outage.

Run with::

    python examples/fault_tolerance.py

Scenario 1 (Fig. 20a): half the GPUs fail for 15 minutes under load.  The
allocator notices the smaller cluster at its next one-minute calibration and
re-allocates, trading quality (higher K) for throughput.

Scenario 2 (Fig. 20b): the vector-database / cache-store network becomes
unreachable.  Argus's retrieval monitoring detects the degradation and
switches the whole cluster from approximate caching to smaller models, then
switches back once background probes see a healthy network again.
"""

from __future__ import annotations

from repro import ArgusConfig, ArgusSystem, ExperimentRunner, TraceLibrary
from repro.cache.network import NetworkCondition


def print_phase_table(result, phases) -> None:
    print(f"  {'phase':<28} {'served QPM':>10} {'SLO viol.':>10} {'quality':>9}")
    for label, start, end in phases:
        window = result.minute_series[start:end]
        if not window:
            continue
        served = sum(m.served_qpm for m in window) / len(window)
        violations = sum(m.violation_ratio for m in window) / len(window)
        quality = sum(m.mean_relative_quality for m in window) / len(window)
        print(f"  {label:<28} {served:>10.1f} {violations:>9.2%} {quality:>8.2%}")


def gpu_failure_scenario() -> None:
    print("\n=== Scenario 1: 4 of 8 GPUs fail between minutes 15 and 30 ===")
    config = ArgusConfig(num_workers=8, classifier_training_prompts=600, profiling_prompts=300)
    system = ArgusSystem(config=config)
    for worker_id in range(4):
        system.cluster.schedule_failure(worker_id, fail_at_s=15 * 60.0, recover_at_s=30 * 60.0)

    # 85 QPM fits the full cluster comfortably at low approximation and is
    # just inside the 4-worker capacity at the highest approximation, so the
    # failure forces a clear quality-for-throughput trade without collapsing.
    trace = TraceLibrary(seed=1).constant(duration_minutes=45, qpm=85.0)
    result = ExperimentRunner(seed=1, dataset_size=1200).run(system, trace)
    print_phase_table(
        result,
        [("before failure", 3, 15), ("during failure", 16, 30), ("after recovery", 33, 45)],
    )


def cache_outage_scenario() -> None:
    print("\n=== Scenario 2: cache network outage between minutes 15 and 30 ===")
    config = ArgusConfig(
        num_workers=8,
        classifier_training_prompts=600,
        profiling_prompts=300,
        retrieval_violations_to_switch=10,
    )
    system = ArgusSystem(config=config)
    system.network.schedule_condition(15 * 60.0, 30 * 60.0, NetworkCondition.OUTAGE)

    trace = TraceLibrary(seed=2).constant(duration_minutes=45, qpm=110.0)
    result = ExperimentRunner(seed=2, dataset_size=1200).run(system, trace)
    print_phase_table(
        result,
        [("before outage (AC)", 3, 15), ("during outage", 16, 30), ("after recovery", 33, 45)],
    )
    print(f"  strategy switches: {system.num_strategy_switches()}")
    for event in system.switcher.events:
        print(
            f"    t={event.time_s / 60.0:5.1f} min  {event.from_strategy.value} -> "
            f"{event.to_strategy.value} ({event.reason})"
        )
    print(f"  final strategy: {system.active_strategy.value}")
    print(f"  SM model loads during the switch: {system.cluster.total_model_loads()}")


def main() -> None:
    gpu_failure_scenario()
    cache_outage_scenario()


if __name__ == "__main__":
    main()
