"""Quickstart: serve a diurnal workload with Argus and print the results.

Run with::

    python examples/quickstart.py

Builds an 8-worker Argus deployment (approximate caching by default, with
the per-prompt classifier and ODA-based shift map), replays a 60-minute
Twitter-shaped trace against it and prints the headline serving metrics.
"""

from __future__ import annotations

from repro import ArgusConfig, ArgusSystem, ExperimentRunner, TraceLibrary


def main() -> None:
    config = ArgusConfig(
        num_workers=8,
        classifier_training_prompts=800,
        profiling_prompts=400,
    )
    print("Training classifiers and profiling approximation levels ...")
    system = ArgusSystem(config=config)

    trace = TraceLibrary(seed=0).twitter_like(duration_minutes=60)
    print(
        f"Replaying trace '{trace.name}': {trace.duration_minutes} minutes, "
        f"mean {trace.mean_qpm:.0f} QPM, peak {trace.peak_qpm:.0f} QPM"
    )

    runner = ExperimentRunner(seed=0, dataset_size=2000)
    result = runner.run(system, trace)

    summary = result.summary
    print("\n--- Argus run summary -------------------------------------")
    print(f"requests offered      : {summary.total_arrivals}")
    print(f"requests served       : {summary.total_completions}")
    print(f"served throughput     : {summary.mean_served_qpm:.1f} QPM")
    print(f"SLO violation ratio   : {summary.slo_violation_ratio:.2%}")
    print(f"effective accuracy    : {summary.effective_accuracy:.2f} (PickScore)")
    print(f"relative quality      : {summary.mean_relative_quality:.2%}")
    print(f"p99 latency           : {summary.p99_latency_s:.1f} s")
    print(f"cluster utilisation   : {summary.cluster_utilization:.2%}")
    print(f"model loads (SM swaps): {summary.model_loads}")
    print(f"cache hit rate        : {result.extras['cache_hit_rate']:.2%}")
    print(f"prompts shifted off their optimal level: {system.shift_fraction():.2%}")

    print("\nPer-minute view (minute, offered QPM, served QPM, quality):")
    for stats in result.minute_series[:60:6]:
        print(
            f"  t={stats.minute:3d}  offered={stats.offered_qpm:6.1f}  "
            f"served={stats.served_qpm:6.1f}  quality={stats.mean_relative_quality:.2%}"
        )


if __name__ == "__main__":
    main()
