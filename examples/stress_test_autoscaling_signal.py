"""Stress test: drive Argus up a load ramp until accuracy-scaling saturates.

Run with::

    python examples/stress_test_autoscaling_signal.py

Reproduces the Fig. 17 experiment shape: offered load ramps linearly past
the cluster's fastest configuration.  The script prints, for each load band,
the served throughput, quality and SLO violations, and shows where the
"horizontal scaling" signal from §6 (saturation of the most approximate
level) kicks in.
"""

from __future__ import annotations

from repro import ArgusConfig, ArgusSystem, ExperimentRunner, Strategy, TraceLibrary


def main() -> None:
    config = ArgusConfig(num_workers=8, classifier_training_prompts=800, profiling_prompts=400)
    system = ArgusSystem(config=config)
    zoo = system.zoo
    max_qpm = zoo.max_cluster_throughput_qpm(Strategy.AC, config.num_workers)
    print(f"Cluster capacity at the most approximate AC level: {max_qpm:.0f} QPM")

    trace = TraceLibrary(seed=0).increasing(duration_minutes=90, start_qpm=40.0, end_qpm=240.0)
    print(f"Ramping load from 40 to 240 QPM over {trace.duration_minutes} minutes ...")
    result = ExperimentRunner(seed=0, dataset_size=1500).run(system, trace)

    print(f"\n{'load band':<18} {'offered':>9} {'served':>9} {'SLO viol.':>10} {'quality':>9}")
    for start in range(0, trace.duration_minutes, 15):
        window = result.minute_series[start : start + 15]
        offered = sum(m.offered_qpm for m in window) / len(window)
        served = sum(m.served_qpm for m in window) / len(window)
        violations = sum(m.violation_ratio for m in window) / len(window)
        quality = sum(m.mean_relative_quality for m in window) / len(window)
        saturated = " <- saturated (scale out!)" if offered > max_qpm else ""
        print(
            f"minutes {start:3d}-{start + 14:<3d}   {offered:>9.0f} {served:>9.0f} "
            f"{violations:>9.2%} {quality:>8.2%}{saturated}"
        )

    last_plan = system.allocator.last_record
    if last_plan is not None:
        print(
            "\nFinal allocation (workers per AC level, least→most approximate): "
            f"{last_plan.plan.workers_per_level}"
        )
    print(
        "When every worker sits at the most approximate level and offered load "
        "still exceeds capacity, quality can no longer be traded for throughput — "
        "that is the signal to scale the cluster horizontally (§6)."
    )


if __name__ == "__main__":
    main()
