"""Stress test: drive Argus up a load ramp and let the autoscaler answer.

Run with::

    python examples/stress_test_autoscaling_signal.py

Reproduces the Fig. 17 experiment shape — offered load ramps linearly past
the fixed cluster's fastest configuration, then subsides — twice: once with
the paper's fixed 8-GPU fleet, once with the closed-loop autoscaler enabled.
Where §6 of the paper stops at observing the horizontal-scaling signal
(every worker saturated at the most approximate level while load keeps
growing), the autoscaled run acts on it: workers are provisioned (with a
realistic provisioning delay and model warm-up), enter rotation, absorb the
peak, and drain back out with hysteresis once the ramp subsides.
"""

from __future__ import annotations

import numpy as np

from repro import ArgusConfig, ArgusSystem, ExperimentRunner, ModelZoo, Strategy, TraceLibrary
from repro.workloads.traces import WorkloadTrace

RAMP_MINUTES = 90
DESCENT_MINUTES = 30


def build_trace() -> WorkloadTrace:
    ramp = TraceLibrary(seed=0).increasing(
        duration_minutes=RAMP_MINUTES, start_qpm=40.0, end_qpm=240.0
    )
    descent = tuple(float(q) for q in np.linspace(230.0, 40.0, DESCENT_MINUTES))
    return WorkloadTrace("increasing-updown", ramp.qpm + descent)


def run(autoscale: bool, trace: WorkloadTrace):
    config = ArgusConfig(
        num_workers=8,
        classifier_training_prompts=800,
        profiling_prompts=400,
        autoscale_enabled=autoscale,
        max_workers=16,
        provision_delay_s=90.0,
    )
    system = ArgusSystem(config=config)
    result = ExperimentRunner(seed=0, dataset_size=1500).run(system, trace)
    return result, system


def print_bands(result, max_qpm: float, duration: int) -> None:
    header = (
        f"{'load band':<18} {'offered':>9} {'served':>9} {'SLO viol.':>10} "
        f"{'quality':>9} {'fleet':>7}"
    )
    print(header)
    for start in range(0, duration, 15):
        window = result.minute_series[start : start + 15]
        offered = sum(m.offered_qpm for m in window) / len(window)
        served = sum(m.served_qpm for m in window) / len(window)
        violations = sum(m.violation_ratio for m in window) / len(window)
        quality = sum(m.mean_relative_quality for m in window) / len(window)
        fleet = sum(m.fleet_workers for m in window) / len(window)
        saturated = "  <- beyond fixed-fleet ceiling" if offered > max_qpm else ""
        print(
            f"minutes {start:3d}-{start + 14:<3d}   {offered:>9.0f} {served:>9.0f} "
            f"{violations:>9.2%} {quality:>8.2%} {fleet:>7.1f}{saturated}"
        )


def main() -> None:
    trace = build_trace()
    max_qpm = ModelZoo(gpu="A100").max_cluster_throughput_qpm(Strategy.AC, 8)
    print(f"Fixed 8-GPU fleet capacity at the most approximate AC level: {max_qpm:.0f} QPM")
    print(
        f"Ramping load 40 -> 240 QPM over {RAMP_MINUTES} minutes, then back down "
        f"over {DESCENT_MINUTES} ...\n"
    )

    print("=== Fixed fleet (the paper's §6 endpoint: the signal is printed) ===")
    fixed_result, _fixed_system = run(autoscale=False, trace=trace)
    print_bands(fixed_result, max_qpm, trace.duration_minutes)

    print("\n=== Autoscaled fleet (the signal drives a control loop) ===")
    scaled_result, scaled_system = run(autoscale=True, trace=trace)
    print_bands(scaled_result, max_qpm, trace.duration_minutes)

    if scaled_system.autoscaler is not None:
        print("\nScaling timeline:")
        for event in scaled_system.autoscaler.events:
            print(
                f"  t={event.time_s / 60.0:6.1f} min  {event.action:<10} "
                f"{event.delta:+d} -> fleet {event.fleet_size:2d}  ({event.reason})"
            )

    fixed, scaled = fixed_result.summary, scaled_result.summary
    print("\n--- Outcome ------------------------------------------------------")
    print(f"{'':<24}{'fixed':>12}{'autoscaled':>12}")
    print(f"{'served QPM':<24}{fixed.mean_served_qpm:>12.1f}{scaled.mean_served_qpm:>12.1f}")
    print(
        f"{'SLO violation ratio':<24}{fixed.slo_violation_ratio:>12.2%}"
        f"{scaled.slo_violation_ratio:>12.2%}"
    )
    print(
        f"{'relative quality':<24}{fixed.mean_relative_quality:>12.2%}"
        f"{scaled.mean_relative_quality:>12.2%}"
    )
    print(f"{'peak fleet':<24}{fixed.fleet_peak_workers:>12d}{scaled.fleet_peak_workers:>12d}")
    print(f"{'GPU-hours':<24}{fixed.gpu_hours:>12.1f}{scaled.gpu_hours:>12.1f}")
    print(
        f"{'cost per image':<24}{fixed.cost_per_image_usd:>12.4f}"
        f"{scaled.cost_per_image_usd:>12.4f}"
    )
    print(
        "\nThe §6 saturation signal (all workers at the most approximate level, "
        "offered load above the fleet ceiling) now feeds a closed loop: the "
        "fleet grows through the peak and shrinks back, trading a few extra "
        "GPU-hours for an order-of-magnitude drop in SLO violations."
    )


if __name__ == "__main__":
    main()
