"""Stress test: drive Argus up a load ramp and let the autoscaler answer.

Run with::

    python examples/stress_test_autoscaling_signal.py [--preset small|full]

Reproduces the Fig. 17 experiment shape — offered load ramps linearly past
the fixed cluster's fastest configuration, then subsides — twice: once with
the paper's fixed fleet, once with the closed-loop autoscaler enabled.
Where §6 of the paper stops at observing the horizontal-scaling signal
(every worker saturated at the most approximate level while load keeps
growing), the autoscaled run acts on it: workers are provisioned (with a
realistic provisioning delay and model warm-up), enter rotation, absorb the
peak, and drain back out with hysteresis once the ramp subsides.

The experiment itself is the registered ``autoscale-updown`` scenario; this
script runs it twice (autoscaler on and off) and compares.  The same run is
available headlessly via::

    python -m repro run --scenario autoscale-updown --preset full
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro import ModelZoo, Strategy, get_scenario, run_scenario
from repro.scenarios import build_config


def print_bands(result, max_qpm: float, duration: int) -> None:
    header = (
        f"{'load band':<18} {'offered':>9} {'served':>9} {'SLO viol.':>10} "
        f"{'quality':>9} {'fleet':>7}"
    )
    print(header)
    band = max(1, duration // 8)
    for start in range(0, duration, band):
        window = result.minute_series[start : start + band]
        if not window:
            continue
        offered = sum(m.offered_qpm for m in window) / len(window)
        served = sum(m.served_qpm for m in window) / len(window)
        violations = sum(m.violation_ratio for m in window) / len(window)
        quality = sum(m.mean_relative_quality for m in window) / len(window)
        fleet = sum(m.fleet_workers for m in window) / len(window)
        saturated = "  <- beyond fixed-fleet ceiling" if offered > max_qpm else ""
        print(
            f"minutes {start:3d}-{start + band - 1:<3d}   {offered:>9.0f} {served:>9.0f} "
            f"{violations:>9.2%} {quality:>8.2%} {fleet:>7.1f}{saturated}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="full", choices=("small", "full"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = get_scenario("autoscale-updown")
    fixed_scenario = replace(
        scenario,
        name="autoscale-updown-fixed",
        description="The same ramp with the autoscaler disabled (the paper's fixed fleet).",
        config={**scenario.config, "autoscale_enabled": False},
    )

    config = build_config(scenario, scenario.preset(args.preset), args.seed)
    zoo = ModelZoo(gpu=config.gpu)
    max_qpm = zoo.max_cluster_throughput_qpm(Strategy.AC, config.num_workers)
    print(
        f"Fixed {config.num_workers}-GPU fleet capacity at the most approximate "
        f"AC level: {max_qpm:.0f} QPM"
    )

    print("\n=== Fixed fleet (the paper's §6 endpoint: the signal is printed) ===")
    fixed_run = run_scenario(fixed_scenario, preset=args.preset, seed=args.seed)
    print_bands(fixed_run.result, max_qpm, fixed_run.trace.duration_minutes)

    print("\n=== Autoscaled fleet (the signal drives a control loop) ===")
    scaled_run = run_scenario(scenario, preset=args.preset, seed=args.seed)
    print_bands(scaled_run.result, max_qpm, scaled_run.trace.duration_minutes)

    if scaled_run.system.autoscaler is not None:
        print("\nScaling timeline:")
        for event in scaled_run.system.autoscaler.events:
            print(
                f"  t={event.time_s / 60.0:6.1f} min  {event.action:<10} "
                f"{event.delta:+d} -> fleet {event.fleet_size:2d}  ({event.reason})"
            )

    fixed, scaled = fixed_run.summary, scaled_run.summary
    print("\n--- Outcome ------------------------------------------------------")
    print(f"{'':<24}{'fixed':>12}{'autoscaled':>12}")
    print(f"{'served QPM':<24}{fixed.mean_served_qpm:>12.1f}{scaled.mean_served_qpm:>12.1f}")
    print(
        f"{'SLO violation ratio':<24}{fixed.slo_violation_ratio:>12.2%}"
        f"{scaled.slo_violation_ratio:>12.2%}"
    )
    print(
        f"{'relative quality':<24}{fixed.mean_relative_quality:>12.2%}"
        f"{scaled.mean_relative_quality:>12.2%}"
    )
    print(f"{'peak fleet':<24}{fixed.fleet_peak_workers:>12d}{scaled.fleet_peak_workers:>12d}")
    print(f"{'GPU-hours':<24}{fixed.gpu_hours:>12.1f}{scaled.gpu_hours:>12.1f}")
    print(
        f"{'cost per image':<24}{fixed.cost_per_image_usd:>12.4f}"
        f"{scaled.cost_per_image_usd:>12.4f}"
    )
    print(
        "\nThe §6 saturation signal (all workers at the most approximate level, "
        "offered load above the fleet ceiling) now feeds a closed loop: the "
        "fleet grows through the peak and shrinks back, trading a few extra "
        "GPU-hours for a large drop in SLO violations."
    )


if __name__ == "__main__":
    main()
