"""Stub sleep-based workers for the live gateway.

A :class:`StubWorker` is the wall-clock analogue of the simulator's
:class:`~repro.cluster.worker.Worker`: it serves requests one at a time from
a FIFO queue, and "serving" is an ``await runtime.sleep(service_time)`` whose
duration comes from the same :class:`~repro.models.zoo.ModelZoo` /
:class:`~repro.models.gpus.GpuSpec` latency model the simulation uses —
AC-level latencies shrink with the effective denoising skip, SM variants pay
their own inference cost, and a non-reference GPU scales every latency by
its relative speed.  No images are generated; the point is that queueing,
service and latency SLOs behave like the modeled fleet's.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.models.gpus import gpu_by_name
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.runtime.wall import WallClockRuntime


@dataclass
class StubJob:
    """One request staged onto a stub worker's queue."""

    #: Total model-time the GPU pass takes (retrieval overhead included).
    service_time_s: float
    #: Resolution callback invoked in-loop when service finishes; receives
    #: (worker_id, start_time_s) so the caller can build the completion.
    done: Callable[[int, float], Awaitable[None] | None]


@dataclass
class StubWorker:
    """Single-slot sleep-based worker with a FIFO queue."""

    worker_id: int
    gpu: str
    zoo: ModelZoo
    runtime: WallClockRuntime
    _queue: asyncio.Queue = field(default_factory=asyncio.Queue, repr=False)
    #: Model-seconds of queued-plus-in-service work (Eq. 3 backlog signal).
    backlog_s: float = 0.0
    outstanding: int = 0
    served: int = 0
    busy_s: float = 0.0
    _task: asyncio.Task | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        reference = self.zoo.latency_model.gpu
        #: Latency multiplier vs the zoo's reference GPU (<1 = faster).
        self.speed_scale = reference.relative_speed / gpu_by_name(self.gpu).relative_speed

    # ------------------------------------------------------------------ #
    # Latency model
    # ------------------------------------------------------------------ #
    def level_latency_s(self, level: ApproximationLevel) -> float:
        """Nominal single-request latency for ``level`` on this worker."""
        return level.latency_s * self.speed_scale

    def estimated_backlog_s(self) -> float:
        """Model-seconds of work ahead of a newly enqueued request."""
        return self.backlog_s

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._serve_loop())

    async def stop(self) -> None:
        if self._task is None:
            return
        await self._queue.put(None)
        await self._task
        self._task = None

    def enqueue(self, job: StubJob) -> None:
        self.outstanding += 1
        self.backlog_s += job.service_time_s
        self._queue.put_nowait(job)

    async def _serve_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            start = self.runtime.now()
            await self.runtime.sleep(job.service_time_s)
            self.outstanding -= 1
            self.backlog_s = max(0.0, self.backlog_s - job.service_time_s)
            self.served += 1
            self.busy_s += job.service_time_s
            result = job.done(self.worker_id, start)
            if asyncio.iscoroutine(result):
                await result


def least_backlog_worker(workers: list[StubWorker]) -> StubWorker:
    """Eq. 3 worker selection: least estimated backlog, id as tie-break."""
    return min(workers, key=lambda w: (w.estimated_backlog_s(), w.worker_id))


def fleet_ceiling_qps(workers: list[StubWorker], zoo: ModelZoo, strategy: Strategy) -> float:
    """Aggregate requests/second with every worker at the fastest level."""
    fastest = zoo.fastest_level(strategy)
    return sum(1.0 / max(w.level_latency_s(fastest), 1e-9) for w in workers)
