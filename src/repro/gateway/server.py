"""Asyncio HTTP gateway serving the modeled stack in wall-clock time.

The gateway is the live-mode counterpart of a simulated serving system: the
same :class:`~repro.core.config.ArgusConfig`, model zoo, approximate cache,
fair-share admission controller and metrics collector — but running on a
:class:`~repro.runtime.wall.WallClockRuntime` with sleep-based stub workers
instead of the event-heap cluster.  Requests enter over HTTP, travel the
interceptor chain (tenant resolution -> admission -> routing -> cache
lookup -> dispatch), and land on the worker with the least backlog.

The HTTP layer is a minimal dependency-free HTTP/1.1 server on
``asyncio.start_server`` (keep-alive, Content-Length framing only), which is
all the loopback load generator and a Prometheus scraper need.

Endpoints:

- ``GET /healthz`` — liveness plus headline counters.
- ``GET /metrics`` — Prometheus text exposition of the collector.
- ``GET /config`` — the gateway's resolved ``ArgusConfig.to_dict()``.
- ``GET /report`` — a :class:`~repro.metrics.report.ScenarioReport` dict
  (same shape the simulator emits, so PR-8 contracts certify live runs).
- ``POST /v1/generate`` — serve one prompt; body is the prompt's fields
  (``dataclasses.asdict(prompt)`` round-trips).
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import replace
from typing import Mapping
from urllib.parse import parse_qs

from repro.cache import build_cache
from repro.cache.network import NetworkModel
from repro.classifier.drift import DriftDetector
from repro.cluster.requests import CompletedRequest, Request
from repro.core.admission import FairShareAdmission
from repro.core.config import ArgusConfig
from repro.gateway.interceptors import (
    AdmissionGate,
    Interceptor,
    RequestContext,
    admission,
    cache_lookup,
    compose,
    routing,
    tenant_resolution,
)
from repro.gateway.workers import (
    StubJob,
    StubWorker,
    fleet_ceiling_qps,
    least_backlog_worker,
)
from repro.metrics.collector import MetricsCollector
from repro.metrics.prometheus import render_prometheus
from repro.metrics.report import ScenarioReport, TenantSummary, summarize
from repro.models.zoo import ModelZoo, Strategy
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.quality.pickscore import PickScoreModel
from repro.runtime.wall import WallClockRuntime
from repro.workloads.tenants import build_runtimes

#: Added model-seconds when a retrieval attempt hits a network outage
#: (matches :class:`repro.cluster.worker.Worker`'s default).
FAILED_RETRIEVAL_PENALTY_S = 0.25


def prompt_from_payload(payload: Mapping) -> Prompt:
    """Build a :class:`Prompt` from a request body.

    Accepts the full field dict (``dataclasses.asdict(prompt)``, possibly
    nested under ``"prompt"``) or a ``{"text": ...}`` shorthand for manual
    curls, which synthesises neutral feature values.
    """
    data = dict(payload.get("prompt", payload))
    if "text" in data and "prompt_id" not in data:
        return Prompt(
            prompt_id=abs(hash(data["text"])) % (1 << 31),
            text=str(data["text"]),
            num_entities=int(data.get("num_entities", 1)),
            num_attributes=int(data.get("num_attributes", 0)),
            num_style_tags=int(data.get("num_style_tags", 0)),
            has_action=bool(data.get("has_action", False)),
            has_scene=bool(data.get("has_scene", False)),
            complexity=float(data.get("complexity", 0.5)),
            topic=int(data.get("topic", 0)),
            tenant=str(data.get("tenant", "")),
        )
    return Prompt(**data)


class Gateway:
    """Live serving gateway over the stub worker fleet.

    Construction wires the same component set as
    :class:`~repro.core.base.BaseServingSystem`, swapping the simulation
    engine for a wall-clock runtime: ``time_scale`` model-seconds elapse per
    wall-second, so a scenario minute replays in ``60 / time_scale`` real
    seconds while every latency and SLO stays in model time.
    """

    name = "gateway"

    def __init__(
        self,
        config: ArgusConfig | None = None,
        time_scale: float = 1.0,
        interceptors: list[Interceptor] | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.config = config or ArgusConfig()
        self.time_scale = float(time_scale)
        self.runtime = WallClockRuntime(time_scale=self.time_scale)
        self.zoo = ModelZoo(gpu=self.config.gpu)
        self.pickscore = PickScoreModel(
            num_levels=self.zoo.num_levels(Strategy.AC), seed=self.config.seed
        )
        self.network = NetworkModel(seed=self.config.seed + 1)
        self.cache = build_cache(
            self.config, network=self.network, on_lookup=self._record_cache_lookup
        )
        self.tenant_runtimes = build_runtimes(self.config.tenants, self.config.slo)
        self.collector = MetricsCollector(
            slo=self.config.slo, retain_completed=self.config.retain_completed
        )
        self.strategy = self.config.default_strategy
        self.workers = [
            StubWorker(worker_id=i, gpu=self.config.gpu, zoo=self.zoo, runtime=self.runtime)
            for i in range(self.config.num_workers)
        ]
        self.gate = AdmissionGate()
        self.admission: FairShareAdmission | None = None
        if self.config.admission_enabled:
            self.admission = FairShareAdmission(
                runtime=self.runtime,
                tenants=self.config.tenants,
                capacity_qps=self._admission_capacity_qps,
                admit=self.gate.on_admit,
                rate_factor=self.config.admission_rate_factor,
                burst_s=self.config.admission_burst_s,
            )
        self.gate.attach(self.admission)
        self._drift = DriftDetector()
        self._drift_detectors: dict[str, DriftDetector] = {}
        self.drift_events = 0
        self._request_ids = itertools.count()
        self._known_tenants = frozenset(
            spec.name for spec in self.config.tenants if spec.name
        )
        chain = interceptors if interceptors is not None else self.default_interceptors()
        self._handler = compose(list(chain), self._dispatch)
        self._server: asyncio.base_events.Server | None = None
        self.host: str | None = None
        self.port: int | None = None
        if self.config.cache_warm_prompts > 0:
            self._warm_cache()

    # ------------------------------------------------------------------ #
    # Interceptor chain
    # ------------------------------------------------------------------ #
    def default_interceptors(self) -> list[Interceptor]:
        """The standard chain; operators may prepend/replace stages."""
        return [
            tenant_resolution(self._known_tenants),
            admission(self.gate),
            routing(self._pick_worker),
            cache_lookup(self._profile),
        ]

    def _record_cache_lookup(self, shard: int, hit: bool, latency_s: float) -> None:
        self.collector.record_cache_lookup(shard, hit, latency_s)

    def _pick_worker(self, ctx: RequestContext) -> int | None:
        if not self.workers:
            return None
        best = least_backlog_worker(self.workers)
        tolerance = self.config.cache_affinity_tolerance_s
        if tolerance > 0 and hasattr(self.cache, "worker_prefers"):
            # Shard-aware routing, same rule as the simulator's scheduler:
            # the cheapest worker near the likely-hit cache shard wins when
            # its backlog is within the tolerance of the global minimum.
            preferred = [
                w
                for w in self.workers
                if self.cache.worker_prefers(ctx.prompt, w.worker_id)
            ]
            if preferred:
                near = least_backlog_worker(preferred)
                if near.estimated_backlog_s() <= best.estimated_backlog_s() + tolerance:
                    return near.worker_id
        return best.worker_id

    def _profile(self, ctx: RequestContext) -> None:
        """Cache retrieval + latency model: the stub analogue of
        :meth:`repro.cluster.worker.Worker._service_profile` (no jitter)."""
        worker = self.workers[ctx.worker_id]
        level = self.zoo.fastest_level(self.strategy)
        ctx.level = level
        if self.strategy is not Strategy.AC or level.skip_steps in (None, 0):
            # SM (or an AC zoo whose fastest level skips nothing): serve the
            # exact variant so quality matches the modeled baseline.
            level = self.zoo.exact_level(self.strategy)
            ctx.level = level
            ctx.service_time_s = worker.level_latency_s(level)
            ctx.effective_rank = level.rank
            return
        outcome = self.cache.retrieve(ctx.prompt, level.skip_steps, self.runtime.now())
        spec = self.zoo.ac_level_spec(outcome.effective_skip) if outcome.effective_skip else None
        base_variant = self.zoo.sm_variant(level.variant_name or "SD-XL")
        if spec is None:
            latency = self.zoo.latency_model.variant_latency(base_variant)
            ctx.effective_rank = 0
        else:
            latency = self.zoo.latency_model.ac_latency(
                spec, base_variant, outcome.retrieval_latency_s
            )
            ctx.effective_rank = spec.approximation_rank
        if outcome.network_failed:
            latency += FAILED_RETRIEVAL_PENALTY_S
        ctx.cache_hit = outcome.hit
        ctx.retrieval_latency_s = outcome.retrieval_latency_s
        ctx.retrieval_failed = outcome.network_failed
        ctx.service_time_s = latency * worker.speed_scale

    async def _dispatch(self, ctx: RequestContext) -> None:
        """Terminal stage: queue on the chosen worker, await completion."""
        worker = self.workers[ctx.worker_id]
        request = Request(
            request_id=next(self._request_ids),
            prompt=ctx.prompt,
            arrival_time_s=ctx.arrival_time_s,
            strategy=self.strategy,
            predicted_rank=ctx.level.rank,
            assigned_rank=ctx.level.rank,
        )
        done = asyncio.get_running_loop().create_future()

        def finish(worker_id: int, start_s: float) -> None:
            completed = CompletedRequest(
                request=request,
                worker_id=worker_id,
                start_time_s=start_s,
                completion_time_s=self.runtime.now(),
                effective_rank=ctx.effective_rank,
                service_time_s=ctx.service_time_s,
                retrieval_latency_s=ctx.retrieval_latency_s,
                cache_hit=ctx.cache_hit,
                retrieval_failed=ctx.retrieval_failed,
            )
            if self.strategy is Strategy.AC:
                self.cache.store_states(ctx.prompt)
            score = self.pickscore.score(ctx.prompt, self.strategy, ctx.effective_rank)
            best = self.pickscore.best_score(ctx.prompt)
            sample = self.collector.record_completion(completed, score, best)
            if self._drift_for(ctx.tenant).observe(score) is not None:
                self.drift_events += 1
            ctx.response = {
                "request_id": request.request_id,
                "tenant": ctx.tenant,
                "worker_id": worker_id,
                "strategy": self.strategy.value,
                "effective_rank": ctx.effective_rank,
                "cache_hit": ctx.cache_hit,
                "admission_delayed": ctx.admission_delayed,
                "service_time_s": ctx.service_time_s,
                "latency_s": completed.latency_s,
                "relative_quality": sample.relative_quality,
            }
            if not done.done():
                done.set_result(None)

        worker.enqueue(StubJob(service_time_s=ctx.service_time_s, done=finish))
        await done

    # ------------------------------------------------------------------ #
    # Control-plane helpers
    # ------------------------------------------------------------------ #
    def _admission_capacity_qps(self) -> float:
        """Hit-rate-corrected fleet throughput (mirrors the simulator's
        :meth:`~repro.core.base.BaseServingSystem._admission_capacity_qps`)."""
        ceiling = fleet_ceiling_qps(self.workers, self.zoo, self.strategy)
        if self.strategy is Strategy.AC:
            fastest = self.zoo.fastest_level(self.strategy).latency_s
            exact = self.zoo.exact_level(self.strategy).latency_s
            hit = (self.cache.retrieval_hits + 5.0) / (self.cache.retrieval_attempts + 10.0)
            effective = hit * fastest + (1.0 - hit) * exact
            ceiling *= fastest / effective
        return ceiling

    def _warm_cache(self) -> None:
        """Pre-populate the cache from the offline training set, per tenant
        (same derivation as :class:`~repro.core.system.ArgusSystem`)."""
        dataset = PromptDataset.synthetic(
            count=max(self.config.classifier_training_prompts, self.config.cache_warm_prompts),
            seed=self.config.seed + 101,
        )
        warm = dataset.prompts[: self.config.cache_warm_prompts]
        if self.config.tenants:
            for spec in self.config.tenants:
                if not spec.name:
                    self.cache.warm(warm)
                    continue
                count = (
                    len(warm) if spec.cache_quota is None else min(len(warm), spec.cache_quota)
                )
                self.cache.warm([replace(prompt, tenant=spec.name) for prompt in warm[:count]])
        else:
            self.cache.warm(warm)

    def _drift_for(self, tenant: str) -> DriftDetector:
        if not tenant:
            return self._drift
        detector = self._drift_detectors.get(tenant)
        if detector is None:
            detector = DriftDetector()
            self._drift_detectors[tenant] = detector
        return detector

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _tenant_breakdown(self) -> tuple[TenantSummary, ...]:
        rows = []
        for runtime in self.tenant_runtimes.values():
            spec = runtime.spec
            stats = self.collector.tenant_stats(spec.name, budget_s=runtime.budget_s)
            admission_stats = (
                self.admission.stats_for(spec.name) if self.admission is not None else None
            )
            rows.append(
                TenantSummary(
                    name=spec.name,
                    slo_class=spec.slo_class,
                    weight=spec.weight,
                    slo_budget_s=runtime.budget_s,
                    arrivals=stats["arrivals"],
                    completions=stats["completions"],
                    dropped=stats["dropped"],
                    slo_violation_ratio=stats["violation_ratio"],
                    mean_relative_quality=stats["mean_relative_quality"],
                    p99_latency_s=stats["p99_latency_s"],
                    quality_floor=spec.quality_floor,
                    cache_hit_rate=self.cache.retrieval_hit_rate_for(spec.name),
                    admission_delayed=0 if admission_stats is None else admission_stats.delayed,
                    mean_admission_wait_s=(
                        0.0 if admission_stats is None else admission_stats.mean_wait_s
                    ),
                    admission_backlog=(
                        0 if self.admission is None else self.admission.backlog(spec.name)
                    ),
                )
            )
        return tuple(rows)

    def report_dict(
        self,
        scenario: str = "live",
        preset: str = "live",
        seed: int | None = None,
        workload: str = "live",
        duration_minutes: float | None = None,
    ) -> dict:
        """Scenario-shaped report dict over everything served so far.

        The dict has the exact shape of a simulated
        :class:`~repro.metrics.report.ScenarioReport` — including the
        ``extras.outstanding`` and ``extras.cache_tenants`` blocks the PR-8
        contracts read — so ``verify_report`` certifies live runs unchanged.
        """
        now = self.runtime.now()
        minutes_elapsed = (
            float(duration_minutes) if duration_minutes else max(now / 60.0, 1.0 / 60.0)
        )
        duration_s = minutes_elapsed * 60.0
        busy = sum(w.busy_s for w in self.workers)
        utilization = busy / max(duration_s * max(len(self.workers), 1), 1e-9)
        summary = summarize(
            system=self.name,
            workload=workload,
            collector=self.collector,
            duration_minutes=minutes_elapsed,
            cluster_utilization=min(1.0, utilization),
            fleet_peak_workers=len(self.workers),
            fleet_mean_workers=float(len(self.workers)),
            tenants=self._tenant_breakdown(),
        )
        extras: dict = {
            "gateway": {
                "time_scale": self.time_scale,
                "model_time_s": now,
                "strategy": self.strategy.value,
            },
            "outstanding": {
                "worker_queues": sum(w.outstanding for w in self.workers),
                "admission_backlog": self.gate.backlog(),
            },
            "retrieval_hit_rate": self.cache.retrieval_hit_rate,
            "retrieval_attempts": self.cache.retrieval_attempts,
            "drift_events": self.drift_events,
        }
        if hasattr(self.cache, "tier_stats"):
            extras["cache_tier"] = self.cache.tier_stats()
        if self.config.tenants:
            extras["cache_tenants"] = {
                spec.name: {
                    "entries": self.cache.tenant_entries(spec.name),
                    "quota": spec.cache_quota,
                }
                for spec in self.config.tenants
            }
        report = ScenarioReport(
            scenario=scenario,
            preset=preset,
            seed=self.config.seed if seed is None else int(seed),
            system=self.name,
            workload=workload,
            summary=summary,
            minutes=ScenarioReport.minute_rows(self.collector.minute_series()),
            extras=extras,
        )
        return report.to_dict()

    def metrics_text(self) -> str:
        """Prometheus exposition of the collector plus gateway gauges."""
        gauges = {
            "fleet_workers": float(len(self.workers)),
            "worker_queue_depth": float(sum(w.outstanding for w in self.workers)),
            "admission_backlog": float(self.gate.backlog()),
            "model_time_seconds": self.runtime.now(),
            "cache_retrieval_hit_rate": self.cache.retrieval_hit_rate,
        }
        return render_prometheus(self.collector, extra_gauges=gauges)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    async def handle_generate(self, payload: Mapping) -> tuple[int, dict]:
        """Serve one prompt through the interceptor chain."""
        try:
            prompt = prompt_from_payload(payload)
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad prompt payload: {exc}"}
        now = self.runtime.now()
        self.collector.record_arrival(now, tenant=prompt.tenant)
        ctx = RequestContext(prompt=prompt, received_at_s=now)
        await self._handler(ctx)
        if ctx.dropped:
            self.collector.record_drop(tenant=ctx.tenant)
            return 422, {"dropped": True, "reason": ctx.drop_reason}
        return 200, ctx.response

    async def handle(self, method: str, target: str, body: bytes) -> tuple[int, str, bytes]:
        """Route one HTTP request; returns (status, content-type, payload)."""
        path, _, query = target.partition("?")
        params = {key: values[-1] for key, values in parse_qs(query).items()}
        if method == "GET" and path == "/healthz":
            return _json_response(
                200,
                {
                    "status": "ok",
                    "model_time_s": self.runtime.now(),
                    "offered": self.collector.total_arrivals,
                    "served": self.collector.total_completions,
                },
            )
        if method == "GET" and path == "/metrics":
            return 200, "text/plain; version=0.0.4; charset=utf-8", self.metrics_text().encode()
        if method == "GET" and path == "/config":
            return _json_response(200, self.config.to_dict())
        if method == "GET" and path == "/report":
            duration = params.get("duration_minutes")
            return _json_response(
                200,
                self.report_dict(
                    scenario=params.get("scenario", "live"),
                    preset=params.get("preset", "live"),
                    seed=int(params["seed"]) if "seed" in params else None,
                    workload=params.get("workload", "live"),
                    duration_minutes=float(duration) if duration else None,
                ),
            )
        if method == "POST" and path == "/v1/generate":
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                return _json_response(400, {"error": f"invalid JSON body: {exc}"})
            status, response = await self.handle_generate(payload)
            return _json_response(status, response)
        return _json_response(404, {"error": f"no route for {method} {path}"})

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Start the worker fleet and listen on ``host:port`` (0 = ephemeral)."""
        self.runtime.start()
        for worker in self.workers:
            worker.start()
        self._server = await asyncio.start_server(self._serve_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for worker in self.workers:
            await worker.stop()

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("gateway is not started")
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = request_line.decode("latin-1").split()
                except ValueError:
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = b""
                length = int(headers.get("content-length", 0) or 0)
                if length:
                    body = await reader.readexactly(length)
                status, content_type, payload = await self.handle(method.upper(), target, body)
                close = headers.get("connection", "").lower() == "close"
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                        f"Content-Type: {content_type}\r\n"
                        f"Content-Length: {len(payload)}\r\n"
                        f"Connection: {'close' if close else 'keep-alive'}\r\n"
                        "\r\n"
                    ).encode("latin-1")
                )
                writer.write(payload)
                await writer.drain()
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def _json_response(status: int, payload: dict) -> tuple[int, str, bytes]:
    return status, "application/json", json.dumps(payload, sort_keys=True).encode()
