"""Replay registered scenarios against a live gateway.

The load generator takes the exact request stream a simulated scenario run
would see — same trace, same datasets, same per-tenant seed derivations via
:func:`repro.scenarios.runtime.build_stream` — and fires it at the gateway
over HTTP at a time-compressed rate (``time_scale`` model-seconds per wall
second).  Because the gateway's ``/report`` endpoint emits the same
:class:`~repro.metrics.report.ScenarioReport` dict shape the simulator does,
the scenario's PR-8 invariant contracts certify the live run unchanged.

Used in-process (``replay()`` spins up a loopback gateway on an ephemeral
port) or against an external server (``url=...``), which is what the CI
``gateway-smoke`` job does.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass, field
from urllib.parse import urlencode, urlsplit

from repro.core.config import ArgusConfig
from repro.gateway.server import Gateway
from repro.scenarios.contracts import ContractResult, verify_report, violations
from repro.scenarios.registry import get_scenario
from repro.scenarios.runtime import build_config, build_stream
from repro.scenarios.spec import Scenario


@dataclass
class LoadgenResult:
    """Outcome of one replay: the live report plus transport counters."""

    scenario: str
    preset: str
    seed: int
    #: ScenarioReport-shaped dict fetched from the gateway's ``/report``.
    report: dict
    #: Raw Prometheus exposition scraped from ``/metrics``.
    metrics_text: str
    requests_sent: int
    requests_ok: int
    requests_dropped: int
    #: Contract verdicts (empty unless ``check_contracts=True``).
    contract_results: list[ContractResult] = field(default_factory=list)

    @property
    def contracts_passed(self) -> bool:
        return not violations(self.contract_results)


# --------------------------------------------------------------------------- #
# Minimal HTTP/1.1 client (stdlib-only, one connection per call)
# --------------------------------------------------------------------------- #


async def _request(
    host: str, port: int, method: str, path: str, payload: dict | None = None
) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1]) if len(parts) >= 2 else 500
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await (reader.readexactly(length) if length is not None else reader.read())
        return status, data
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _get_json(host: str, port: int, path: str) -> dict:
    status, data = await _request(host, port, "GET", path)
    if status != 200:
        raise RuntimeError(f"GET {path} returned HTTP {status}: {data[:200]!r}")
    return json.loads(data)


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #


async def replay_async(
    scenario: Scenario | str,
    preset: str = "small",
    seed: int | None = None,
    time_scale: float = 60.0,
    url: str | None = None,
    config: ArgusConfig | None = None,
    check_contracts: bool = False,
    max_minutes: float | None = None,
) -> LoadgenResult:
    """Replay ``scenario``'s request stream against a gateway.

    With ``url=None`` an in-process :class:`Gateway` is started on an
    ephemeral loopback port (and stopped afterwards); otherwise requests go
    to the external server at ``url``.  ``time_scale`` compresses model time:
    60 replays one scenario-minute per wall-second.  ``max_minutes`` truncates
    the stream (useful for smoke tests over long traces).

    Every request is awaited before the report is fetched, so the run drains
    fully and the conservation contract's ``outstanding`` block is exact.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    preset_spec = scenario.preset(preset)
    if seed is None:
        seed = scenario.default_seed
    seed = int(seed)
    resolved = config or build_config(scenario, preset_spec, seed)
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    stream = build_stream(scenario, preset_spec, resolved, trace, seed)
    cutoff_s = None if max_minutes is None else float(max_minutes) * 60.0

    gateway: Gateway | None = None
    if url is None:
        gateway = Gateway(config=resolved, time_scale=time_scale)
        await gateway.start()
        host, port = gateway.host, gateway.port
    else:
        parsed = urlsplit(url if "//" in url else f"//{url}")
        host, port = parsed.hostname or "127.0.0.1", parsed.port or 80

    try:
        loop = asyncio.get_running_loop()
        origin = loop.time()
        tasks: list[asyncio.Task] = []
        sent = 0
        for timed in stream:
            if cutoff_s is not None and timed.arrival_time_s > cutoff_s:
                break
            fire_at = origin + timed.arrival_time_s / time_scale
            delay = fire_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                loop.create_task(
                    _request(host, port, "POST", "/v1/generate", asdict(timed.prompt))
                )
            )
            sent += 1
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        ok = sum(
            1 for out in outcomes if not isinstance(out, BaseException) and out[0] == 200
        )
        dropped = sum(
            1 for out in outcomes if not isinstance(out, BaseException) and out[0] == 422
        )
        errors = [out for out in outcomes if isinstance(out, BaseException)]
        if errors:
            raise RuntimeError(f"{len(errors)} requests failed in transport: {errors[0]!r}")

        minutes = max_minutes if max_minutes is not None else trace.duration_minutes
        query = urlencode(
            {
                "scenario": scenario.name,
                "preset": preset,
                "seed": seed,
                "workload": trace.name,
                "duration_minutes": minutes,
            }
        )
        report = await _get_json(host, port, f"/report?{query}")
        status, metrics_raw = await _request(host, port, "GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"GET /metrics returned HTTP {status}")

        contract_results: list[ContractResult] = []
        if check_contracts:
            contract_results = verify_report(report, scenario.contracts)
        return LoadgenResult(
            scenario=scenario.name,
            preset=preset,
            seed=seed,
            report=report,
            metrics_text=metrics_raw.decode(),
            requests_sent=sent,
            requests_ok=ok,
            requests_dropped=dropped,
            contract_results=contract_results,
        )
    finally:
        if gateway is not None:
            await gateway.stop()


def replay(
    scenario: Scenario | str,
    preset: str = "small",
    seed: int | None = None,
    time_scale: float = 60.0,
    url: str | None = None,
    config: ArgusConfig | None = None,
    check_contracts: bool = False,
    max_minutes: float | None = None,
) -> LoadgenResult:
    """Synchronous wrapper around :func:`replay_async`."""
    return asyncio.run(
        replay_async(
            scenario,
            preset=preset,
            seed=seed,
            time_scale=time_scale,
            url=url,
            config=config,
            check_contracts=check_contracts,
            max_minutes=max_minutes,
        )
    )
