"""The gateway's composable request-interceptor chain.

A request travels through an ordered pipeline of *interceptors* — each an
async callable ``(ctx, call_next)`` that may inspect/enrich the context,
short-circuit (drop), or delegate onward — terminating in the dispatch stage
that queues the request on a stub worker.  This is the middleware layering
the ROADMAP names: the standard chain is

    tenant resolution -> admission -> routing -> cache lookup -> dispatch

and operators compose their own by passing a different interceptor list to
the gateway.  Each stage only touches the :class:`RequestContext`, so custom
stages (auth, shadowing, rate limits) slot in without touching the core.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.core.admission import FairShareAdmission
from repro.models.zoo import ApproximationLevel
from repro.prompts.generator import Prompt


@dataclass
class RequestContext:
    """Mutable per-request state threaded through the interceptor chain."""

    prompt: Prompt
    #: Model time when the gateway accepted the request.
    received_at_s: float
    #: Model time the request's latency clock starts at (admission keeps the
    #: original offer time, so admission delay counts into the latency).
    arrival_time_s: float = 0.0
    tenant: str = ""
    #: True when fair-share admission parked the request before dispatch.
    admission_delayed: bool = False
    #: Target approximation level chosen by routing/cache stages.
    level: ApproximationLevel | None = None
    worker_id: int | None = None
    #: Total modeled GPU-pass time (set by the cache-lookup stage).
    service_time_s: float = 0.0
    effective_rank: int = 0
    cache_hit: bool = False
    retrieval_latency_s: float = 0.0
    retrieval_failed: bool = False
    dropped: bool = False
    drop_reason: str = ""
    #: Endpoint response payload (filled by dispatch on completion).
    response: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tenant = self.prompt.tenant
        if self.arrival_time_s == 0.0:
            self.arrival_time_s = self.received_at_s


Handler = Callable[[RequestContext], Awaitable[None]]
Interceptor = Callable[[RequestContext, Handler], Awaitable[None]]


def compose(interceptors: list[Interceptor], terminal: Handler) -> Handler:
    """Fold an interceptor list into a single handler (first runs outermost)."""
    handler = terminal
    for interceptor in reversed(interceptors):
        def bound(ctx: RequestContext, _next=handler, _layer=interceptor):
            return _layer(ctx, _next)

        handler = bound
    return handler


# --------------------------------------------------------------------------- #
# Admission bridge: FairShareAdmission's callback world -> asyncio futures
# --------------------------------------------------------------------------- #


class AdmissionGate:
    """Adapts the synchronous DRR admission controller to async callers.

    ``FairShareAdmission.offer`` either admits immediately or parks the
    prompt in a tenant queue and later invokes its ``admit`` callback from a
    runtime-scheduled drain pump.  Here each parked prompt gets an
    :class:`asyncio.Future`; the pump's callback (which runs in-loop, via
    ``loop.call_later``) resolves it with the original offer time, and the
    awaiting request task resumes.  The same controller object, the same
    token buckets and quanta — only the notification mechanism differs.
    """

    def __init__(self) -> None:
        self.controller: FairShareAdmission | None = None
        self._waiters: dict[int, asyncio.Future] = {}

    def attach(self, controller: FairShareAdmission | None) -> None:
        self.controller = controller

    def on_admit(self, prompt: Prompt, offer_time_s: float) -> None:
        """``admit`` callback handed to :class:`FairShareAdmission`."""
        future = self._waiters.pop(id(prompt), None)
        if future is not None and not future.done():
            future.set_result(offer_time_s)

    async def offer(self, now: float, prompt: Prompt) -> tuple[float, bool]:
        """Admit ``prompt``, waiting out any fair-share delay.

        Returns ``(offer_time_s, delayed)``: the latency clock start (always
        the original offer time, so queueing at admission is charged to the
        request) and whether the request actually waited.
        """
        if self.controller is None:
            return now, False
        if self.controller.offer(now, prompt):
            return now, False
        future = asyncio.get_running_loop().create_future()
        self._waiters[id(prompt)] = future
        try:
            return await future, True
        finally:
            self._waiters.pop(id(prompt), None)

    def backlog(self, tenant: str | None = None) -> int:
        if self.controller is None:
            return 0
        return self.controller.backlog(tenant)


# --------------------------------------------------------------------------- #
# Standard interceptors (factories closing over gateway components)
# --------------------------------------------------------------------------- #


def tenant_resolution(known_tenants: frozenset[str]) -> Interceptor:
    """Resolve and validate the request's tenant.

    With tenants configured, unknown tenant tags are rejected at the front
    door (the live analogue of a 403); the anonymous deployment passes
    everything through untagged.
    """

    async def run(ctx: RequestContext, call_next: Handler) -> None:
        if known_tenants and ctx.tenant and ctx.tenant not in known_tenants:
            ctx.dropped = True
            ctx.drop_reason = f"unknown tenant {ctx.tenant!r}"
            return
        await call_next(ctx)

    return run


def admission(gate: AdmissionGate) -> Interceptor:
    """Weighted fair-share admission (may suspend the request task)."""

    async def run(ctx: RequestContext, call_next: Handler) -> None:
        offered_at, delayed = await gate.offer(ctx.received_at_s, ctx.prompt)
        ctx.arrival_time_s = offered_at
        ctx.admission_delayed = delayed
        await call_next(ctx)

    return run


def routing(pick_worker: Callable[[RequestContext], int | None]) -> Interceptor:
    """Least-backlog worker selection (Eq. 3 over the stub fleet)."""

    async def run(ctx: RequestContext, call_next: Handler) -> None:
        worker_id = pick_worker(ctx)
        if worker_id is None:
            ctx.dropped = True
            ctx.drop_reason = "no healthy worker"
            return
        ctx.worker_id = worker_id
        await call_next(ctx)

    return run


def cache_lookup(profile: Callable[[RequestContext], None]) -> Interceptor:
    """Approximate-cache retrieval: sets level, service time and hit stats."""

    async def run(ctx: RequestContext, call_next: Handler) -> None:
        profile(ctx)
        await call_next(ctx)

    return run
