"""Live-mode HTTP gateway: wall-clock serving of the modeled stack.

See :mod:`repro.gateway.server` for the gateway itself,
:mod:`repro.gateway.interceptors` for the composable request pipeline and
:mod:`repro.gateway.loadgen` for scenario replay against a live server.
"""

from repro.gateway.interceptors import (
    AdmissionGate,
    Handler,
    Interceptor,
    RequestContext,
    compose,
)
from repro.gateway.loadgen import LoadgenResult, replay, replay_async
from repro.gateway.server import Gateway, prompt_from_payload
from repro.gateway.workers import StubJob, StubWorker, least_backlog_worker

__all__ = [
    "AdmissionGate",
    "Gateway",
    "Handler",
    "Interceptor",
    "LoadgenResult",
    "RequestContext",
    "StubJob",
    "StubWorker",
    "compose",
    "least_backlog_worker",
    "prompt_from_payload",
    "replay",
    "replay_async",
]
