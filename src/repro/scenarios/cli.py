"""The ``python -m repro`` command line: list, describe and run scenarios.

Commands::

    python -m repro list [--json]
    python -m repro describe <scenario> [--json]
    python -m repro run --scenario <name> [--preset small|full] [--seed N]
                        [--system argus] [--shards N] [--sync-window-s S]
                        [--output report.json] [--check-contracts]
    python -m repro serve [--host H] [--port P] [--time-scale X]
                          [--config-json config.json]
    python -m repro loadgen <scenario> [--preset small] [--url http://...]
                            [--time-scale X] [--check-contracts]

``list --json`` prints the scenario names as a JSON array — the CI scenario
matrix is generated from exactly that output.  ``run`` writes a
scenario-tagged :class:`~repro.metrics.report.ScenarioReport` JSON file that
is byte-identical across repeated runs with the same arguments.  With
``--check-contracts`` the run's report is verified against the scenario's
declared invariant contracts and the command exits 1 on any violation —
the CI ``contract-check`` job is exactly that, over the whole catalog.

``serve`` starts the live HTTP gateway (:mod:`repro.gateway`); ``loadgen``
replays a scenario's request stream against it (in-process by default, or an
external server via ``--url``) and verifies the same contracts on the live
report — the CI ``gateway-smoke`` job is exactly that.  ``--config-json``
takes a file in the ``ArgusConfig.to_dict()`` shape (scrape a live server's
``GET /config`` for a template); unknown keys are rejected with a
nearest-name suggestion.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runner import SYSTEM_NAMES
from repro.scenarios.contracts import verify_report, violations
from repro.scenarios.registry import get_scenario, list_scenarios, scenario_names
from repro.scenarios.runtime import run_scenario


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(scenario_names()))
        return 0
    rows = [
        (
            scenario.name,
            f"{scenario.trace.source}:{scenario.trace.name or 'inline'}",
            ",".join(sorted(scenario.presets)),
            scenario.description,
        )
        for scenario in list_scenarios()
    ]
    name_width = max(len(row[0]) for row in rows)
    trace_width = max(len(row[1]) for row in rows)
    preset_width = max(len(row[2]) for row in rows)
    header = (
        f"{'scenario':<{name_width}}  {'trace':<{trace_width}}  "
        f"{'presets':<{preset_width}}  description"
    )
    print(header)
    print("-" * len(header))
    for name, trace, presets, description in rows:
        print(
            f"{name:<{name_width}}  {trace:<{trace_width}}  "
            f"{presets:<{preset_width}}  {description}"
        )
    return 0


def _lookup(args: argparse.Namespace):
    """Resolve the scenario (and preset, for run) or exit with a message.

    Only name lookups are caught here — a KeyError out of the simulator
    itself is a bug and should traceback, not print a one-liner.
    """
    try:
        scenario = get_scenario(args.scenario)
        if getattr(args, "preset", None) is not None:
            scenario.preset(args.preset)
        return scenario
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return None


def _cmd_describe(args: argparse.Namespace) -> int:
    scenario = _lookup(args)
    if scenario is None:
        return 2
    if args.json:
        print(json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"{scenario.name}: {scenario.description}")
    print(f"  system:    {scenario.system}")
    print(f"  trace:     {scenario.trace.source}:{scenario.trace.name or 'inline'}"
          f" {scenario.trace.params or ''}")
    print(f"  arrivals:  {scenario.arrival_kind}")
    if scenario.exercises:
        print(f"  exercises: {', '.join(scenario.exercises)}")
    if scenario.config:
        print(f"  config:    {scenario.config}")
    for kind, entries in (
        ("faults", scenario.faults),
        ("drift", scenario.drift),
        ("network", scenario.network),
    ):
        if entries:
            print(f"  {kind}:")
            for entry in entries:
                print(f"    - {entry}")
    for preset_name in sorted(scenario.presets):
        preset = scenario.presets[preset_name]
        print(f"  preset {preset_name!r}: dataset={preset.dataset_size}"
              f" drain={preset.drain_s:g}s trace_params={preset.trace_params}"
              f" config={preset.config}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _lookup(args)
    if scenario is None:
        return 2
    run = run_scenario(
        scenario,
        preset=args.preset,
        seed=args.seed,
        system=args.system,
        shards=args.shards,
        sync_window_s=args.sync_window_s,
    )
    report = run.report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    if not args.quiet:
        row = run.summary.as_row()
        print(
            f"scenario={run.scenario.name} preset={run.preset_name} seed={run.seed} "
            f"system={row['system']}"
        )
        for key in (
            "served_qpm",
            "slo_violation_ratio",
            "relative_quality",
            "p99_latency_s",
            "utilization",
            "fleet_peak",
        ):
            print(f"  {key:<22}{row[key]}")
        for key in ("strategy_switches", "retraining_events", "retrieval_hit_rate"):
            if run.extras.get(key) is not None:
                print(f"  {key:<22}{run.extras[key]}")
        if args.output:
            print(f"  report written to {args.output}")
    if args.check_contracts:
        results = verify_report(report, scenario.contracts)
        failed = violations(results)
        stream = sys.stderr if failed else sys.stdout
        if not args.quiet or failed:
            print(f"contracts ({scenario.name}):", file=stream)
            for result in results:
                print(f"  {result}", file=stream)
        if failed:
            return 1
    return 0


def _load_config_json(path: str | None):
    """Parse a ``--config-json`` file into an ``ArgusConfig`` (or None)."""
    if path is None:
        return None
    from repro.core.config import ArgusConfig

    with open(path, encoding="utf-8") as handle:
        return ArgusConfig.from_dict(json.load(handle))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import serve

    try:
        config = _load_config_json(args.config_json)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    serve(config=config, host=args.host, port=args.port, time_scale=args.time_scale)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    scenario = _lookup(args)
    if scenario is None:
        return 2
    from repro.gateway.loadgen import replay

    try:
        config = _load_config_json(args.config_json)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = replay(
        scenario,
        preset=args.preset,
        seed=args.seed,
        time_scale=args.time_scale,
        url=args.url,
        config=config,
        check_contracts=args.check_contracts,
        max_minutes=args.max_minutes,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not args.quiet:
        summary = result.report["summary"]
        print(
            f"loadgen scenario={result.scenario} preset={result.preset} "
            f"seed={result.seed} time_scale={args.time_scale:g}"
        )
        print(f"  {'requests_sent':<22}{result.requests_sent}")
        print(f"  {'requests_ok':<22}{result.requests_ok}")
        print(f"  {'requests_dropped':<22}{result.requests_dropped}")
        for key in ("total_completions", "slo_violation_ratio", "p99_latency_s"):
            if key in summary:
                print(f"  {key:<22}{summary[key]}")
        if args.output:
            print(f"  report written to {args.output}")
    if args.check_contracts:
        failed = violations(result.contract_results)
        stream = sys.stderr if failed else sys.stdout
        if not args.quiet or failed:
            print(f"contracts ({result.scenario}, live):", file=stream)
            for contract_result in result.contract_results:
                print(f"  {contract_result}", file=stream)
        if failed:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproducible scenario runner for the Argus reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--json", action="store_true", help="emit a JSON array of names")
    list_parser.set_defaults(func=_cmd_list)

    describe = commands.add_parser("describe", help="show one scenario's full spec")
    describe.add_argument("scenario", help="scenario name (see 'list')")
    describe.add_argument("--json", action="store_true", help="emit the spec as JSON")
    describe.set_defaults(func=_cmd_describe)

    run_parser = commands.add_parser("run", help="run a scenario and emit a JSON report")
    run_parser.add_argument("--scenario", required=True, help="scenario name (see 'list')")
    run_parser.add_argument("--preset", default="full", help="preset name (default: full)")
    run_parser.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    run_parser.add_argument(
        "--system", default=None, choices=SYSTEM_NAMES,
        help="serve with a different system than the scenario default",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None,
        help="partition the run across N shard processes (1 = sequential)",
    )
    run_parser.add_argument(
        "--sync-window-s", type=float, default=None, dest="sync_window_s",
        help="barrier window in simulated seconds for sharded runs",
    )
    run_parser.add_argument("--output", default=None, help="write the JSON report here")
    run_parser.add_argument(
        "--check-contracts", action="store_true", dest="check_contracts",
        help="verify the scenario's invariant contracts against the report; "
        "exit 1 on any violation",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress the summary printout")
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = commands.add_parser("serve", help="start the live HTTP gateway")
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    serve_parser.add_argument(
        "--time-scale", type=float, default=1.0, dest="time_scale",
        help="model-seconds per wall-second (60 = one model-minute per second)",
    )
    serve_parser.add_argument(
        "--config-json", default=None, dest="config_json",
        help="ArgusConfig JSON file (shape of GET /config)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen", help="replay a scenario's request stream against a live gateway"
    )
    loadgen.add_argument("scenario", help="scenario name (see 'list')")
    loadgen.add_argument("--preset", default="small", help="preset name (default: small)")
    loadgen.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    loadgen.add_argument(
        "--time-scale", type=float, default=60.0, dest="time_scale",
        help="replay compression: model-seconds per wall-second (default: 60)",
    )
    loadgen.add_argument(
        "--url", default=None,
        help="external gateway URL; default starts an in-process loopback gateway",
    )
    loadgen.add_argument(
        "--max-minutes", type=float, default=None, dest="max_minutes",
        help="truncate the stream after N scenario-minutes",
    )
    loadgen.add_argument(
        "--config-json", default=None, dest="config_json",
        help="ArgusConfig JSON overriding the scenario-derived config "
        "(in-process gateway only)",
    )
    loadgen.add_argument("--output", default=None, help="write the live JSON report here")
    loadgen.add_argument(
        "--check-contracts", action="store_true", dest="check_contracts",
        help="verify the scenario's invariant contracts against the live report; "
        "exit 1 on any violation",
    )
    loadgen.add_argument("--quiet", action="store_true", help="suppress the summary printout")
    loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
