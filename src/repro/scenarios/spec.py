"""Declarative scenario specifications.

A :class:`Scenario` composes everything one reproducible experiment needs —
workload shape / trace source, fleet and autoscaler configuration, fault
injection, classifier-drift phases and network-condition timelines — into a
single named, seeded spec with a dict/JSON form.  Scenarios carry *presets*
(at minimum ``small`` for CI and ``full`` for real experiments) that scale
the same experiment down or up without changing what it exercises.

The spec layer is pure data: building traces, systems and streams from a
spec lives in :mod:`repro.scenarios.runtime`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cache.network import NetworkCondition
from repro.workloads.shapes import SHAPES, build_shape
from repro.workloads.traces import TraceLibrary, WorkloadTrace

#: Where a scenario's trace comes from.
TRACE_SOURCES = ("library", "shape", "replay")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative workload trace: a library trace, a shape, or a replay.

    - ``source="library"``: ``name`` is a :class:`TraceLibrary` trace
      (``twitter``, ``sysx``, ``bursty``, ``increasing``, ``constant``).
    - ``source="shape"``: ``name`` is a :data:`repro.workloads.shapes.SHAPES`
      generator (``steady``, ``diurnal``, ``flash-crowd``, ``ramp``,
      ``updown``).
    - ``source="replay"``: ``qpm`` is an explicit per-minute series.

    ``params`` are passed to the builder; ``scale`` multiplies the result.
    """

    source: str
    name: str = ""
    params: dict = field(default_factory=dict)
    qpm: tuple[float, ...] = ()
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.source not in TRACE_SOURCES:
            raise ValueError(f"unknown trace source {self.source!r}; known: {TRACE_SOURCES}")
        if self.source == "replay":
            if not self.qpm:
                raise ValueError("replay traces need an explicit qpm series")
        elif not self.name:
            raise ValueError(f"{self.source} traces need a name")
        if self.source == "shape" and self.name not in SHAPES:
            raise ValueError(f"unknown shape {self.name!r}; known: {sorted(SHAPES)}")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        object.__setattr__(self, "qpm", tuple(float(q) for q in self.qpm))

    def build(self, seed: int = 0, **overrides) -> WorkloadTrace:
        """Materialise the trace (``overrides`` update ``params``)."""
        params = {**self.params, **overrides}
        if self.source == "library":
            trace = TraceLibrary(seed=seed).by_name(self.name, **params)
        elif self.source == "shape":
            trace = build_shape(self.name, seed=seed, **params)
        else:
            trace = WorkloadTrace("replay", self.qpm)
        if self.scale != 1.0:
            trace = trace.scaled(self.scale)
        return trace


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled worker fault (and optional recovery).

    Either ``worker_id`` names one worker, or ``fleet_fraction`` targets that
    fraction of the initial fleet (lowest worker ids, rounded to nearest).

    By default the fault is a crash: the worker fails hard and its in-flight
    work is re-routed.  With ``degrade_factor`` set, it is a *gray* failure
    instead — the worker stays in rotation but runs at ``degrade_factor`` of
    its normal speed (slow-not-dead) until ``recover_at_minute`` restores it.
    """

    fail_at_minute: float
    recover_at_minute: float | None = None
    worker_id: int | None = None
    fleet_fraction: float | None = None
    #: Gray failure: multiply the worker's speed by this instead of failing
    #: it.  Must be in (0, 1); ``None`` keeps the hard-crash behaviour.
    degrade_factor: float | None = None

    def __post_init__(self) -> None:
        if (self.worker_id is None) == (self.fleet_fraction is None):
            raise ValueError("specify exactly one of worker_id or fleet_fraction")
        if self.fleet_fraction is not None and not 0.0 < self.fleet_fraction <= 1.0:
            raise ValueError("fleet_fraction must be in (0, 1]")
        if self.degrade_factor is not None and not 0.0 < self.degrade_factor < 1.0:
            raise ValueError("degrade_factor must be in (0, 1)")
        if self.fail_at_minute < 0:
            raise ValueError("fail_at_minute must be non-negative")
        if self.recover_at_minute is not None and self.recover_at_minute <= self.fail_at_minute:
            raise ValueError("recovery must happen after the failure")

    def worker_ids(self, num_workers: int) -> tuple[int, ...]:
        """Concrete worker ids this event fails on an ``num_workers`` fleet."""
        if self.worker_id is not None:
            if not 0 <= self.worker_id < num_workers:
                raise ValueError(f"worker_id {self.worker_id} outside fleet of {num_workers}")
            return (self.worker_id,)
        count = max(1, int(round(self.fleet_fraction * num_workers)))
        return tuple(range(min(count, num_workers)))


@dataclass(frozen=True)
class DriftPhase:
    """A prompt-distribution phase: from ``start_minute`` onward, the
    workload draws prompts generated with ``complexity_bias``."""

    start_minute: float
    complexity_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.start_minute < 0:
            raise ValueError("start_minute must be non-negative")


@dataclass(frozen=True)
class NetworkWindow:
    """A scheduled cache-network condition over a window of the run.

    ``node`` targets one cache-tier node's own network model (requires a
    run with ``cache_shards >= 2`` or replication on); ``None`` keeps the
    global client-side condition every cache build understands.
    """

    start_minute: float
    end_minute: float
    condition: str
    node: int | None = None

    def __post_init__(self) -> None:
        if self.end_minute <= self.start_minute:
            raise ValueError("window end must be after start")
        NetworkCondition(self.condition)  # raises ValueError for unknown conditions
        if self.node is not None and self.node < 0:
            raise ValueError("node must be a non-negative cache-node id")


#: What a scheduled cache-tier event may do.
CACHE_EVENT_ACTIONS = ("add_node", "remove_node", "poison")


@dataclass(frozen=True)
class CacheEvent:
    """One scheduled cache-tier control event.

    ``add_node`` grows the ring (rebalancing the moved arcs),
    ``remove_node`` retires node ``node``, and ``poison`` corrupts
    ``fraction`` of stored entries in place (seeded, detectable only via
    the retrieval-path checksum).  Only meaningful on runs whose config
    enables the cache tier.
    """

    at_minute: float
    action: str
    node: int | None = None
    fraction: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at_minute < 0:
            raise ValueError("at_minute must be non-negative")
        if self.action not in CACHE_EVENT_ACTIONS:
            raise ValueError(
                f"unknown cache event action {self.action!r}; known: {CACHE_EVENT_ACTIONS}"
            )
        if self.action == "remove_node" and self.node is None:
            raise ValueError("remove_node needs a node id")
        if self.action == "poison":
            if self.fraction is None or not 0.0 < self.fraction <= 1.0:
                raise ValueError("poison needs a fraction in (0, 1]")


def _validate_drift(phases: tuple[DriftPhase, ...]) -> None:
    """A drift schedule must cover the run: phase 0 at t=0, sorted starts."""
    starts = [phase.start_minute for phase in phases]
    if starts and (starts[0] != 0.0 or starts != sorted(starts) or len(set(starts)) != len(starts)):
        raise ValueError("drift phases must start at 0 and have strictly increasing starts")


@dataclass(frozen=True)
class Preset:
    """A size class of a scenario: the same experiment, scaled.

    ``trace_params`` override the scenario's :class:`TraceSpec` params (this
    is where ``small`` shrinks the duration); ``config`` overrides
    :class:`~repro.core.config.ArgusConfig` fields on top of the scenario's
    own overrides.  ``faults`` / ``drift`` / ``network`` replace the
    scenario-level schedules when set (schedules are absolute times, so a
    shorter preset usually needs its own).
    """

    dataset_size: int = 3000
    drain_s: float = 120.0
    trace_params: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    faults: tuple[FaultEvent, ...] | None = None
    drift: tuple[DriftPhase, ...] | None = None
    network: tuple[NetworkWindow, ...] | None = None
    cache_events: tuple[CacheEvent, ...] | None = None

    def __post_init__(self) -> None:
        if self.dataset_size <= 0:
            raise ValueError("dataset_size must be positive")
        if self.drain_s < 0:
            raise ValueError("drain_s must be non-negative")
        for name in ("faults", "drift", "network", "cache_events"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(value))
        if self.drift is not None:
            _validate_drift(self.drift)


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, fully declarative experiment."""

    name: str
    description: str
    trace: TraceSpec
    #: What this scenario exercises (free-form tags for the catalog).
    exercises: tuple[str, ...] = ()
    #: Serving system to run (any :func:`repro.experiments.runner.build_system` name).
    system: str = "argus"
    arrival_kind: str = "poisson"
    #: Base ArgusConfig overrides shared by every preset.
    config: dict = field(default_factory=dict)
    faults: tuple[FaultEvent, ...] = ()
    drift: tuple[DriftPhase, ...] = ()
    network: tuple[NetworkWindow, ...] = ()
    cache_events: tuple[CacheEvent, ...] = ()
    presets: dict[str, Preset] = field(default_factory=dict)
    default_seed: int = 0
    #: Invariant contracts verified against this scenario's report (names
    #: from :mod:`repro.scenarios.contracts`, optionally ``"name:param"``).
    contracts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.arrival_kind not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival kind {self.arrival_kind!r}")
        object.__setattr__(self, "exercises", tuple(self.exercises))
        object.__setattr__(self, "contracts", tuple(self.contracts))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "drift", tuple(self.drift))
        object.__setattr__(self, "network", tuple(self.network))
        object.__setattr__(self, "cache_events", tuple(self.cache_events))
        if "small" not in self.presets or "full" not in self.presets:
            raise ValueError(f"scenario {self.name!r} must define 'small' and 'full' presets")
        _validate_drift(self.drift)

    def preset(self, name: str) -> Preset:
        """Look up a preset by name."""
        try:
            return self.presets[name]
        except KeyError:
            raise KeyError(
                f"scenario {self.name!r} has no preset {name!r}; known: {sorted(self.presets)}"
            ) from None

    def schedule(self, preset: Preset) -> tuple[
        tuple[FaultEvent, ...], tuple[DriftPhase, ...], tuple[NetworkWindow, ...]
    ]:
        """Effective (faults, drift, network) under ``preset`` overrides."""
        faults = preset.faults if preset.faults is not None else self.faults
        drift = preset.drift if preset.drift is not None else self.drift
        network = preset.network if preset.network is not None else self.network
        return tuple(faults), tuple(drift), tuple(network)

    def cache_schedule(self, preset: Preset) -> tuple[CacheEvent, ...]:
        """Effective cache-tier events under ``preset`` overrides."""
        events = (
            preset.cache_events if preset.cache_events is not None else self.cache_events
        )
        return tuple(events)

    # ------------------------------------------------------------------ #
    # Dict / JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable)."""
        payload = asdict(self)
        payload["trace"]["qpm"] = list(self.trace.qpm)
        payload["exercises"] = list(self.exercises)
        payload["contracts"] = list(self.contracts)
        payload["faults"] = [asdict(e) for e in self.faults]
        payload["drift"] = [asdict(p) for p in self.drift]
        payload["network"] = [asdict(w) for w in self.network]
        payload["cache_events"] = [asdict(e) for e in self.cache_events]
        payload["presets"] = {}
        for preset_name, preset in self.presets.items():
            entry = asdict(preset)
            for key in ("faults", "drift", "network", "cache_events"):
                value = getattr(preset, key)
                entry[key] = None if value is None else [asdict(item) for item in value]
            payload["presets"][preset_name] = entry
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        data = dict(payload)
        data["trace"] = TraceSpec(**dict(data["trace"], qpm=tuple(data["trace"].get("qpm", ()))))
        data["exercises"] = tuple(data.get("exercises", ()))
        data["contracts"] = tuple(data.get("contracts", ()))
        data["faults"] = tuple(FaultEvent(**e) for e in data.get("faults", ()))
        data["drift"] = tuple(DriftPhase(**p) for p in data.get("drift", ()))
        data["network"] = tuple(NetworkWindow(**w) for w in data.get("network", ()))
        data["cache_events"] = tuple(CacheEvent(**e) for e in data.get("cache_events", ()))
        presets = {}
        for preset_name, entry in data.get("presets", {}).items():
            entry = dict(entry)
            if entry.get("faults") is not None:
                entry["faults"] = tuple(FaultEvent(**e) for e in entry["faults"])
            if entry.get("drift") is not None:
                entry["drift"] = tuple(DriftPhase(**p) for p in entry["drift"])
            if entry.get("network") is not None:
                entry["network"] = tuple(NetworkWindow(**w) for w in entry["network"])
            if entry.get("cache_events") is not None:
                entry["cache_events"] = tuple(CacheEvent(**e) for e in entry["cache_events"])
            presets[preset_name] = Preset(**entry)
        data["presets"] = presets
        return cls(**data)
