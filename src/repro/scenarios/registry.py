"""The shipped scenario catalog.

Every entry composes the spec layer into a named, reproducible experiment
with a ``small`` preset (seconds, runs in the CI scenario matrix) and a
``full`` preset (the real experiment).  Adding a scenario is a registry
entry — no new wiring code.
"""

from __future__ import annotations

from repro.scenarios.contracts import validate_contracts
from repro.scenarios.spec import (
    CacheEvent,
    DriftPhase,
    FaultEvent,
    NetworkWindow,
    Preset,
    Scenario,
    TraceSpec,
)

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the catalog (name must be unique).

    Every catalog entry must certify at least one invariant: a scenario
    with an empty or misspelled ``contracts`` tuple is rejected here, so
    ``python -m repro run --check-contracts`` has something to verify for
    every name ``list`` prints.
    """
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    if not scenario.contracts:
        raise ValueError(
            f"scenario {scenario.name!r} declares no contracts; every registered "
            "scenario must certify at least one invariant "
            "(see repro.scenarios.contracts)"
        )
    validate_contracts(scenario.contracts)
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> list[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


#: ArgusConfig overrides shared by every ``small`` preset: a half-size
#: fleet and a lighter offline phase keep each CI run in the seconds range
#: while exercising the same control loops as the full experiment.
SMALL_FLEET = {
    "num_workers": 4,
    "classifier_training_prompts": 400,
    "profiling_prompts": 200,
    "classifier_epochs": 8,
}


register(
    Scenario(
        name="steady-baseline",
        description=(
            "Flat offered load comfortably inside the fleet ceiling: the "
            "calibration baseline every other scenario is compared against."
        ),
        exercises=("routing", "solver", "approximate cache"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 90.0}),
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 15, "qpm": 45.0},
                config=SMALL_FLEET,
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 120}),
        },
    )
)

register(
    Scenario(
        name="flash-crowd",
        description=(
            "A sudden 3x spike on a steady baseline: stresses backlog-"
            "triggered out-of-band recalibration and queueing headroom."
        ),
        exercises=("backlog recalibration", "load estimation", "tail latency"),
        contracts=("conservation",),
        trace=TraceSpec(source="shape", name="flash-crowd"),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={
                    "duration_minutes": 24,
                    "base_qpm": 35.0,
                    "spike_start_minute": 8,
                    "spike_minutes": 5,
                    "spike_multiplier": 2.6,
                    "decay_minutes": 3,
                },
                config=SMALL_FLEET,
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 90,
                    "base_qpm": 70.0,
                    "spike_start_minute": 30,
                    "spike_minutes": 12,
                    "spike_multiplier": 3.0,
                },
            ),
        },
    )
)

register(
    Scenario(
        name="diurnal-24h",
        description=(
            "A full day/night cycle: load swings from trough to peak and "
            "back, exercising sustained re-allocation across load levels."
        ),
        exercises=("re-allocation cadence", "diurnal load", "quality adaptation"),
        contracts=("conservation",),
        trace=TraceSpec(source="shape", name="diurnal"),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={
                    "duration_minutes": 30,
                    "period_minutes": 30,
                    "base_qpm": 25.0,
                    "peak_qpm": 85.0,
                },
                config=SMALL_FLEET,
            ),
            "full": Preset(
                dataset_size=5000,
                trace_params={"duration_minutes": 1440, "base_qpm": 50.0, "peak_qpm": 160.0},
            ),
        },
    )
)

register(
    Scenario(
        name="autoscale-updown",
        description=(
            "The Fig. 17 up-down ramp with the closed-loop autoscaler: load "
            "outgrows the fixed fleet, workers provision through the peak "
            "and drain back out with hysteresis."
        ),
        exercises=("autoscaler", "saturation signal", "elastic fleet", "cost accounting"),
        contracts=("conservation", "fleet-budget"),
        trace=TraceSpec(source="shape", name="updown"),
        config={
            "autoscale_enabled": True,
            "provision_delay_s": 90.0,
        },
        presets={
            "small": Preset(
                dataset_size=800,
                trace_params={
                    "ramp_minutes": 27,
                    "descent_minutes": 9,
                    "start_qpm": 25.0,
                    "peak_qpm": 130.0,
                },
                config={**SMALL_FLEET, "max_workers": 8, "provision_delay_s": 45.0},
            ),
            "full": Preset(
                dataset_size=1500,
                trace_params={
                    "ramp_minutes": 90,
                    "descent_minutes": 30,
                    "start_qpm": 40.0,
                    "peak_qpm": 240.0,
                },
                config={"max_workers": 16},
            ),
        },
    )
)

register(
    Scenario(
        name="fault-storm",
        description=(
            "Staggered worker failures under load (Fig. 20a scaled up): half "
            "the fleet drops in two waves and recovers; the allocator trades "
            "quality for throughput and back."
        ),
        exercises=("failure injection", "requeueing", "degraded re-allocation"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 85.0}),
        faults=(
            FaultEvent(fail_at_minute=15.0, recover_at_minute=35.0, fleet_fraction=0.25),
            FaultEvent(fail_at_minute=20.0, recover_at_minute=40.0, worker_id=7),
            FaultEvent(fail_at_minute=22.0, recover_at_minute=40.0, worker_id=6),
        ),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 20, "qpm": 42.0},
                config=SMALL_FLEET,
                faults=(
                    FaultEvent(fail_at_minute=5.0, recover_at_minute=12.0, fleet_fraction=0.25),
                    FaultEvent(fail_at_minute=7.0, recover_at_minute=14.0, worker_id=3),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 55}),
        },
    )
)

register(
    Scenario(
        name="drift-recalibration",
        description=(
            "The prompt mix shifts to harder prompts mid-run (Fig. 18): the "
            "drift detector notices the PickScore shift and retrains the "
            "affinity classifiers on recent traffic."
        ),
        exercises=("classifier drift", "retraining", "prompt distribution shift"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 90.0}),
        drift=(
            DriftPhase(start_minute=0.0, complexity_bias=0.0),
            DriftPhase(start_minute=30.0, complexity_bias=0.45),
        ),
        presets={
            # The drift point sits past two full 400-sample detector windows
            # so the baseline moving average is established before the shift.
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 30, "qpm": 60.0},
                config=SMALL_FLEET,
                drift=(
                    DriftPhase(start_minute=0.0, complexity_bias=0.0),
                    DriftPhase(start_minute=15.0, complexity_bias=0.55),
                ),
            ),
            "full": Preset(dataset_size=4000, trace_params={"duration_minutes": 70}),
        },
    )
)

register(
    Scenario(
        name="degraded-network",
        description=(
            "The cache network congests, then blacks out (Fig. 20b): "
            "retrieval monitoring abandons approximate caching for smaller "
            "models and probes its way back after recovery."
        ),
        exercises=("strategy switching", "network probes", "retrieval monitoring"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 110.0}),
        config={"retrieval_violations_to_switch": 10},
        network=(
            NetworkWindow(start_minute=12.0, end_minute=20.0, condition="congested"),
            NetworkWindow(start_minute=20.0, end_minute=32.0, condition="outage"),
        ),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 24, "qpm": 55.0},
                config={**SMALL_FLEET, "retrieval_violations_to_switch": 6},
                network=(
                    NetworkWindow(start_minute=6.0, end_minute=10.0, condition="congested"),
                    NetworkWindow(start_minute=10.0, end_minute=16.0, condition="outage"),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 45}),
        },
    )
)

register(
    Scenario(
        name="cache-cold-start",
        description=(
            "Approximate caching from an empty cache: no warm-up prompts, so "
            "early AC traffic misses while the vector database fills from "
            "live traffic — the hit rate ramps from zero."
        ),
        exercises=("cache warm-up", "hit-rate ramp", "retrieval path"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="twitter"),
        config={"cache_warm_prompts": 0},
        presets={
            # The dataset outsizes the request count so prompts do not
            # recycle: every retrieval is a first encounter and the hit rate
            # genuinely ramps with vector-index coverage.
            "small": Preset(
                dataset_size=2000,
                trace_params={"duration_minutes": 20, "base_qpm": 25.0, "peak_qpm": 60.0},
                config=SMALL_FLEET,
            ),
            "full": Preset(dataset_size=5000, trace_params={"duration_minutes": 240}),
        },
    )
)

# --------------------------------------------------------------------- #
# Multi-tenant scenarios.  Tenant contracts are written as plain dicts (not
# TenantSpec instances) so the scenario's dict/JSON round-trip is exact;
# ArgusConfig coerces them on construction.
# --------------------------------------------------------------------- #
register(
    Scenario(
        name="tenant-fair-share",
        description=(
            "Two equal-weight tenants split a steady load: the weighted "
            "fair-share admission and per-tenant accounting should serve "
            "them near-identically (Jain index ~1)."
        ),
        exercises=("multi-tenancy", "fair-share admission", "per-tenant accounting"),
        contracts=("conservation", "fairness:0.95", "cache-quota"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 90.0}),
        config={
            "tenants": [
                {"name": "alpha", "weight": 1.0, "traffic_share": 0.5},
                {"name": "beta", "weight": 1.0, "traffic_share": 0.5},
            ],
        },
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 14, "qpm": 56.0},
                config=SMALL_FLEET,
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 120}),
        },
    )
)

register(
    Scenario(
        name="tenant-noisy-neighbor",
        description=(
            "A flash-crowd tenant floods the fleet while a quiet tenant "
            "keeps its steady trickle: fair-share admission confines the "
            "overload to the noisy tenant's own queue, so the quiet "
            "tenant's SLO survives the crowd."
        ),
        exercises=("multi-tenancy", "noisy neighbor", "tenant isolation", "token buckets"),
        # The crowd is deliberately lopsided, so the fairness floor is loose:
        # the contract certifies the quiet tenant is not starved outright,
        # not that the storm is served evenly.
        contracts=("conservation", "fairness:0.5", "cache-quota"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 60.0}),
        # Full-rate admission: deadline-ordered per-tenant worker queues
        # (weighted DRR + EDF) keep the quiet tenant ahead of crowd spillover
        # at the workers themselves, so admission no longer needs the 0.65
        # under-admit margin that previously absorbed cache-miss churn.
        config={"admission_rate_factor": 1.0, "tenant_priority_queues": True},
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 18, "qpm": 48.0},
                config={
                    **SMALL_FLEET,
                    "tenants": [
                        {"name": "quiet", "weight": 1.0, "traffic_share": 0.25},
                        {
                            "name": "noisy",
                            "weight": 1.0,
                            "traffic_share": 0.75,
                            "extra_qpm": [0.0] * 6 + [130.0] * 5 + [0.0] * 7,
                        },
                    ],
                },
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={"duration_minutes": 70, "qpm": 120.0},
                config={
                    "tenants": [
                        {"name": "quiet", "weight": 1.0, "traffic_share": 0.25},
                        {
                            "name": "noisy",
                            "weight": 1.0,
                            "traffic_share": 0.75,
                            "extra_qpm": [0.0] * 25 + [360.0] * 15 + [0.0] * 30,
                        },
                    ],
                },
            ),
        },
    )
)

register(
    Scenario(
        name="tenant-tiered-slo",
        description=(
            "Gold / standard / best-effort tenants compete at high load: "
            "SLO-class-aware routing meets the gold tenant's tighter budget "
            "and its quality floor while best-effort absorbs the slack."
        ),
        exercises=("multi-tenancy", "SLO classes", "quality floors", "weighted shares"),
        contracts=("conservation", "fairness:0.7", "slo-ordering", "cache-quota"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 230.0}),
        config={
            "tenants": [
                {
                    "name": "gold",
                    "weight": 3.0,
                    "traffic_share": 0.3,
                    "slo_class": "gold",
                    "quality_floor_rank": 2,
                    "quality_floor": 0.65,
                },
                {"name": "standard", "weight": 2.0, "traffic_share": 0.4},
                {
                    "name": "best-effort",
                    "weight": 1.0,
                    "traffic_share": 0.3,
                    "slo_class": "best-effort",
                },
            ],
        },
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 16, "qpm": 112.0},
                config=SMALL_FLEET,
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 90}),
        },
    )
)

register(
    Scenario(
        name="bursty-load-switch",
        description=(
            "Bursty load whose high phase presses against the AC throughput "
            "ceiling: the load-driven AC→SM switch fires during bursts and "
            "switches back in the quiet phases."
        ),
        exercises=("load-driven strategy switch", "hysteresis", "bursty traffic"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="bursty"),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={
                    "duration_minutes": 30,
                    "low_qpm": 45.0,
                    "high_qpm": 104.0,
                    "mean_burst_minutes": 9.0,
                },
                config=SMALL_FLEET,
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 200,
                    "low_qpm": 90.0,
                    "high_qpm": 208.0,
                    "mean_burst_minutes": 35.0,
                },
            ),
        },
    )
)

register(
    Scenario(
        name="sharded-autoscale",
        description=(
            "The Fig. 17-style elastic fleet run in sharded mode: each shard "
            "runs its own autoscaler over its fleet partition and the "
            "coordinator's budget broker grants scale requests against the "
            "global min/max worker budget at fixed autoscale epochs.  "
            "Sequential (shards=1) runs exercise the same scenario on the "
            "classic global autoscaler; `--shards 4` exercises the broker."
        ),
        exercises=("sharded execution", "autoscaler", "budget broker", "elastic fleet"),
        contracts=("conservation", "fleet-budget", "ledger-matches-fleet"),
        trace=TraceSpec(source="library", name="twitter"),
        config={
            "autoscale_enabled": True,
            "autoscale_epoch_s": 60.0,
            "provision_delay_s": 30.0,
        },
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={
                    "duration_minutes": 8,
                    "base_qpm": 60.0,
                    "peak_qpm": 240.0,
                },
                config={**SMALL_FLEET, "min_workers": 2, "max_workers": 10},
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 120,
                    "base_qpm": 240.0,
                    "peak_qpm": 960.0,
                },
                config={"num_workers": 16, "min_workers": 8, "max_workers": 40},
            ),
        },
    )
)

register(
    Scenario(
        name="sharded-steal",
        description=(
            "A skewed two-tenant workload for cross-shard work stealing: the "
            "hot tenant's mid-run burst transiently overwhelms its shard at "
            "~3x the planned rate while the cold tenant's shard keeps "
            "headroom.  With `--shards 2` the coordinator migrates admission-"
            "queue tails from the backlogged shard onto the idle one each "
            "barrier; sequential runs serve the same workload unstolen."
        ),
        exercises=("sharded execution", "work stealing", "multi-tenancy", "burst absorption"),
        contracts=("conservation", "cache-quota"),
        trace=TraceSpec(source="library", name="twitter"),
        config={
            "shard_work_stealing": True,
            "steal_backlog_threshold": 4,
            "steal_max_fraction": 1.0,
            "sync_window_s": 15.0,
            "tenants": [
                {
                    "name": "hot",
                    "traffic_share": 0.2,
                    "extra_qpm": [0.0, 0.0, 150.0, 150.0, 150.0, 0.0, 0.0, 0.0],
                },
                {"name": "cold", "traffic_share": 0.8},
            ],
        },
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={
                    "duration_minutes": 8,
                    "base_qpm": 24.0,
                    "peak_qpm": 36.0,
                },
                config={**SMALL_FLEET, "num_workers": 6},
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 60,
                    "base_qpm": 96.0,
                    "peak_qpm": 144.0,
                },
                config={
                    "num_workers": 24,
                    "tenants": [
                        {
                            "name": "hot",
                            "traffic_share": 0.2,
                            "extra_qpm": [0.0] * 15 + [600.0] * 15 + [0.0] * 30,
                        },
                        {"name": "cold", "traffic_share": 0.8},
                    ],
                },
            ),
        },
    )
)

register(
    Scenario(
        name="fig16-xl",
        description=(
            "The Fig. 16 twitter-trace experiment scaled out to a ten-"
            "million-request day on a large fleet: the workload the sharded "
            "execution mode exists for.  Sequential runs take on the order "
            "of an hour; `--shards 8` partitions it across shard processes "
            "behind the conservative time-window barrier."
        ),
        exercises=("sharded execution", "scale-out", "long traces", "cache locality"),
        contracts=("conservation",),
        trace=TraceSpec(source="library", name="twitter"),
        # Completed requests are never replayed from an xl run; dropping the
        # per-request objects keeps a 10M-request collector at six numpy
        # columns instead of gigabytes of retained dataclasses.
        config={"num_workers": 288, "retain_completed": False},
        presets={
            "small": Preset(
                dataset_size=800,
                trace_params={
                    "duration_minutes": 16,
                    "base_qpm": 40.0,
                    "peak_qpm": 66.0,
                },
                config=SMALL_FLEET,
            ),
            # 2270 minutes x ~4411 qpm (diurnal mean of the base/peak range,
            # bursts included) ~= 10.1M requests.  288 workers hold the fleet
            # at ~0.80 utilization with zero SLO violations through the worst
            # sustained burst (~7.9k qpm), validated at 1/8 scale over the
            # full trace.
            "full": Preset(
                dataset_size=4000,
                trace_params={
                    "duration_minutes": 2270,
                    "base_qpm": 3300.0,
                    "peak_qpm": 5400.0,
                },
            ),
        },
    )
)

# --------------------------------------------------------------------- #
# Chaos family.  Each scenario composes one failure archetype with
# tenancy and is certified by the contract layer — the safety net that
# lets the catalog keep growing hostile workloads without bespoke
# verification code per scenario.
# --------------------------------------------------------------------- #
register(
    Scenario(
        name="chaos-gray-failure",
        description=(
            "Gray failures under tenancy: half the fleet degrades to a "
            "fraction of its speed mid-run (slow-not-dead, no crash signal) "
            "and later restores.  Stresses service-time-based control loops "
            "that only ever saw healthy-or-failed workers."
        ),
        exercises=("gray failures", "degraded workers", "multi-tenancy"),
        contracts=("conservation", "fairness:0.8", "cache-quota"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 90.0}),
        config={
            "tenants": [
                {"name": "alpha", "weight": 2.0, "traffic_share": 0.5},
                {"name": "beta", "weight": 1.0, "traffic_share": 0.5},
            ],
        },
        faults=(
            FaultEvent(
                fail_at_minute=12.0,
                recover_at_minute=30.0,
                fleet_fraction=0.5,
                degrade_factor=0.4,
            ),
        ),
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 16, "qpm": 48.0},
                config=SMALL_FLEET,
                faults=(
                    FaultEvent(
                        fail_at_minute=4.0,
                        recover_at_minute=11.0,
                        fleet_fraction=0.5,
                        degrade_factor=0.4,
                    ),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 50}),
        },
    )
)

register(
    Scenario(
        name="chaos-correlated-failure",
        description=(
            "An AZ-style correlated outage: half the fleet crashes at the "
            "same instant (no staggering to hide behind) while a surviving "
            "worker gray-degrades, then everything recovers at once.  The "
            "requeue cascade and re-allocation absorb a step loss of "
            "capacity instead of fault-storm's gentle waves."
        ),
        exercises=("correlated failures", "simultaneous crash", "multi-tenancy"),
        contracts=("conservation", "fairness:0.85", "cache-quota"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 80.0}),
        config={
            "tenants": [
                {"name": "alpha", "weight": 1.0, "traffic_share": 0.5},
                {"name": "beta", "weight": 1.0, "traffic_share": 0.5},
            ],
        },
        faults=(
            FaultEvent(fail_at_minute=14.0, recover_at_minute=26.0, fleet_fraction=0.5),
            FaultEvent(
                fail_at_minute=14.0,
                recover_at_minute=26.0,
                worker_id=7,
                degrade_factor=0.5,
            ),
        ),
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={"duration_minutes": 16, "qpm": 40.0},
                config=SMALL_FLEET,
                faults=(
                    FaultEvent(
                        fail_at_minute=5.0, recover_at_minute=11.0, fleet_fraction=0.5
                    ),
                    FaultEvent(
                        fail_at_minute=5.0,
                        recover_at_minute=11.0,
                        worker_id=3,
                        degrade_factor=0.5,
                    ),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 50}),
        },
    )
)

register(
    Scenario(
        name="chaos-cache-partition",
        description=(
            "A flapping cache-network partition between quota-bounded "
            "tenants: congestion, a full partition, a brief heal, then a "
            "second partition.  Retrieval monitoring must abandon the cache "
            "twice and re-probe its way back without double-counting any "
            "tenant's quota."
        ),
        exercises=("cache partition", "strategy switching", "multi-tenancy", "quotas"),
        contracts=("conservation", "cache-quota", "fairness:0.9"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 110.0}),
        config={
            "retrieval_violations_to_switch": 10,
            "tenants": [
                {"name": "alpha", "weight": 1.0, "traffic_share": 0.5, "cache_quota": 400},
                {"name": "beta", "weight": 1.0, "traffic_share": 0.5, "cache_quota": 200},
            ],
        },
        network=(
            NetworkWindow(start_minute=10.0, end_minute=16.0, condition="congested"),
            NetworkWindow(start_minute=16.0, end_minute=24.0, condition="outage"),
            NetworkWindow(start_minute=28.0, end_minute=34.0, condition="outage"),
        ),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 22, "qpm": 55.0},
                config={**SMALL_FLEET, "retrieval_violations_to_switch": 6},
                network=(
                    NetworkWindow(start_minute=5.0, end_minute=8.0, condition="congested"),
                    NetworkWindow(start_minute=8.0, end_minute=12.0, condition="outage"),
                    NetworkWindow(start_minute=14.0, end_minute=18.0, condition="outage"),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 45}),
        },
    )
)

register(
    Scenario(
        name="chaos-admission-storm",
        description=(
            "A flash crowd lands on top of a noisy tenant's own burst: the "
            "storm tenant floods admission exactly while global load spikes, "
            "with gold and standard tenants sharing the fleet.  Full-rate "
            "admission plus per-tenant worker queues must keep the SLO-class "
            "ordering intact through the worst minutes."
        ),
        exercises=("admission storm", "flash crowd", "noisy tenant", "SLO classes"),
        contracts=("conservation", "slo-ordering", "cache-quota"),
        trace=TraceSpec(source="shape", name="flash-crowd"),
        config={
            "admission_rate_factor": 1.0,
            "tenant_priority_queues": True,
            "tenants": [
                {
                    "name": "gold",
                    "weight": 3.0,
                    "traffic_share": 0.3,
                    "slo_class": "gold",
                },
                {"name": "standard", "weight": 2.0, "traffic_share": 0.3},
                {
                    "name": "storm",
                    "weight": 1.0,
                    "traffic_share": 0.4,
                    "slo_class": "best-effort",
                    "extra_qpm": [0.0] * 20 + [260.0] * 10 + [0.0] * 30,
                },
            ],
        },
        presets={
            "small": Preset(
                dataset_size=600,
                trace_params={
                    "duration_minutes": 18,
                    "base_qpm": 30.0,
                    "spike_start_minute": 6,
                    "spike_minutes": 4,
                    "spike_multiplier": 2.0,
                    "decay_minutes": 2,
                },
                config={
                    **SMALL_FLEET,
                    "tenants": [
                        {
                            "name": "gold",
                            "weight": 3.0,
                            "traffic_share": 0.3,
                            "slo_class": "gold",
                        },
                        {"name": "standard", "weight": 2.0, "traffic_share": 0.3},
                        {
                            "name": "storm",
                            "weight": 1.0,
                            "traffic_share": 0.4,
                            "slo_class": "best-effort",
                            "extra_qpm": [0.0] * 6 + [110.0] * 4 + [0.0] * 8,
                        },
                    ],
                },
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 60,
                    "base_qpm": 90.0,
                    "spike_start_minute": 20,
                    "spike_minutes": 10,
                    "spike_multiplier": 2.5,
                    "decay_minutes": 5,
                },
            ),
        },
    )
)

register(
    Scenario(
        name="chaos-eviction-storm",
        description=(
            "Cache eviction churn: tenant quotas far below the live prompt "
            "population keep both namespaces in constant LRU eviction, so "
            "retrieval quality rides on what survives the churn.  Certifies "
            "the quota bound holds under maximum eviction pressure."
        ),
        exercises=("eviction churn", "cache quotas", "multi-tenancy", "LRU pressure"),
        contracts=("conservation", "cache-quota", "fairness:0.9"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 100.0}),
        config={
            "tenants": [
                {"name": "alpha", "weight": 1.0, "traffic_share": 0.5, "cache_quota": 80},
                {"name": "beta", "weight": 1.0, "traffic_share": 0.5, "cache_quota": 40},
            ],
        },
        presets={
            # The dataset outsizes the quota by >10x so fresh prompts keep
            # arriving and the stores never stop evicting.
            "small": Preset(
                dataset_size=1500,
                trace_params={"duration_minutes": 14, "qpm": 50.0},
                config=SMALL_FLEET,
            ),
            "full": Preset(dataset_size=5000, trace_params={"duration_minutes": 60}),
        },
    )
)

register(
    Scenario(
        name="cache-node-failure",
        description=(
            "One cache node of a three-shard replicated tier goes dark "
            "mid-run: lookups owned by the dead node must fail over to its "
            "bounded-staleness replica, and the per-shard ledgers must still "
            "reconcile with the gateway-visible hit counters when it returns."
        ),
        exercises=("cache tier", "node failure", "replica failover", "sharding"),
        contracts=("conservation", "cache-tier"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 100.0}),
        config={
            "cache_shards": 3,
            "cache_replication": 1,
            "cache_replication_lag_s": 20.0,
        },
        network=(
            NetworkWindow(
                start_minute=15.0, end_minute=25.0, condition="outage", node=0
            ),
        ),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 14, "qpm": 50.0},
                config=SMALL_FLEET,
                network=(
                    NetworkWindow(
                        start_minute=5.0, end_minute=9.0, condition="outage", node=0
                    ),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 45}),
        },
    )
)

register(
    Scenario(
        name="cache-shard-rebalance",
        description=(
            "A new cache node joins a loaded two-shard tier mid-run: the "
            "consistent-hash ring reassigns a bounded slice of keys, entries "
            "migrate in global insertion order, and retrieval must keep "
            "hitting through the move with no entry lost or double-owned."
        ),
        exercises=("cache tier", "ring rebalance", "live migration", "sharding"),
        contracts=("conservation", "cache-tier"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 110.0}),
        config={
            "cache_shards": 2,
            "cache_replication": 1,
        },
        cache_events=(CacheEvent(at_minute=20.0, action="add_node"),),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 14, "qpm": 55.0},
                config=SMALL_FLEET,
                cache_events=(CacheEvent(at_minute=6.0, action="add_node"),),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 45}),
        },
    )
)

register(
    Scenario(
        name="cache-hot-shard",
        description=(
            "A flash crowd concentrates lookups on one shard of a "
            "three-node, replication-2 tier: once the owner's fetch rate "
            "crosses the hot-shard threshold, reads spill to bounded-stale "
            "replicas and the replica-read ledger must absorb the crowd "
            "without breaking shard accounting."
        ),
        exercises=("cache tier", "hot shard", "replica reads", "flash crowd"),
        contracts=("conservation", "cache-tier"),
        trace=TraceSpec(source="shape", name="flash-crowd"),
        config={
            "cache_shards": 3,
            "cache_replication": 2,
            "cache_hot_shard_threshold": 60,
        },
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={
                    "duration_minutes": 18,
                    "base_qpm": 35.0,
                    "spike_start_minute": 6,
                    "spike_minutes": 5,
                    "spike_multiplier": 3.0,
                    "decay_minutes": 3,
                },
                config={**SMALL_FLEET, "cache_hot_shard_threshold": 10},
            ),
            "full": Preset(
                dataset_size=3000,
                trace_params={
                    "duration_minutes": 60,
                    "base_qpm": 70.0,
                    "spike_start_minute": 20,
                    "spike_minutes": 10,
                    "spike_multiplier": 3.0,
                },
            ),
        },
    )
)

register(
    Scenario(
        name="chaos-cache-poison",
        description=(
            "A quarter of the stored cache entries are silently corrupted "
            "mid-run: every poisoned entry must be caught by the checksum "
            "recomputed on retrieval, deleted tier-wide, and served to no "
            "request — the cache-poison:0 contract certifies zero corrupted "
            "states ever reach a worker."
        ),
        exercises=("cache tier", "poisoning", "checksum detection", "chaos"),
        contracts=("conservation", "cache-tier", "cache-poison:0"),
        trace=TraceSpec(source="library", name="constant", params={"qpm": 100.0}),
        config={
            "cache_shards": 2,
            "cache_replication": 1,
        },
        cache_events=(
            CacheEvent(at_minute=20.0, action="poison", fraction=0.25, seed=7),
        ),
        presets={
            "small": Preset(
                dataset_size=700,
                trace_params={"duration_minutes": 14, "qpm": 50.0},
                config=SMALL_FLEET,
                cache_events=(
                    CacheEvent(at_minute=6.0, action="poison", fraction=0.25, seed=7),
                ),
            ),
            "full": Preset(dataset_size=3000, trace_params={"duration_minutes": 45}),
        },
    )
)
