"""Materialise and run declarative scenarios.

This is the only place scenario specs meet the serving stack: it builds the
trace, the system, the (possibly drifting) request stream, schedules fault
and network timelines on the simulation engine, delegates the run to
:class:`~repro.experiments.runner.ExperimentRunner` and wraps the outcome
in a scenario-tagged report.

The construction order deliberately mirrors a hand-wired
``ExperimentRunner`` call: a scenario without faults / drift / network
schedules produces a bit-identical :class:`~repro.metrics.report.RunSummary`
to the equivalent manual wiring (pinned by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.network import NetworkCondition
from repro.core.base import BaseServingSystem
from repro.core.config import ArgusConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner, build_system
from repro.metrics.report import ScenarioReport
from repro.prompts.dataset import PromptDataset
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import Preset, Scenario
from repro.workloads.replay import PhasedRequestStream, RequestStream
from repro.workloads.tenants import _TENANT_SEED_STRIDE, MultiTenantRequestStream
from repro.workloads.traces import WorkloadTrace


@dataclass
class ScenarioRun:
    """Outcome of one scenario run: the result plus everything that made it."""

    scenario: Scenario
    preset_name: str
    seed: int
    trace: WorkloadTrace
    config: ArgusConfig
    system: BaseServingSystem
    result: ExperimentResult
    extras: dict = field(default_factory=dict)

    @property
    def summary(self):
        """The run's :class:`~repro.metrics.report.RunSummary`."""
        return self.result.summary

    def report(self) -> ScenarioReport:
        """Scenario-tagged JSON-ready report."""
        return ScenarioReport(
            scenario=self.scenario.name,
            preset=self.preset_name,
            seed=self.seed,
            system=self.result.system,
            workload=self.result.workload,
            summary=self.result.summary,
            minutes=ScenarioReport.minute_rows(self.result.minute_series),
            extras=self.extras,
        )


def build_config(
    scenario: Scenario, preset: Preset, seed: int, extra: dict | None = None
) -> ArgusConfig:
    """Merge scenario- and preset-level overrides into a fresh config.

    ``extra`` overrides win over both (the shard runner uses this to give
    each shard its fleet slice without editing the scenario spec).
    """
    overrides = {**scenario.config, **preset.config, **(extra or {})}
    overrides["seed"] = int(seed)
    return ArgusConfig(**overrides)


def build_stream(
    scenario: Scenario,
    preset: Preset,
    config: ArgusConfig,
    trace: WorkloadTrace,
    seed: int,
) -> RequestStream:
    """Build the scenario's full request stream over ``trace``.

    This is the single source of truth for all three workload shapes —
    multi-tenant, plain and drifting — with the exact dataset/arrival seed
    derivations the runner has always used (tenant ``i`` draws arrivals at
    ``seed + 2 + 7919 * i`` and prompts at ``seed + 1 + 7919 * i``; the plain
    stream is ``seed + 2`` arrivals over a ``seed + 1`` dataset).  Shard
    processes rebuild this same full stream and filter it, which is what
    keeps a partitioned run's arrival sequence identical to the sequential
    one's.
    """
    _, drift, _ = scenario.schedule(preset)
    if config.tenants:
        # One dataset per tenant (distinct generator seeds, so tenants have
        # distinct working sets); tenant 0 keeps the plain runner's dataset
        # seed, which makes the single-default-tenant run bit-identical.
        bias = drift[0].complexity_bias if drift else 0.0
        datasets = {
            spec.name: PromptDataset.synthetic(
                count=preset.dataset_size,
                seed=seed + 1 + _TENANT_SEED_STRIDE * index,
                complexity_bias=bias,
            )
            for index, spec in enumerate(config.tenants)
        }
        # Drift × tenancy: every tenant's mix moves through the same phase
        # schedule, each drawing from its own per-phase datasets.  Phase 0
        # keeps the tenant's plain dataset seed (the +1000-per-phase stride
        # matches the single-tenant PhasedRequestStream derivation), so a
        # drift-free schedule is bit-identical to the undrifted stream.
        phases = None
        if len(drift) > 1:
            phases = {
                spec.name: tuple(
                    (
                        phase.start_minute * 60.0,
                        PromptDataset.synthetic(
                            count=preset.dataset_size,
                            seed=seed + 1 + _TENANT_SEED_STRIDE * index + 1000 * phase_index,
                            complexity_bias=phase.complexity_bias,
                        ),
                    )
                    for phase_index, phase in enumerate(drift)
                )
                for index, spec in enumerate(config.tenants)
            }
        return MultiTenantRequestStream(
            trace=trace,
            tenants=config.tenants,
            datasets=datasets,
            seed=seed + 2,
            arrival_kind=scenario.arrival_kind,
            phases=phases,
        )
    if len(drift) <= 1:
        bias = drift[0].complexity_bias if drift else 0.0
        dataset = PromptDataset.synthetic(
            count=preset.dataset_size, seed=seed + 1, complexity_bias=bias
        )
        return RequestStream(
            trace=trace, dataset=dataset, seed=seed + 2, arrival_kind=scenario.arrival_kind
        )
    # One dataset per phase.  Each phase needs its own generator seed:
    # prompt quality is keyed on the prompt *text*, so re-biasing the
    # same seed would produce prompts that score identically to the
    # originals and the drift would be invisible to the detector.
    phases = [
        (
            phase.start_minute * 60.0,
            PromptDataset.synthetic(
                count=preset.dataset_size,
                seed=seed + 1 + 1000 * index,
                complexity_bias=phase.complexity_bias,
            ),
        )
        for index, phase in enumerate(drift)
    ]
    return PhasedRequestStream(
        trace=trace, phases=phases, seed=seed + 2, arrival_kind=scenario.arrival_kind
    )


def _apply_schedules(system: BaseServingSystem, scenario: Scenario, preset: Preset) -> None:
    """Install fault and network timelines on a freshly built system."""
    faults, _, network = scenario.schedule(preset)
    for event in faults:
        for worker_id in event.worker_ids(system.config.num_workers):
            recover_at = (
                None if event.recover_at_minute is None else event.recover_at_minute * 60.0
            )
            if event.degrade_factor is not None:
                system.cluster.schedule_degradation(
                    worker_id,
                    event.degrade_factor,
                    degrade_at_s=event.fail_at_minute * 60.0,
                    restore_at_s=recover_at,
                )
            else:
                system.cluster.schedule_failure(
                    worker_id, fail_at_s=event.fail_at_minute * 60.0, recover_at_s=recover_at
                )
    for window in network:
        if window.node is not None:
            if system.cache is None or not hasattr(system.cache, "schedule_node_condition"):
                raise ValueError(
                    f"network window targets cache node {window.node}, but the run "
                    "has no cache tier (set cache_shards >= 2 or cache_replication)"
                )
            system.cache.schedule_node_condition(
                window.node,
                window.start_minute * 60.0,
                window.end_minute * 60.0,
                NetworkCondition(window.condition),
            )
            continue
        system.network.schedule_condition(
            window.start_minute * 60.0,
            window.end_minute * 60.0,
            NetworkCondition(window.condition),
        )
    cache_events = scenario.cache_schedule(preset)
    if cache_events and (
        system.cache is None or not hasattr(system.cache, "add_node")
    ):
        raise ValueError(
            f"scenario {scenario.name!r} schedules cache events, but the run has "
            "no cache tier (set cache_shards >= 2 or cache_replication)"
        )
    for event in cache_events:
        at_s = event.at_minute * 60.0
        cache = system.cache
        if event.action == "add_node":
            system.engine.schedule_at(
                at_s,
                lambda _e, c=cache: c.add_node(now_s=_e.now),
                name="cache-add-node",
            )
        elif event.action == "remove_node":
            system.engine.schedule_at(
                at_s,
                lambda _e, c=cache, node=event.node: c.remove_node(node, now_s=_e.now),
                name=f"cache-remove-node-{event.node}",
            )
        else:  # poison
            system.engine.schedule_at(
                at_s,
                lambda _e, c=cache, f=event.fraction, s=event.seed: c.poison(f, seed=s),
                name="cache-poison",
            )


def _collect_extras(system: BaseServingSystem, result: ExperimentResult) -> dict:
    """System-specific observations worth tagging onto the report."""
    extras: dict = {
        "cache_hit_rate": result.extras.get("cache_hit_rate"),
        "total_requests": result.extras.get("total_requests"),
    }
    # Conservation inputs (contracts): requests still in flight at the end
    # of the run, split by where they are parked.  Worker queues include
    # draining/failed workers' outstanding work, not just the healthy set.
    admission = getattr(system, "admission", None)
    extras["outstanding"] = {
        "worker_queues": sum(w.outstanding for w in system.cluster.workers),
        "admission_backlog": admission.backlog() if admission is not None else 0,
    }
    if system.cache is not None:
        extras["retrieval_hit_rate"] = system.cache.retrieval_hit_rate
        extras["retrieval_attempts"] = system.cache.retrieval_attempts
        if hasattr(system.cache, "tier_stats"):
            extras["cache_tier"] = system.cache.tier_stats()
            scheduler = getattr(system, "scheduler", None)
            if scheduler is not None and hasattr(scheduler, "affinity_routed"):
                extras["cache_tier"]["affinity_routed"] = scheduler.affinity_routed
        if system.config.tenants:
            extras["cache_tenants"] = {
                spec.name: {
                    "entries": system.cache.tenant_entries(spec.name),
                    "quota": spec.cache_quota,
                }
                for spec in system.config.tenants
            }
    if hasattr(system, "num_strategy_switches"):
        extras["strategy_switches"] = system.num_strategy_switches()
    if hasattr(system, "retraining_events"):
        extras["retraining_events"] = system.retraining_events
    if hasattr(system, "drift_events"):
        extras["drift_events"] = system.drift_events()
    if system.config.autoscale_enabled:
        extras["fleet_budget"] = {
            "min_workers": system.config.effective_min_workers,
            "max_workers": system.config.effective_max_workers,
        }
    if system.config.tenants:
        extras["fair_share_index"] = result.summary.fair_share_index
        admission = getattr(system, "admission", None)
        if admission is not None:
            extras["admission"] = {
                name: {
                    "offered": stats.offered,
                    "delayed": stats.delayed,
                    "mean_wait_s": stats.mean_wait_s,
                    "max_wait_s": stats.max_wait_s,
                    # Always 0 sequentially; sharded runs report migrations
                    # here, so the report shape is uniform across modes.
                    "stolen": stats.stolen,
                }
                for name, stats in admission.stats.items()
            }
    autoscaler = getattr(system, "autoscaler", None)
    if autoscaler is not None:
        extras["autoscale_events"] = [
            {
                "time_s": event.time_s,
                "action": event.action,
                "delta": event.delta,
                "fleet_size": event.fleet_size,
                "reason": event.reason,
            }
            for event in autoscaler.events
        ]
    return extras


def run_scenario(
    scenario: Scenario | str,
    preset: str = "full",
    seed: int | None = None,
    system: str | None = None,
    shards: int | None = None,
    sync_window_s: float | None = None,
) -> ScenarioRun:
    """Run a scenario (instance or registered name) under a preset.

    ``seed`` defaults to the scenario's ``default_seed`` and drives every
    stochastic component — same (scenario, preset, seed) means a
    bit-identical run.  ``system`` overrides the scenario's serving system
    (any :func:`~repro.experiments.runner.build_system` name), e.g. to run
    the same workload through a baseline.  ``shards`` / ``sync_window_s``
    override the config's sharding knobs; any effective ``shards > 1``
    delegates to :func:`repro.simulation.shard.run_scenario_sharded`
    (``shards=1`` always takes this sequential path, bit-for-bit).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    preset_name = preset
    preset_spec = scenario.preset(preset_name)
    if seed is None:
        seed = scenario.default_seed
    seed = int(seed)

    extra: dict = {}
    if shards is not None:
        extra["shards"] = int(shards)
    if sync_window_s is not None:
        extra["sync_window_s"] = float(sync_window_s)
    config = build_config(scenario, preset_spec, seed, extra=extra)
    if config.shards > 1:
        # Local import: the shard coordinator drives this module, not vice versa.
        from repro.simulation.shard import run_scenario_sharded

        return run_scenario_sharded(
            scenario,
            preset=preset_name,
            seed=seed,
            system=system,
            shards=config.shards,
            sync_window_s=config.sync_window_s,
        )
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    serving = build_system(system or scenario.system, config=config)
    _apply_schedules(serving, scenario, preset_spec)

    runner = ExperimentRunner(
        seed=seed, dataset_size=preset_spec.dataset_size, drain_s=preset_spec.drain_s
    )
    stream = build_stream(scenario, preset_spec, config, trace, seed)
    result = runner.run(serving, trace, stream=stream)

    return ScenarioRun(
        scenario=scenario,
        preset_name=preset_name,
        seed=seed,
        trace=trace,
        config=config,
        system=serving,
        result=result,
        extras=_collect_extras(serving, result),
    )
