"""Materialise and run declarative scenarios.

This is the only place scenario specs meet the serving stack: it builds the
trace, the system, the (possibly drifting) request stream, schedules fault
and network timelines on the simulation engine, delegates the run to
:class:`~repro.experiments.runner.ExperimentRunner` and wraps the outcome
in a scenario-tagged report.

The construction order deliberately mirrors a hand-wired
``ExperimentRunner`` call: a scenario without faults / drift / network
schedules produces a bit-identical :class:`~repro.metrics.report.RunSummary`
to the equivalent manual wiring (pinned by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.network import NetworkCondition
from repro.core.base import BaseServingSystem
from repro.core.config import ArgusConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner, build_system
from repro.metrics.report import ScenarioReport
from repro.prompts.dataset import PromptDataset
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import Preset, Scenario
from repro.workloads.replay import PhasedRequestStream
from repro.workloads.tenants import _TENANT_SEED_STRIDE, MultiTenantRequestStream
from repro.workloads.traces import WorkloadTrace


@dataclass
class ScenarioRun:
    """Outcome of one scenario run: the result plus everything that made it."""

    scenario: Scenario
    preset_name: str
    seed: int
    trace: WorkloadTrace
    config: ArgusConfig
    system: BaseServingSystem
    result: ExperimentResult
    extras: dict = field(default_factory=dict)

    @property
    def summary(self):
        """The run's :class:`~repro.metrics.report.RunSummary`."""
        return self.result.summary

    def report(self) -> ScenarioReport:
        """Scenario-tagged JSON-ready report."""
        return ScenarioReport(
            scenario=self.scenario.name,
            preset=self.preset_name,
            seed=self.seed,
            system=self.result.system,
            workload=self.result.workload,
            summary=self.result.summary,
            minutes=ScenarioReport.minute_rows(self.result.minute_series),
            extras=self.extras,
        )


def build_config(scenario: Scenario, preset: Preset, seed: int) -> ArgusConfig:
    """Merge scenario- and preset-level overrides into a fresh config."""
    overrides = {**scenario.config, **preset.config}
    overrides["seed"] = int(seed)
    return ArgusConfig(**overrides)


def _apply_schedules(system: BaseServingSystem, scenario: Scenario, preset: Preset) -> None:
    """Install fault and network timelines on a freshly built system."""
    faults, _, network = scenario.schedule(preset)
    for event in faults:
        for worker_id in event.worker_ids(system.config.num_workers):
            recover_at = (
                None if event.recover_at_minute is None else event.recover_at_minute * 60.0
            )
            system.cluster.schedule_failure(
                worker_id, fail_at_s=event.fail_at_minute * 60.0, recover_at_s=recover_at
            )
    for window in network:
        system.network.schedule_condition(
            window.start_minute * 60.0,
            window.end_minute * 60.0,
            NetworkCondition(window.condition),
        )


def _collect_extras(system: BaseServingSystem, result: ExperimentResult) -> dict:
    """System-specific observations worth tagging onto the report."""
    extras: dict = {
        "cache_hit_rate": result.extras.get("cache_hit_rate"),
        "total_requests": result.extras.get("total_requests"),
    }
    if system.cache is not None:
        extras["retrieval_hit_rate"] = system.cache.retrieval_hit_rate
        extras["retrieval_attempts"] = system.cache.retrieval_attempts
    if hasattr(system, "num_strategy_switches"):
        extras["strategy_switches"] = system.num_strategy_switches()
    if hasattr(system, "retraining_events"):
        extras["retraining_events"] = system.retraining_events
    if system.config.tenants:
        extras["fair_share_index"] = result.summary.fair_share_index
        admission = getattr(system, "admission", None)
        if admission is not None:
            extras["admission"] = {
                name: {
                    "offered": stats.offered,
                    "delayed": stats.delayed,
                    "mean_wait_s": stats.mean_wait_s,
                    "max_wait_s": stats.max_wait_s,
                }
                for name, stats in admission.stats.items()
            }
    autoscaler = getattr(system, "autoscaler", None)
    if autoscaler is not None:
        extras["autoscale_events"] = [
            {
                "time_s": event.time_s,
                "action": event.action,
                "delta": event.delta,
                "fleet_size": event.fleet_size,
                "reason": event.reason,
            }
            for event in autoscaler.events
        ]
    return extras


def run_scenario(
    scenario: Scenario | str,
    preset: str = "full",
    seed: int | None = None,
    system: str | None = None,
) -> ScenarioRun:
    """Run a scenario (instance or registered name) under a preset.

    ``seed`` defaults to the scenario's ``default_seed`` and drives every
    stochastic component — same (scenario, preset, seed) means a
    bit-identical run.  ``system`` overrides the scenario's serving system
    (any :func:`~repro.experiments.runner.build_system` name), e.g. to run
    the same workload through a baseline.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    preset_name = preset
    preset_spec = scenario.preset(preset_name)
    if seed is None:
        seed = scenario.default_seed
    seed = int(seed)

    config = build_config(scenario, preset_spec, seed)
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    serving = build_system(system or scenario.system, config=config)
    _apply_schedules(serving, scenario, preset_spec)

    runner = ExperimentRunner(
        seed=seed, dataset_size=preset_spec.dataset_size, drain_s=preset_spec.drain_s
    )
    _, drift, _ = scenario.schedule(preset_spec)
    if config.tenants:
        if len(drift) > 1:
            raise ValueError("multi-tenant scenarios cannot also define drift phases")
        # One dataset per tenant (distinct generator seeds, so tenants have
        # distinct working sets); tenant 0 keeps the plain runner's dataset
        # seed, which makes the single-default-tenant run bit-identical.
        bias = drift[0].complexity_bias if drift else 0.0
        datasets = {
            spec.name: PromptDataset.synthetic(
                count=preset_spec.dataset_size,
                seed=seed + 1 + _TENANT_SEED_STRIDE * index,
                complexity_bias=bias,
            )
            for index, spec in enumerate(config.tenants)
        }
        stream = MultiTenantRequestStream(
            trace=trace,
            tenants=config.tenants,
            datasets=datasets,
            seed=seed + 2,
            arrival_kind=scenario.arrival_kind,
        )
        result = runner.run(serving, trace, stream=stream)
    elif len(drift) <= 1:
        bias = drift[0].complexity_bias if drift else 0.0
        dataset = runner.make_dataset(complexity_bias=bias)
        result = runner.run(serving, trace, dataset=dataset, arrival_kind=scenario.arrival_kind)
    else:
        # One dataset per phase.  Each phase needs its own generator seed:
        # prompt quality is keyed on the prompt *text*, so re-biasing the
        # same seed would produce prompts that score identically to the
        # originals and the drift would be invisible to the detector.
        phases = [
            (
                phase.start_minute * 60.0,
                PromptDataset.synthetic(
                    count=preset_spec.dataset_size,
                    seed=seed + 1 + 1000 * index,
                    complexity_bias=phase.complexity_bias,
                ),
            )
            for index, phase in enumerate(drift)
        ]
        stream = PhasedRequestStream(
            trace=trace, phases=phases, seed=seed + 2, arrival_kind=scenario.arrival_kind
        )
        result = runner.run(serving, trace, stream=stream)

    return ScenarioRun(
        scenario=scenario,
        preset_name=preset_name,
        seed=seed,
        trace=trace,
        config=config,
        system=serving,
        result=result,
        extras=_collect_extras(serving, result),
    )
