"""Scenario certification: invariant contracts verified from run reports.

Every registered scenario declares a non-empty set of *contracts* — named
invariants that must hold in its report — and the registry rejects
scenarios that declare none or misspell one.  A contract is a pure
function of the report **dict** (the exact JSON shape ``python -m repro
run --output`` writes), so the same checks run against a live
:class:`~repro.scenarios.runtime.ScenarioRun`, a sharded merge, or a
report re-loaded from disk, and CI can certify artifacts it did not
produce.

Vocabulary (``Scenario.contracts`` entries; ``fairness`` takes an optional
``:bound`` parameter):

- ``conservation`` — offered = served + rejected + in-flight-at-end,
  where in-flight splits into worker queues (including draining/failed
  workers' outstanding batches) and the admission backlog.
- ``fairness:BOUND`` — Jain's fairness index over weight-normalised
  per-tenant served throughput is at least ``BOUND`` (default 0.8).
- ``slo-ordering:TOL`` — tenants' violation ratios (each against its *own*
  budget) order by SLO class: gold <= standard <= best-effort, up to a
  slack of ``TOL`` (default 0.02) per step.  The slack matters because a
  tighter class is graded against a tighter budget: near-zero ratios can
  invert by sampling noise without any routing misbehaviour.
- ``cache-quota`` — no tenant's cache namespace ever reports more entries
  than its configured quota.
- ``fleet-budget`` — the fleet never exceeds the autoscaler's max budget
  and no scale-in leaves it below the min budget.
- ``ledger-matches-fleet`` — in brokered sharded runs the coordinator's
  committed-worker ledger equals active + provisioning + failed workers
  at every non-epoch barrier, and stays inside the global budget at all
  barriers.  (Epoch barriers record the post-grant ledger against the
  pre-apply fleet, so only the bounds apply there.)
- ``cache-tier`` — the distributed cache tier's per-shard accounting is
  conserved: shard lookups never exceed retrieval attempts, shard hits
  equal the retrieval hits, and the per-shard entry counts sum to the
  tier's total.
- ``cache-poison:BOUND`` — at most ``BOUND`` poisoned entries were ever
  *served* (default 0: the retrieval-path checksum must catch every
  corrupted entry), and every poisoned entry is either still stored or
  was detected and dropped.

A contract whose inputs are absent from the report (e.g. ``fairness`` on
a single-tenant run, ``ledger-matches-fleet`` sequentially) passes
*vacuously* — composition stays cheap, and :class:`ContractResult` keeps
the distinction visible.

The metamorphic checks at the bottom are contracts over *pairs* of runs:
they derive a transformed scenario, run both, and compare reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.scenarios.spec import Scenario

#: SLO classes from tightest to loosest budget; ``slo-ordering`` verifies
#: violation ratios are non-decreasing along this order.
SLO_CLASS_ORDER = ("gold", "standard", "best-effort")


@dataclass(frozen=True)
class ContractResult:
    """Outcome of one contract check against one report."""

    #: The declared contract string, parameter included (``"fairness:0.9"``).
    contract: str
    passed: bool
    #: True when the contract passed only because its inputs are absent.
    vacuous: bool = False
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.passed else "VIOLATED"
        if self.passed and self.vacuous:
            status = "ok (vacuous)"
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.contract} {status}{suffix}"


def _ok(contract: str, detail: str = "") -> ContractResult:
    return ContractResult(contract=contract, passed=True, detail=detail)


def _vacuous(contract: str, detail: str) -> ContractResult:
    return ContractResult(contract=contract, passed=True, vacuous=True, detail=detail)


def _fail(contract: str, detail: str) -> ContractResult:
    return ContractResult(contract=contract, passed=False, detail=detail)


# --------------------------------------------------------------------------- #
# Checks (each: (contract string, report dict, param) -> ContractResult)
# --------------------------------------------------------------------------- #


def _check_conservation(contract: str, report: dict, param: float | None) -> ContractResult:
    summary = report["summary"]
    outstanding = report.get("extras", {}).get("outstanding")
    if outstanding is None:
        return _vacuous(contract, "report carries no outstanding-request accounting")
    offered = summary["total_arrivals"]
    served = summary["total_completions"]
    rejected = summary["dropped_requests"]
    in_flight = outstanding["worker_queues"] + outstanding["admission_backlog"]
    detail = (
        f"offered {offered} vs served {served} + rejected {rejected}"
        f" + in-flight {in_flight}"
    )
    if offered == served + rejected + in_flight:
        return _ok(contract, detail)
    return _fail(contract, f"requests leaked: {detail}")


def _check_fairness(contract: str, report: dict, param: float | None) -> ContractResult:
    bound = 0.8 if param is None else param
    index = report["summary"].get("fair_share_index")
    if index is None:
        return _vacuous(contract, "single-tenant report has no fairness index")
    detail = f"fair_share_index {index:.4f} vs bound {bound:g}"
    return _ok(contract, detail) if index >= bound else _fail(contract, detail)


def _check_slo_ordering(contract: str, report: dict, param: float | None) -> ContractResult:
    tolerance = 0.02 if param is None else param
    rows = report["summary"].get("tenants") or []
    by_class: dict[str, list[float]] = {}
    for row in rows:
        by_class.setdefault(row["slo_class"], []).append(row["slo_violation_ratio"])
    present = [cls for cls in SLO_CLASS_ORDER if cls in by_class]
    if len(present) < 2:
        return _vacuous(contract, "fewer than two SLO classes in the report")
    means = {cls: sum(by_class[cls]) / len(by_class[cls]) for cls in present}
    detail = " <= ".join(f"{cls} {means[cls]:.4f}" for cls in present)
    for tighter, looser in zip(present, present[1:]):
        if means[tighter] > means[looser] + tolerance:
            return _fail(contract, f"class order inverted: {detail}")
    return _ok(contract, detail)


def _check_cache_quota(contract: str, report: dict, param: float | None) -> ContractResult:
    cache_tenants = report.get("extras", {}).get("cache_tenants")
    if not cache_tenants:
        return _vacuous(contract, "report carries no per-tenant cache accounting")
    over: dict[str, tuple[int, int]] = {}
    bounded = 0
    for name, row in cache_tenants.items():
        quota = row["quota"]
        # Sharded merges carry one entry count per shard (each shard's cache
        # enforces the quota independently); sequential and live reports
        # carry a single "entries" count.
        counts = row.get("shards") or {"": row["entries"]}
        if quota is None:
            continue
        bounded += 1
        for shard, entries in counts.items():
            if entries > quota:
                label = f"{name}@shard{shard}" if shard else name
                over[label] = (entries, quota)
    if over:
        return _fail(contract, f"namespaces over quota: {over}")
    return _ok(contract, f"{len(cache_tenants)} namespaces within quota ({bounded} bounded)")


def _check_fleet_budget(contract: str, report: dict, param: float | None) -> ContractResult:
    extras = report.get("extras", {})
    sharded = "sharding" in extras
    budget = extras.get("fleet_budget") or extras.get("sharding", {}).get("autoscale")
    if budget is None:
        return _vacuous(contract, "no fleet budget in the report (autoscaling off)")
    low, high = budget["min_workers"], budget["max_workers"]
    problems: list[str] = []
    peak = report["summary"]["fleet_peak_workers"]
    if sharded:
        # A sharded merge sums per-shard peaks, which need not be
        # simultaneous; the global bound applies to the barrier-aligned
        # fleet samples the shard merge emits (global in-fleet counts
        # observed at each synchronized barrier).
        sharding = extras["sharding"]
        aligned = sharding.get("fleet_peak_barrier_aligned")
        if aligned is None:
            samples = [
                entry["in_fleet"]
                for entry in sharding.get("barriers", ())
                if "in_fleet" in entry
            ]
            aligned = max(samples) if samples else None
        if aligned is not None:
            peak = aligned
            if aligned > high:
                problems.append(f"barrier-aligned fleet peak {aligned} > max {high}")
    elif peak > high:
        problems.append(f"fleet peak {peak} > max {high}")
    for row in report.get("minutes", ()):
        if row["fleet_workers"] > high + 1e-6:
            problems.append(
                f"minute {row['minute']}: {row['fleet_workers']:.2f} workers > max {high}"
            )
            break
    for event in extras.get("autoscale_events", ()):
        if event["action"] == "scale_out" and event["fleet_size"] > high:
            problems.append(f"scale-out at {event['time_s']:.0f}s passed max {high}")
            break
        if event["action"] == "scale_in" and event["fleet_size"] < low:
            problems.append(f"scale-in at {event['time_s']:.0f}s dropped below min {low}")
            break
    if problems:
        return _fail(contract, "; ".join(problems))
    return _ok(contract, f"fleet stayed within [{low}, {high}] (peak {peak})")


def _check_ledger_matches_fleet(
    contract: str, report: dict, param: float | None
) -> ContractResult:
    sharding = report.get("extras", {}).get("sharding")
    autoscale = (sharding or {}).get("autoscale")
    if autoscale is None:
        return _vacuous(contract, "no budget-broker ledger in the report")
    low, high = autoscale["min_workers"], autoscale["max_workers"]
    checked = 0
    for entry in sharding.get("barriers", ()):
        committed = entry.get("committed_workers")
        if committed is None:
            continue
        if not low <= committed <= high:
            return _fail(
                contract,
                f"barrier {entry['window_end_s']:.0f}s: ledger {committed}"
                f" outside budget [{low}, {high}]",
            )
        if not entry["epoch"]:
            live = entry["in_fleet"] + entry["failed_workers"]
            if committed != live:
                return _fail(
                    contract,
                    f"barrier {entry['window_end_s']:.0f}s: ledger {committed}"
                    f" != live fleet {live}"
                    f" ({entry['in_fleet']} in fleet + {entry['failed_workers']} failed)",
                )
            checked += 1
    return _ok(contract, f"ledger matched the live fleet at {checked} barriers")


def _check_cache_tier(contract: str, report: dict, param: float | None) -> ContractResult:
    extras = report.get("extras", {})
    tier = extras.get("cache_tier")
    if tier is None:
        return _vacuous(contract, "report carries no cache-tier accounting")
    attempts = extras.get("retrieval_attempts") or 0
    hit_rate = extras.get("retrieval_hit_rate") or 0.0
    per_shard = tier.get("per_shard", {})
    lookups = sum(row["lookups"] for row in per_shard.values())
    hits = sum(row["hits"] for row in per_shard.values())
    problems: list[str] = []
    if lookups > attempts:
        problems.append(f"shard lookups {lookups} exceed retrieval attempts {attempts}")
    # Retrieval hits are attributed to exactly one answering shard each.
    expected_hits = hit_rate * attempts
    if abs(hits - expected_hits) > 0.5:
        problems.append(
            f"shard hits {hits} != retrieval hits {expected_hits:.1f}"
        )
    live_entries = sum(
        row["entries"] for row in per_shard.values() if row.get("live", True)
    )
    if live_entries != tier.get("entries", live_entries):
        problems.append(
            f"per-shard entries {live_entries} != tier total {tier['entries']}"
        )
    if problems:
        return _fail(contract, "; ".join(problems))
    return _ok(
        contract,
        f"{tier.get('shards')} shards, {lookups} lookups / {hits} hits conserved,"
        f" {live_entries} entries placed",
    )


def _check_cache_poison(contract: str, report: dict, param: float | None) -> ContractResult:
    bound = 0 if param is None else int(param)
    poison = report.get("extras", {}).get("cache_tier", {}).get("poison")
    if poison is None:
        return _vacuous(contract, "report carries no cache-tier poison accounting")
    if poison["entries_poisoned"] == 0:
        return _vacuous(contract, "no entries were poisoned during the run")
    detail = (
        f"{poison['entries_poisoned']} poisoned, {poison['detected']} detected,"
        f" {poison['served']} served (bound {bound})"
    )
    if poison["served"] > bound:
        return _fail(contract, f"poisoned entries served: {detail}")
    if poison["detected"] > poison["entries_poisoned"]:
        return _fail(contract, f"detected more than were poisoned: {detail}")
    return _ok(contract, detail)


_CHECKS = {
    "conservation": _check_conservation,
    "fairness": _check_fairness,
    "slo-ordering": _check_slo_ordering,
    "cache-quota": _check_cache_quota,
    "fleet-budget": _check_fleet_budget,
    "ledger-matches-fleet": _check_ledger_matches_fleet,
    "cache-tier": _check_cache_tier,
    "cache-poison": _check_cache_poison,
}

#: Contracts that accept a ``:value`` parameter.
_PARAMETRIC = {"fairness", "slo-ordering", "cache-poison"}


def contract_names() -> list[str]:
    """All known contract names, sorted."""
    return sorted(_CHECKS)


def parse_contract(contract: str) -> tuple[str, float | None]:
    """Split ``"name"`` / ``"name:param"`` and validate both parts."""
    name, sep, raw = contract.partition(":")
    if name not in _CHECKS:
        raise ValueError(f"unknown contract {name!r}; known: {contract_names()}")
    if not sep:
        return name, None
    if name not in _PARAMETRIC:
        raise ValueError(f"contract {name!r} takes no parameter (got {contract!r})")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"contract {contract!r}: parameter must be a number") from None
    if name == "fairness" and not 0.0 < value <= 1.0:
        raise ValueError(f"contract {contract!r}: fairness bound must be in (0, 1]")
    if name == "slo-ordering" and value < 0.0:
        raise ValueError(f"contract {contract!r}: tolerance must be non-negative")
    if name == "cache-poison" and value < 0.0:
        raise ValueError(f"contract {contract!r}: served bound must be non-negative")
    return name, value


def validate_contracts(contracts: tuple[str, ...]) -> None:
    """Raise ``ValueError`` on any unknown or malformed contract string."""
    for contract in contracts:
        parse_contract(contract)


def verify_report(report, contracts) -> list[ContractResult]:
    """Check every contract against a report (dict or ``ScenarioReport``)."""
    if hasattr(report, "to_dict"):
        report = report.to_dict()
    results = []
    for contract in contracts:
        name, param = parse_contract(contract)
        results.append(_CHECKS[name](contract, report, param))
    return results


def violations(results: list[ContractResult]) -> list[ContractResult]:
    """The failed subset of :func:`verify_report`'s output."""
    return [result for result in results if not result.passed]


# --------------------------------------------------------------------------- #
# Metamorphic contracts: relations between *pairs* of runs
# --------------------------------------------------------------------------- #


def _resolve(scenario) -> Scenario:
    if isinstance(scenario, str):
        # Lazy: the registry imports this module to validate declarations.
        from repro.scenarios.registry import get_scenario

        return get_scenario(scenario)
    return scenario


def _tenant_blocks(data: dict) -> list[list[dict]]:
    """Every tenant list in a scenario dict (base config + preset configs)."""
    blocks = []
    configs = [data.get("config", {})]
    configs.extend(entry.get("config") or {} for entry in data.get("presets", {}).values())
    for config in configs:
        tenants = config.get("tenants")
        if tenants:
            blocks.append(tenants)
    return blocks


def _first_diff(a, b, path: str = "report") -> str | None:
    """Human-readable first point of difference between two JSON-ish values."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key} present on one side only"
            diff = _first_diff(a[key], b[key], f"{path}.{key}")
            if diff:
                return diff
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path} lengths differ ({len(a)} vs {len(b)})"
        for index, (left, right) in enumerate(zip(a, b)):
            diff = _first_diff(left, right, f"{path}[{index}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def check_weight_scaling_noop(
    scenario, preset: str = "small", seed: int | None = None, factor: float = 2.0
) -> ContractResult:
    """Scaling every tenant's weight by one factor must be a bit-level no-op.

    Weights only ever enter the system as *ratios* (admission quanta, DRR
    credit, affinity histograms, Jain normalisation), so a uniform rescale
    must leave the report bit-identical apart from the recorded weights
    themselves.  Use a power-of-two ``factor``: those keep even the
    floating-point divisions exact, so the comparison is strict equality,
    not a tolerance.
    """
    from repro.scenarios.runtime import run_scenario

    contract = f"metamorphic:weight-scaling:{factor:g}"
    scenario = _resolve(scenario)
    data = scenario.to_dict()
    blocks = _tenant_blocks(data)
    if not blocks:
        return _vacuous(contract, f"scenario {scenario.name!r} has no tenants")
    for tenants in blocks:
        for tenant in tenants:
            tenant["weight"] = float(tenant.get("weight", 1.0)) * factor
    scaled = Scenario.from_dict(data)

    base = run_scenario(scenario, preset=preset, seed=seed).report().to_dict()
    varied = run_scenario(scaled, preset=preset, seed=seed).report().to_dict()
    for payload in (base, varied):
        for row in payload["summary"].get("tenants") or []:
            row["weight"] = None
    diff = _first_diff(base, varied)
    if diff is None:
        return _ok(contract, f"reports bit-identical with weights x{factor:g}")
    return _fail(contract, f"weight scaling changed the run: {diff}")


#: Trace-builder parameters that carry absolute request rates.
_RATE_KEYS = frozenset(
    {"qpm", "base_qpm", "peak_qpm", "start_qpm", "low_qpm", "high_qpm"}
)


def _scale_rates(params: dict, factor: float) -> None:
    for key in params:
        if key in _RATE_KEYS:
            params[key] = params[key] * factor


def check_load_fleet_scaling(
    scenario,
    preset: str = "small",
    seed: int | None = None,
    factor: int = 2,
    tolerance: float = 0.05,
) -> ContractResult:
    """Scaling arrivals and fleet together must preserve the violation ratio.

    Doubling every offered rate *and* the worker fleet (plus the autoscale
    budget and the prompt population) keeps per-worker pressure constant,
    so the SLO violation ratio should be preserved up to sampling noise —
    the runs draw different arrival sequences, hence ``tolerance`` rather
    than equality.
    """
    from repro.scenarios.runtime import build_config, run_scenario

    contract = f"metamorphic:load-fleet-scaling:{factor:g}"
    scenario = _resolve(scenario)
    preset_spec = scenario.preset(preset)
    if seed is None:
        seed = scenario.default_seed
    base_config = build_config(scenario, preset_spec, seed)

    data = scenario.to_dict()
    _scale_rates(data["trace"].get("params", {}), factor)
    preset_data = data["presets"][preset]
    _scale_rates(preset_data.get("trace_params", {}), factor)
    for tenants in _tenant_blocks(data):
        for tenant in tenants:
            if tenant.get("extra_qpm"):
                tenant["extra_qpm"] = [q * factor for q in tenant["extra_qpm"]]
    # Pin the *effective* scaled fleet onto the preset config (it wins the
    # config merge), so defaults the scenario never spelled out scale too.
    fleet = {"num_workers": int(round(base_config.num_workers * factor))}
    if base_config.autoscale_enabled:
        fleet["min_workers"] = int(round(base_config.effective_min_workers * factor))
        fleet["max_workers"] = int(round(base_config.effective_max_workers * factor))
    preset_data["config"] = {**(preset_data.get("config") or {}), **fleet}
    preset_data["dataset_size"] = int(round(preset_data["dataset_size"] * factor))
    scaled = Scenario.from_dict(copy.deepcopy(data))

    base = run_scenario(scenario, preset=preset, seed=seed)
    varied = run_scenario(scaled, preset=preset, seed=seed)
    delta = abs(base.summary.slo_violation_ratio - varied.summary.slo_violation_ratio)
    detail = (
        f"violation ratio {base.summary.slo_violation_ratio:.4f} ->"
        f" {varied.summary.slo_violation_ratio:.4f} at {factor}x scale"
        f" (delta {delta:.4f}, tolerance {tolerance:g})"
    )
    if delta <= tolerance:
        return _ok(contract, detail)
    return _fail(contract, detail)
