"""Declarative scenario engine: named, seeded, reproducible experiments.

A scenario composes a workload trace (library trace, parametric shape or
explicit replay), fleet + autoscaler configuration, fault injection,
classifier-drift phases and a cache-network timeline into one spec with
``small`` (CI) and ``full`` presets.  The registry ships the catalog; the
runtime turns a spec into a run; ``python -m repro`` is the front door.
"""

from repro.scenarios.contracts import (
    ContractResult,
    check_load_fleet_scaling,
    check_weight_scaling_noop,
    contract_names,
    verify_report,
    violations,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.scenarios.runtime import ScenarioRun, build_config, run_scenario
from repro.scenarios.spec import (
    DriftPhase,
    FaultEvent,
    NetworkWindow,
    Preset,
    Scenario,
    TraceSpec,
)

__all__ = [
    "ContractResult",
    "DriftPhase",
    "FaultEvent",
    "NetworkWindow",
    "Preset",
    "Scenario",
    "ScenarioRun",
    "TraceSpec",
    "build_config",
    "check_load_fleet_scaling",
    "check_weight_scaling_noop",
    "contract_names",
    "get_scenario",
    "list_scenarios",
    "register",
    "run_scenario",
    "scenario_names",
    "verify_report",
    "violations",
]
