"""Distributed cache tier: consistent-hash sharded, replicated vector index.

The single-process :class:`~repro.cache.approximate.ApproximateCache` keeps
one flat index per tenant; BENCH_PR3 puts its HNSW/flat crossover at ~105k
entries, so million-user caches need *sharding*, not a faster flat scan.
:class:`CacheTier` turns the cache into a service with placement semantics:

- **Placement.** Every logical entry (``tenant:prompt_id``) is owned by one
  of N :class:`CacheNode` objects, chosen on a consistent-hash ring with
  virtual nodes (:class:`HashRing`).  Placement is deterministic — it derives
  from :func:`~repro.simulation.randomness.stable_hash` only — so the same
  seed gives the same layout on every run.
- **Fan-out search.** Similarity search fans out to every *reachable* node
  and merges per-node top-k candidates with the flat index's deterministic
  tie order (similarity descending, then global insertion sequence
  ascending).  Each node keeps a bucket-contiguous coarse-quantised index:
  below a size threshold a single contiguous matrix (exactly the flat scan);
  above it, k-means-lite centroids with each cluster's rows stored as its
  own contiguous matrix, so a query is one centroid matmul plus ``nprobe``
  small contiguous matmuls instead of one O(n) scan.
- **Replication with bounded staleness.** Writes land on the owner
  immediately and on ``replication`` successor nodes after
  ``replication_lag_s``; reads fall back to replicas when the owner is
  unreachable or *hot* (fetch rate above ``hot_shard_threshold`` per
  minute), counting ``replica_reads`` and ``stale_misses``.
- **Cross-shard protocols.** Per-tenant quota eviction runs against a
  global LRU (the owner drops the entry, replicas receive a tombstone;
  tombstones older than the staleness bound are compacted), and ring
  changes (``add_node`` / ``remove_node``) migrate exactly the entries
  whose owner moved.
- **Per-node network conditions.** Every node carries its own
  :class:`~repro.cache.network.NetworkModel`, so outage/congestion windows
  can hit one shard while the rest keep serving; the tier-level model
  (``network``) represents the client side and keeps the probe/strategy-
  switch path identical to the flat cache's.

The tier implements the same surface the rest of the stack already programs
against (``retrieve`` / ``store_states`` / ``warm`` / ``probe_network`` /
hit-rate accounting), so workers, the gateway interceptor and the scenario
runtime use one code path whichever cache is installed.  ``cache_shards=1``
with replication off never builds a tier at all (see
:func:`repro.cache.build_cache`), keeping that configuration bit-identical
to the flat cache.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict, defaultdict
from dataclasses import replace

import numpy as np

from repro.cache.approximate import RetrievalOutcome
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.store import StoredState
from repro.prompts.embedding import PromptEmbedder
from repro.prompts.generator import Prompt
from repro.simulation.randomness import stable_hash


def _key_hash(key: str) -> int:
    return stable_hash(f"cache-key:{key}")


# --------------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------------- #


class HashRing:
    """Consistent-hash ring with virtual nodes and deterministic placement.

    Each node contributes ``vnodes`` points at
    ``stable_hash("cache-vnode:{node}:{i}")``; a key belongs to the first
    point clockwise from its own hash.  Adding or removing one node moves
    only the keys in the arcs that node's points cover — the property the
    rebalance protocol relies on.
    """

    def __init__(self, nodes: list[int], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[int] = set()
        self._points: list[int] = []
        self._point_nodes: list[int] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> list[int]:
        """Member node ids, sorted."""
        return sorted(self._nodes)

    def _rebuild(self) -> None:
        pairs = sorted(
            (stable_hash(f"cache-vnode:{node}:{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._point_nodes = [n for _, n in pairs]

    def add_node(self, node: int) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node} already on the ring")
        self._nodes.add(int(node))
        self._rebuild()

    def remove_node(self, node: int) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node} not on the ring")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last cache node")
        self._nodes.discard(node)
        self._rebuild()

    def owner(self, key_hash: int) -> int:
        """The node owning ``key_hash``."""
        return self.preference(key_hash, 1)[0]

    def preference(self, key_hash: int, count: int) -> list[int]:
        """First ``count`` *distinct* nodes clockwise from ``key_hash``.

        Entry 0 is the owner; the rest are its replica successors.
        """
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._points, key_hash) % len(self._points)
        found: list[int] = []
        for offset in range(len(self._points)):
            node = self._point_nodes[(start + offset) % len(self._points)]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found


# --------------------------------------------------------------------------- #
# Bucket-contiguous per-node vector index
# --------------------------------------------------------------------------- #


class _Bucket:
    """One cluster's rows as a contiguous, growable matrix."""

    __slots__ = ("matrix", "keys", "seqs", "count")

    def __init__(self, dim: int, capacity: int = 64) -> None:
        self.matrix = np.empty((capacity, dim), dtype=np.float64)
        self.keys: list[str] = []
        self.seqs: list[int] = []
        self.count = 0

    def append(self, vector: np.ndarray, key: str, seq: int) -> int:
        if self.count == len(self.matrix):
            grown = np.empty((len(self.matrix) * 2, self.matrix.shape[1]), dtype=np.float64)
            grown[: self.count] = self.matrix[: self.count]
            self.matrix = grown
        row = self.count
        self.matrix[row] = vector
        self.keys.append(key)
        self.seqs.append(seq)
        self.count += 1
        return row

    def swap_remove(self, row: int) -> str | None:
        """O(1) delete; returns the key that moved into ``row`` (if any)."""
        last = self.count - 1
        moved = None
        if row != last:
            self.matrix[row] = self.matrix[last]
            self.keys[row] = self.keys[last]
            self.seqs[row] = self.seqs[last]
            moved = self.keys[row]
        self.keys.pop()
        self.seqs.pop()
        self.count -= 1
        return moved


class _NodeIndex:
    """Coarse-quantised cosine index with bucket-contiguous storage.

    Rows live in per-cluster contiguous matrices.  Below
    ``build_threshold`` everything sits in one bucket and a search is
    exactly the flat contiguous matmul; above it, k-means-lite centroids
    are fitted once (and refitted when the index doubles), after which a
    query costs one ``clusters x dim`` matmul plus ``nprobe`` contiguous
    bucket matmuls.  All candidate selection breaks similarity ties by
    global insertion sequence ascending — the flat index's order — so
    fan-out merges are deterministic.
    """

    KMEANS_ITERATIONS = 4
    SAMPLE_PER_CLUSTER = 16

    def __init__(self, dim: int, clusters: int, nprobe: int) -> None:
        self.dim = int(dim)
        self.clusters = int(clusters)
        self.nprobe = int(nprobe)
        self.build_threshold = self.clusters * 32
        self.centroids: np.ndarray | None = None
        self._buckets: list[_Bucket] = [_Bucket(dim)]
        #: key -> (bucket, row) for O(1) deletes.
        self._rows: dict[str, tuple[int, int]] = {}
        self._built_at = 0

    def __len__(self) -> int:
        return len(self._rows)

    def upsert(self, key: str, vector: np.ndarray, seq: int) -> None:
        if key in self._rows:
            self.delete(key)
        if self.centroids is None:
            bucket_id = 0
            if len(self._rows) + 1 >= self.build_threshold:
                self._append(0, key, vector, seq)
                self._build()
                return
        else:
            if len(self._rows) >= 2 * max(self._built_at, 1):
                self._build()
            bucket_id = int(np.argmax(self.centroids @ vector))
        self._append(bucket_id, key, vector, seq)

    def _append(self, bucket_id: int, key: str, vector: np.ndarray, seq: int) -> None:
        row = self._buckets[bucket_id].append(vector, key, seq)
        self._rows[key] = (bucket_id, row)

    def delete(self, key: str) -> bool:
        place = self._rows.pop(key, None)
        if place is None:
            return False
        bucket_id, row = place
        moved = self._buckets[bucket_id].swap_remove(row)
        if moved is not None:
            self._rows[moved] = (bucket_id, row)
        return True

    def _gather(self) -> tuple[np.ndarray, list[str], list[int]]:
        parts = [b.matrix[: b.count] for b in self._buckets if b.count]
        keys = [k for b in self._buckets for k in b.keys]
        seqs = [s for b in self._buckets for s in b.seqs]
        rows = np.vstack(parts) if parts else np.empty((0, self.dim))
        return rows, keys, seqs

    def _build(self) -> None:
        """Fit k-means-lite centroids and redistribute rows, in place.

        Deterministic: the sample is a fixed stride over current rows and
        initial centroids are evenly spaced sample rows — no RNG, so the
        same insert history always produces the same layout.
        """
        rows, keys, seqs = self._gather()
        n = len(keys)
        sample_size = self.clusters * self.SAMPLE_PER_CLUSTER
        sample = rows[:: max(1, n // sample_size)][:sample_size]
        picks = np.linspace(0, len(sample) - 1, self.clusters).astype(int)
        centroids = sample[picks].copy()
        for _ in range(self.KMEANS_ITERATIONS):
            assign = np.argmax(sample @ centroids.T, axis=1)
            for cluster in range(self.clusters):
                members = sample[assign == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
            norms = np.linalg.norm(centroids, axis=1)
            norms[norms == 0] = 1.0
            centroids /= norms[:, None]
        self.centroids = centroids
        self._built_at = n
        assign = np.argmax(rows @ centroids.T, axis=1)
        self._buckets = [_Bucket(self.dim) for _ in range(self.clusters)]
        self._rows = {}
        for i in range(n):
            self._append(int(assign[i]), keys[i], rows[i], seqs[i])

    def search(self, query: np.ndarray, top_k: int = 1) -> list[tuple[str, float, int]]:
        """Top-k ``(key, similarity, seq)`` by (similarity desc, seq asc)."""
        if not self._rows:
            return []
        if self.centroids is None:
            probe = [0]
        else:
            scores = self.centroids @ query
            nprobe = min(self.nprobe, self.clusters)
            probe = np.argpartition(scores, -nprobe)[-nprobe:].tolist()
        sims_parts: list[np.ndarray] = []
        part_buckets: list[_Bucket] = []
        for bucket_id in probe:
            bucket = self._buckets[bucket_id]
            if not bucket.count:
                continue
            sims_parts.append(bucket.matrix[: bucket.count] @ query)
            part_buckets.append(bucket)
        if not sims_parts:
            return []
        sims = sims_parts[0] if len(sims_parts) == 1 else np.concatenate(sims_parts)
        n = len(sims)
        # Widen the cutoff to include every similarity tie, then resolve
        # keys/seqs for the (tiny) candidate set only — the probed buckets'
        # key lists are never copied on the query path.
        if n > top_k:
            part = np.argpartition(sims, n - top_k)[n - top_k :]
            cutoff = sims[part].min()
            candidates = np.nonzero(sims >= cutoff)[0]
        else:
            candidates = np.arange(n)
        bounds = np.cumsum([p.shape[0] for p in sims_parts])
        results: list[tuple[str, float, int]] = []
        for i in candidates.tolist():
            which = int(np.searchsorted(bounds, i, side="right"))
            local = i - (int(bounds[which - 1]) if which else 0)
            bucket = part_buckets[which]
            results.append((bucket.keys[local], float(sims[i]), bucket.seqs[local]))
        results.sort(key=lambda r: (-r[1], r[2]))
        return results[:top_k]


# --------------------------------------------------------------------------- #
# Cache node
# --------------------------------------------------------------------------- #


class _Entry:
    """One stored copy (primary or replica) of a logical cache entry."""

    __slots__ = ("state", "checksum", "embedding", "seq", "visible_after_s", "corrupted")

    def __init__(self, state, checksum, embedding, seq, visible_after_s) -> None:
        self.state = state
        self.checksum = checksum
        self.embedding = embedding
        self.seq = seq
        self.visible_after_s = visible_after_s
        self.corrupted = False


class CacheNode:
    """One shard of the tier: a vector index slice, a state store slice and
    its own network conditions."""

    def __init__(self, node_id: int, dim: int, clusters: int, nprobe: int, seed: int) -> None:
        self.node_id = int(node_id)
        self.network = NetworkModel(seed=stable_hash(f"cache-node-net:{seed}:{node_id}", bits=32))
        #: Per-tenant index over *primary* rows only (replica copies are
        #: reachable through the fetch fallback, not the search path).
        self.indexes: dict[str, _NodeIndex] = {}
        self._dim, self._clusters, self._nprobe = dim, clusters, nprobe
        #: key -> _Entry for every copy (primary and replica) on this node.
        self.states: dict[str, _Entry] = {}
        self.primaries: set[str] = set()
        #: Replica-side delete markers: key -> tombstone time.
        self.tombstones: dict[str, float] = {}
        # Accounting (survives node removal: the tier keeps retired nodes).
        self.lookups = 0
        self.hits = 0
        self.latency_s = 0.0
        self.fetch_hits = 0
        self.fetch_misses = 0
        self.replica_reads = 0
        self.stale_misses = 0
        self.poisoned_detected = 0
        self._window_minute = -1
        self._window_fetches = 0

    def index_for(self, tenant: str) -> _NodeIndex:
        index = self.indexes.get(tenant)
        if index is None:
            index = self.indexes[tenant] = _NodeIndex(self._dim, self._clusters, self._nprobe)
        return index

    def entries(self) -> int:
        """Primary entries held by this node."""
        return len(self.primaries)

    def record_fetch(self, now_s: float) -> None:
        minute = int(now_s // 60)
        if minute != self._window_minute:
            self._window_minute = minute
            self._window_fetches = 0
        self._window_fetches += 1

    def fetch_rate(self, now_s: float) -> int:
        """Fetches observed in the current one-minute window."""
        if int(now_s // 60) != self._window_minute:
            return 0
        return self._window_fetches


# --------------------------------------------------------------------------- #
# The tier
# --------------------------------------------------------------------------- #


class CacheTier:
    """Consistent-hash sharded, replicated approximate cache.

    Drop-in for :class:`~repro.cache.approximate.ApproximateCache` — same
    retrieval outcome semantics, same accounting surface — with placement,
    replication and per-node failure domains underneath.
    """

    def __init__(
        self,
        shards: int = 2,
        replication: int = 0,
        embedder: PromptEmbedder | None = None,
        network: NetworkModel | None = None,
        vnodes: int = 64,
        clusters: int = 96,
        nprobe: int = 8,
        replication_lag_s: float = 30.0,
        hot_shard_threshold: int = 240,
        similarity_threshold: float = 0.78,
        checkpoint_steps: tuple[int, ...] = (5, 10, 15, 20, 25),
        tenants: tuple = (),
        seed: int = 0,
        on_lookup=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= replication < max(shards, 1):
            raise ValueError("replication must be in [0, shards - 1]")
        self.embedder = embedder or PromptEmbedder()
        self.network = network or NetworkModel()
        self.similarity_threshold = float(similarity_threshold)
        self.checkpoint_steps = tuple(sorted(checkpoint_steps))
        self.replication = int(replication)
        self.replication_lag_s = float(replication_lag_s)
        self.hot_shard_threshold = int(hot_shard_threshold)
        self._seed = int(seed)
        self._clusters = int(clusters)
        self._nprobe = int(nprobe)
        #: Callback ``(shard_id, hit, latency_s)`` fired per retrieval
        #: attempt — the metrics collector's per-shard accounting hook.
        self.on_lookup = on_lookup
        self._nodes: dict[int, CacheNode] = {}
        self._retired: dict[int, CacheNode] = {}
        self.ring = HashRing(list(range(shards)), vnodes=vnodes)
        for node_id in range(shards):
            self._nodes[node_id] = self._new_node(node_id)
        #: Global per-tenant LRU (cross-shard): quota eviction pops from
        #: here, whichever shard owns the entry.
        self._tenant_lru: dict[str, OrderedDict[str, tuple[str, int]]] = defaultdict(OrderedDict)
        self._tenant_quota: dict[str, int | None] = {
            spec.name: spec.cache_quota for spec in tenants if spec.name
        }
        self.retrieval_attempts = 0
        self.retrieval_hits = 0
        self._tenant_attempts: dict[str, int] = defaultdict(int)
        self._tenant_hits: dict[str, int] = defaultdict(int)
        self._seq = 0
        self._mutations = 0
        self._now = 0.0
        self.evictions = 0
        self.moved_entries = 0
        self.tombstones_compacted = 0
        self.poisoned_entries = 0
        self.poisoned_served = 0

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def _new_node(self, node_id: int) -> CacheNode:
        return CacheNode(
            node_id,
            dim=self.embedder.dim,
            clusters=self._clusters,
            nprobe=self._nprobe,
            seed=self._seed,
        )

    @property
    def num_shards(self) -> int:
        """Live cache nodes on the ring."""
        return len(self._nodes)

    def schedule_node_condition(
        self, node_id: int, start_s: float, end_s: float, condition: NetworkCondition
    ) -> None:
        """Schedule a network condition window on one node only."""
        try:
            node = self._nodes[int(node_id)]
        except KeyError:
            raise ValueError(
                f"no cache node {node_id}; live nodes: {sorted(self._nodes)}"
            ) from None
        node.network.schedule_condition(start_s, end_s, condition)

    def add_node(self, now_s: float | None = None) -> int:
        """Grow the ring by one node, migrating the entries whose owner moved.

        Returns the new node id.  Migration is immediate and deterministic
        (entries move in global insertion order); replica copies are
        re-placed against the new ring.
        """
        node_id = max(list(self._nodes) + list(self._retired)) + 1
        self._nodes[node_id] = self._new_node(node_id)
        self.ring.add_node(node_id)
        self._rebalance(now_s if now_s is not None else self._now)
        return node_id

    def remove_node(self, node_id: int, now_s: float | None = None) -> None:
        """Shrink the ring, handing the node's primaries to their new owners."""
        node_id = int(node_id)
        if node_id not in self._nodes:
            raise ValueError(f"no cache node {node_id}; live nodes: {sorted(self._nodes)}")
        self.ring.remove_node(node_id)
        retired = self._nodes.pop(node_id)
        self._retired[node_id] = retired
        self._rebalance(now_s if now_s is not None else self._now, vacated=retired)

    def _rebalance(self, now_s: float, vacated: CacheNode | None = None) -> None:
        """Move every entry whose ring placement changed.

        Primaries relocate with their index rows; replica sets are rebuilt
        from the new preference list.  Copies on a vacated node survive
        through their new placement — a ring change never loses data.
        """
        sources = list(self._nodes.values()) + ([vacated] if vacated is not None else [])
        logical: dict[str, tuple[CacheNode, _Entry, str]] = {}
        for node in sources:
            for key in node.primaries:
                logical[key] = (node, node.states[key], key.split(":", 1)[0])
        for key in sorted(logical, key=lambda k: logical[k][1].seq):
            holder, entry, tenant = logical[key]
            prefs = self.ring.preference(_key_hash(key), 1 + self.replication)
            owner = self._nodes[prefs[0]]
            if owner is not holder:
                holder.primaries.discard(key)
                holder.index_for(tenant).delete(key)
                if holder is vacated:
                    holder.states.pop(key, None)
                owner.states[key] = entry
                owner.primaries.add(key)
                owner.index_for(tenant).upsert(key, entry.embedding, entry.seq)
                self.moved_entries += 1
            for node_id, node in self._nodes.items():
                is_replica = node_id in prefs[1:]
                has_copy = key in node.states and key not in node.primaries
                if is_replica and not has_copy and node is not owner:
                    node.states[key] = entry
                    node.index_for(tenant).upsert(key, entry.embedding, entry.seq)
                elif not is_replica and has_copy and node is not owner:
                    node.states.pop(key, None)
                    node.index_for(tenant).delete(key)
        self._mutations += 1

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_key(tenant: str, prompt_id: int) -> str:
        return f"{tenant}:{prompt_id}"

    def owner_shard(self, tenant: str, prompt_id: int) -> int:
        """The node id owning (tenant, prompt_id) under the current ring."""
        return self.ring.owner(_key_hash(self.entry_key(tenant, prompt_id)))

    def likely_shard(self, prompt: Prompt) -> int:
        """The shard a retrieval for ``prompt`` is most likely to land on.

        Routing heuristic: re-served prompts hit their own entry, which
        lives on their key's owner.  O(log vnodes) — cheap enough for the
        per-request scheduler path.
        """
        return self.owner_shard(prompt.tenant, prompt.prompt_id)

    def worker_prefers(self, prompt: Prompt, worker_id: int) -> bool:
        """True when ``worker_id`` is placed near the shard likely to hit.

        Workers map onto cache nodes round-robin over the sorted live node
        ids, mirroring how racks would be cabled to cache hosts.
        """
        nodes = self.ring.nodes
        target = self.likely_shard(prompt)
        return nodes[worker_id % len(nodes)] == target

    # ------------------------------------------------------------------ #
    # Retrieval path
    # ------------------------------------------------------------------ #
    def retrieve(self, prompt: Prompt, requested_skip: int, now_s: float) -> RetrievalOutcome:
        """Attempt to retrieve a noise state enabling ``requested_skip``."""
        outcome = self._retrieve(prompt, requested_skip, now_s)
        if requested_skip > 0:
            self.retrieval_attempts += 1
            self._tenant_attempts[prompt.tenant] += 1
            if outcome.hit:
                self.retrieval_hits += 1
                self._tenant_hits[prompt.tenant] += 1
        return outcome

    @property
    def retrieval_hit_rate(self) -> float:
        """Fraction of retrieval attempts that produced a usable state."""
        if self.retrieval_attempts == 0:
            return 0.0
        return self.retrieval_hits / self.retrieval_attempts

    def retrieval_hit_rate_for(self, tenant: str) -> float:
        """Retrieval hit rate within one tenant's namespace."""
        attempts = self._tenant_attempts.get(tenant, 0)
        if attempts == 0:
            return 0.0
        return self._tenant_hits.get(tenant, 0) / attempts

    def _account(self, node: CacheNode, hit: bool, latency_s: float) -> None:
        node.lookups += 1
        node.latency_s += latency_s
        if hit:
            node.hits += 1
        if self.on_lookup is not None:
            self.on_lookup(node.node_id, hit, latency_s)

    def _miss(self, requested_skip, latency, similarity, node) -> RetrievalOutcome:
        self._account(node, False, latency)
        return RetrievalOutcome(
            requested_skip=requested_skip,
            effective_skip=0,
            retrieval_latency_s=latency,
            hit=False,
            similarity=similarity,
        )

    def _retrieve(self, prompt: Prompt, requested_skip: int, now_s: float) -> RetrievalOutcome:
        self._now = now_s
        if requested_skip <= 0:
            return RetrievalOutcome(
                requested_skip=0, effective_skip=0, retrieval_latency_s=0.0, hit=False
            )
        client_latency = self.network.retrieval_latency(now_s)
        if client_latency is None:
            return self._network_failed(requested_skip)

        # Parallel fan-out: query every reachable node's tenant slice; the
        # search phase costs the slowest responder (plus the client leg).
        query = self.embedder.embed(prompt)
        reachable: dict[int, float] = {}
        candidates: list[tuple[float, int, str, int]] = []
        for node_id in self.ring.nodes:
            node = self._nodes[node_id]
            node_latency = node.network.retrieval_latency(now_s)
            if node_latency is None:
                continue
            reachable[node_id] = node_latency
            index = node.indexes.get(prompt.tenant)
            if index is None:
                continue
            for key, sim, seq in index.search(query, top_k=1):
                candidates.append((sim, seq, key, node_id))
        if not reachable:
            return self._network_failed(requested_skip)
        search_latency = max([client_latency, *reachable.values()])

        fallback_node = self._nodes[
            self.ring.owner(_key_hash(self.entry_key(prompt.tenant, prompt.prompt_id)))
        ]
        if not candidates:
            return self._miss(requested_skip, search_latency, None, fallback_node)
        best_sim, best_seq, best_key, best_node = max(
            candidates, key=lambda c: (c[0], -c[1])
        )
        if best_sim < self.similarity_threshold:
            return self._miss(requested_skip, search_latency, best_sim, fallback_node)

        node, entry, stale_missed = self._fetch(best_key, reachable, now_s)
        if node is None:
            node = self._nodes[best_node]
        if stale_missed:
            node.stale_misses += 1
        if entry is None:
            node.fetch_misses += 1
            return self._miss(requested_skip, search_latency, best_sim, node)
        latency = search_latency + reachable[node.node_id]
        node.record_fetch(now_s)
        if entry.corrupted or entry.state.checksum() != entry.checksum:
            # Entry checksum caught a poisoned state: never serve it, drop
            # every copy so the slot refills from live traffic.
            node.poisoned_detected += 1
            node.fetch_misses += 1
            self._delete_entry(best_key)
            return self._miss(requested_skip, latency, best_sim, node)
        node.fetch_hits += 1
        self._touch_lru(best_key)
        usable_step = entry.state.best_step_for(requested_skip)
        if usable_step is None:
            return self._miss(requested_skip, latency, best_sim, node)
        self._account(node, True, latency)
        return RetrievalOutcome(
            requested_skip=requested_skip,
            effective_skip=usable_step,
            retrieval_latency_s=latency,
            hit=True,
            similarity=best_sim,
        )

    def _network_failed(self, requested_skip: int) -> RetrievalOutcome:
        return RetrievalOutcome(
            requested_skip=requested_skip,
            effective_skip=0,
            retrieval_latency_s=0.0,
            hit=False,
            network_failed=True,
        )

    def _fetch(
        self, key: str, reachable: dict[int, float], now_s: float
    ) -> tuple[CacheNode | None, _Entry | None, bool]:
        """Pick the node serving the state fetch for ``key``.

        The owner answers unless it is unreachable or hot; then the
        cheapest reachable replica with a *visible* copy takes over
        (bounded staleness: copies become visible ``replication_lag_s``
        after the primary write).  Returns ``(node, entry, stale_missed)``.
        """
        prefs = self.ring.preference(_key_hash(key), 1 + self.replication)
        owner_id = prefs[0]
        owner = self._nodes[owner_id]
        owner_ok = owner_id in reachable and key in owner.states
        owner_hot = owner.fetch_rate(now_s) >= self.hot_shard_threshold
        if owner_ok and not owner_hot:
            return owner, owner.states[key], False
        stale_missed = False
        replicas = []
        for node_id in prefs[1:]:
            if node_id not in reachable:
                continue
            node = self._nodes[node_id]
            entry = node.states.get(key)
            if entry is None or key in node.tombstones:
                continue
            if entry.visible_after_s > now_s:
                stale_missed = True
                continue
            replicas.append((reachable[node_id], node_id, node, entry))
        if replicas:
            _, _, node, entry = min(replicas, key=lambda r: (r[0], r[1]))
            node.replica_reads += 1
            return node, entry, stale_missed
        if owner_ok:
            # Hot owner with no usable replica still answers itself.
            return owner, owner.states[key], stale_missed
        return (owner if owner_id in reachable else None), None, stale_missed

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def _peek(self, tenant: str, prompt_id: int):
        key = self.entry_key(tenant, prompt_id)
        owner = self._nodes[self.ring.owner(_key_hash(key))]
        return owner.states.get(key) if key in owner.primaries else None

    def store_states(self, prompt: Prompt, now_s: float | None = None) -> None:
        """Record the intermediate states produced while serving ``prompt``.

        Re-serving an already-cached prompt is a no-op, exactly like the
        flat cache.  The write lands on the ring owner immediately;
        replica copies become visible after the staleness bound.
        """
        if self._peek(prompt.tenant, prompt.prompt_id) is not None:
            return
        self._store_embedded(prompt, self.embedder.embed(prompt), now_s)

    def warm(self, prompts: list[Prompt]) -> None:
        """Pre-populate the tier (batch-embedded, duplicates skipped).

        Warm entries are visible on replicas immediately: they model a
        pre-loaded deployment, not live replication traffic.
        """
        fresh: list[Prompt] = []
        seen: set[tuple[str, int]] = set()
        for prompt in prompts:
            key = (prompt.tenant, prompt.prompt_id)
            if key in seen or self._peek(prompt.tenant, prompt.prompt_id) is not None:
                continue
            seen.add(key)
            fresh.append(prompt)
        if not fresh:
            return
        embeddings = self.embedder.embed_batch(fresh)
        for prompt, embedding in zip(fresh, embeddings):
            self._store_embedded(prompt, embedding, now_s=None, warm=True)

    def _store_embedded(self, prompt, embedding, now_s=None, warm=False) -> None:
        now = self._now if now_s is None else now_s
        state = StoredState(
            prompt_id=prompt.prompt_id,
            prompt_text=prompt.text,
            available_steps=self.checkpoint_steps,
        )
        embedding = np.asarray(embedding, dtype=np.float64)
        norm = float(np.linalg.norm(embedding))
        if norm:
            embedding = embedding / norm
        self._seq += 1
        entry = _Entry(
            state=state,
            checksum=state.checksum(),
            embedding=embedding,
            seq=self._seq,
            visible_after_s=0.0 if warm else now + self.replication_lag_s,
        )
        key = self.entry_key(prompt.tenant, prompt.prompt_id)
        prefs = self.ring.preference(_key_hash(key), 1 + self.replication)
        owner = self._nodes[prefs[0]]
        owner.states[key] = entry
        owner.primaries.add(key)
        owner.index_for(prompt.tenant).upsert(key, embedding, entry.seq)
        for node_id in prefs[1:]:
            replica = self._nodes[node_id]
            replica.states[key] = entry
            replica.tombstones.pop(key, None)
            # Replicas index their copy too, so fan-out search still
            # surfaces the key when the owner is dark; visibility of the
            # copy itself stays gated by the staleness bound at fetch time.
            replica.index_for(prompt.tenant).upsert(key, embedding, entry.seq)
        self._tenant_lru[prompt.tenant][key] = (prompt.tenant, prompt.prompt_id)
        self._mutations += 1
        self._enforce_quota(prompt.tenant, now)
        if self._mutations % 256 == 0:
            self._compact(now)

    def bulk_load(self, keys: list[str], vectors: np.ndarray, tenant: str = "") -> None:
        """Load pre-embedded (already normalised) rows, bypassing the
        embedder — the benchmark's build path.  ``keys`` are entry keys
        without the tenant prefix."""
        for raw_key, vector in zip(keys, np.asarray(vectors, dtype=np.float64)):
            self._seq += 1
            key = f"{tenant}:{raw_key}"
            state = StoredState(
                prompt_id=self._seq, prompt_text=str(raw_key), available_steps=self.checkpoint_steps
            )
            entry = _Entry(
                state=state,
                checksum=state.checksum(),
                embedding=vector,
                seq=self._seq,
                visible_after_s=0.0,
            )
            prefs = self.ring.preference(_key_hash(key), 1 + self.replication)
            owner = self._nodes[prefs[0]]
            owner.states[key] = entry
            owner.primaries.add(key)
            owner.index_for(tenant).upsert(key, vector, entry.seq)
            for node_id in prefs[1:]:
                replica = self._nodes[node_id]
                replica.states[key] = entry
                replica.index_for(tenant).upsert(key, vector, entry.seq)

    def fanout_search(self, query: np.ndarray, top_k: int = 1, tenant: str = ""):
        """Fan a raw vector query out to every node and merge top-k.

        Returns ``(key, similarity, seq)`` tuples in (similarity desc, seq
        asc) order — the flat index's deterministic tie order.  Used by the
        benchmark's query path; :meth:`retrieve` goes through the same
        per-node searches with network conditions applied.
        """
        merged: list[tuple[str, float, int]] = []
        for node_id in self.ring.nodes:
            index = self._nodes[node_id].indexes.get(tenant)
            if index is not None:
                merged.extend(index.search(query, top_k=top_k))
        merged.sort(key=lambda c: (-c[1], c[2]))
        return merged[:top_k]

    # ------------------------------------------------------------------ #
    # Quota eviction, tombstones, compaction
    # ------------------------------------------------------------------ #
    def _touch_lru(self, key: str) -> None:
        tenant = key.split(":", 1)[0]
        lru = self._tenant_lru.get(tenant)
        if lru is not None and key in lru:
            lru.move_to_end(key)

    def _enforce_quota(self, tenant: str, now_s: float) -> None:
        quota = self._tenant_quota.get(tenant)
        if quota is None:
            return
        lru = self._tenant_lru[tenant]
        while len(lru) > quota:
            key, _ = lru.popitem(last=False)
            self._delete_entry(key, now_s=now_s, evicted=True)

    def _delete_entry(self, key: str, now_s: float | None = None, evicted: bool = False) -> None:
        """Cross-shard delete: owner drops the copy, replicas tombstone it."""
        now = self._now if now_s is None else now_s
        tenant = key.split(":", 1)[0]
        prefs = self.ring.preference(_key_hash(key), 1 + self.replication)
        owner = self._nodes[prefs[0]]
        if key in owner.primaries:
            owner.primaries.discard(key)
            owner.states.pop(key, None)
            owner.index_for(tenant).delete(key)
        for node_id in prefs[1:]:
            replica = self._nodes[node_id]
            if key in replica.states:
                replica.states.pop(key, None)
                replica.index_for(tenant).delete(key)
                replica.tombstones[key] = now
        lru = self._tenant_lru.get(tenant)
        if lru is not None:
            lru.pop(key, None)
        if evicted:
            self.evictions += 1
        self._mutations += 1

    def _compact(self, now_s: float) -> None:
        """Drop tombstones older than the staleness bound on every node."""
        horizon = now_s - self.replication_lag_s
        for node in self._nodes.values():
            dead = [key for key, ts in node.tombstones.items() if ts <= horizon]
            for key in dead:
                del node.tombstones[key]
            self.tombstones_compacted += len(dead)

    # ------------------------------------------------------------------ #
    # Chaos: poisoning
    # ------------------------------------------------------------------ #
    def poison(self, fraction: float, seed: int = 0) -> int:
        """Corrupt ``fraction`` of stored entries in place.

        Corruption damages the stored state without updating the entry's
        recorded checksum, exactly how bit-rot or a bad writer shows up;
        the retrieval-path checksum verification is what must catch it.
        Returns how many entries were poisoned.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("poison fraction must be in (0, 1]")
        keys = sorted(
            key for node in self._nodes.values() for key in node.primaries
        )
        rng = np.random.default_rng(stable_hash(f"cache-poison:{seed}", bits=32))
        picked = [key for key in keys if rng.random() < fraction]
        for key in picked:
            owner = self._nodes[self.ring.owner(_key_hash(key))]
            entry = owner.states.get(key)
            if entry is None:
                continue
            # Owner and replicas share the copy object, so one in-place
            # mutation poisons every copy of the logical entry.
            steps = entry.state.available_steps
            entry.state = replace(
                entry.state, available_steps=steps[:-1] + (steps[-1] + 1,)
            )
            entry.corrupted = True
        self.poisoned_entries += len(picked)
        return len(picked)

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def probe_network(self, now_s: float) -> float | None:
        """Background client-network probe (the strategy switcher's input)."""
        self._now = now_s
        return self.network.probe(now_s)

    def tenant_entries(self, tenant: str) -> int:
        """Logical entries currently held for one tenant."""
        return len(self._tenant_lru.get(tenant, ()))

    def store_counts(self) -> tuple[int, int]:
        """(hits, misses) over state fetches, all nodes (incl. retired)."""
        nodes = list(self._nodes.values()) + list(self._retired.values())
        return (
            sum(n.fetch_hits for n in nodes),
            sum(n.fetch_misses for n in nodes),
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of state fetches that hit (all nodes combined)."""
        hits, misses = self.store_counts()
        total = hits + misses
        return hits / total if total else 0.0

    def tier_stats(self) -> dict:
        """Report-ready snapshot of the tier's placement and traffic."""
        nodes = {**self._retired, **self._nodes}
        return {
            "shards": len(self._nodes),
            "replication": self.replication,
            "entries": sum(node.entries() for node in self._nodes.values()),
            "moved_entries": self.moved_entries,
            "evictions": self.evictions,
            "tombstones_compacted": self.tombstones_compacted,
            "per_shard": {
                str(node_id): {
                    "lookups": node.lookups,
                    "hits": node.hits,
                    "latency_s": node.latency_s,
                    "entries": node.entries(),
                    "replica_reads": node.replica_reads,
                    "stale_misses": node.stale_misses,
                    "live": node_id in self._nodes,
                }
                for node_id, node in sorted(nodes.items())
            },
            "poison": {
                "entries_poisoned": self.poisoned_entries,
                "detected": sum(node.poisoned_detected for node in nodes.values()),
                "served": self.poisoned_served,
            },
        }
