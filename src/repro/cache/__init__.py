"""Approximate-caching substrate: vector database, noise-state store, network.

Approximate caching (AC) retrieves the intermediate noise state of a similar
previous prompt and resumes denoising from step K.  The substrate models the
three external dependencies the paper identifies: the vector database used
for similarity search, the blob store (EFS) holding the noise states, and
the network between the GPU workers and both services — including the
congestion and outage scenarios that trigger Argus's AC→SM switch.
"""

from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.store import NoiseStateStore, StoredState
from repro.cache.vectordb import VectorDatabase, SearchResult
from repro.cache.approximate import ApproximateCache, RetrievalOutcome

__all__ = [
    "ApproximateCache",
    "NetworkCondition",
    "NetworkModel",
    "NoiseStateStore",
    "RetrievalOutcome",
    "SearchResult",
    "StoredState",
    "VectorDatabase",
]
