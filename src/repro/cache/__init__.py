"""Approximate-caching substrate: vector database, noise-state store, network.

Approximate caching (AC) retrieves the intermediate noise state of a similar
previous prompt and resumes denoising from step K.  The substrate models the
three external dependencies the paper identifies: the vector database used
for similarity search, the blob store (EFS) holding the noise states, and
the network between the GPU workers and both services — including the
congestion and outage scenarios that trigger Argus's AC→SM switch.

Two cache implementations share one surface: the in-process
:class:`ApproximateCache` (one flat/HNSW index per tenant) and the
distributed :class:`CacheTier` (consistent-hash sharded, replicated, with
per-node network conditions).  :func:`build_cache` picks between them from
config so every caller — workers, gateway interceptor, scenario runtime —
stays a single code path.
"""

from repro.cache.approximate import ApproximateCache, RetrievalOutcome
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.store import NoiseStateStore, StoredState
from repro.cache.tier import CacheNode, CacheTier, HashRing
from repro.cache.vectordb import SearchResult, VectorDatabase


def build_cache(config, network=None, on_lookup=None):
    """Build the cache implementation ``config`` asks for.

    ``cache_shards=1`` with replication off constructs a plain
    :class:`ApproximateCache` — not a one-node tier — so the default
    configuration is bit-identical to the pre-tier behavior (the same
    knob-gating discipline as heterogeneous fleets and HNSW).
    """
    if not config.cache_tier_enabled:
        return ApproximateCache(network=network, tenants=config.tenants)
    return CacheTier(
        shards=config.cache_shards,
        replication=config.cache_replication,
        network=network,
        vnodes=config.cache_node_vnodes,
        clusters=config.cache_node_clusters,
        nprobe=config.cache_node_nprobe,
        replication_lag_s=config.cache_replication_lag_s,
        hot_shard_threshold=config.cache_hot_shard_threshold,
        tenants=config.tenants,
        seed=config.seed,
        on_lookup=on_lookup,
    )


__all__ = [
    "ApproximateCache",
    "CacheNode",
    "CacheTier",
    "HashRing",
    "NetworkCondition",
    "NetworkModel",
    "NoiseStateStore",
    "RetrievalOutcome",
    "SearchResult",
    "StoredState",
    "VectorDatabase",
    "build_cache",
]
