"""In-memory vector database (the Qdrant stand-in).

Stores prompt embeddings and answers nearest-neighbour queries by cosine
similarity.  Two index types are provided: exact brute force over a
contiguous matrix and an IVF (inverted file) index that trades a little
recall for sub-linear search, the same trade-off a production VDB makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: int
    similarity: float
    payload: dict


class VectorDatabase:
    """Cosine-similarity vector index with optional IVF acceleration."""

    def __init__(
        self,
        dim: int,
        index_type: str = "flat",
        num_clusters: int = 16,
        nprobe: int = 4,
        seed: int = 0,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if index_type not in ("flat", "ivf"):
            raise ValueError("index_type must be 'flat' or 'ivf'")
        self.dim = int(dim)
        self.index_type = index_type
        self.num_clusters = int(num_clusters)
        self.nprobe = int(nprobe)
        self._rng = np.random.default_rng(seed)
        self._capacity = 1024
        self._matrix = np.zeros((self._capacity, self.dim), dtype=np.float64)
        self._norms = np.zeros(self._capacity, dtype=np.float64)
        self._keys: list[int] = []
        self._payloads: dict[int, dict] = {}
        self._assignments = np.zeros(self._capacity, dtype=np.int64)
        self._centroids: np.ndarray | None = None
        self._next_key = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._keys)

    def _grow_if_needed(self) -> None:
        if len(self._keys) < self._capacity:
            return
        self._capacity *= 2
        matrix = np.zeros((self._capacity, self.dim), dtype=np.float64)
        matrix[: len(self._keys)] = self._matrix[: len(self._keys)]
        self._matrix = matrix
        norms = np.zeros(self._capacity, dtype=np.float64)
        norms[: len(self._keys)] = self._norms[: len(self._keys)]
        self._norms = norms
        assignments = np.zeros(self._capacity, dtype=np.int64)
        assignments[: len(self._keys)] = self._assignments[: len(self._keys)]
        self._assignments = assignments

    def upsert(self, vector: np.ndarray, payload: dict | None = None) -> int:
        """Insert a vector, returning its key."""
        vector = self._check_vector(vector)
        self._grow_if_needed()
        index = len(self._keys)
        key = self._next_key
        self._next_key += 1
        self._keys.append(key)
        self._matrix[index] = vector
        self._norms[index] = max(float(np.linalg.norm(vector)), 1e-12)
        self._payloads[key] = dict(payload or {})
        self._assignments[index] = self._assign_cluster(vector)
        return key

    def delete(self, key: int) -> bool:
        """Delete a vector by key; returns False if the key was unknown."""
        if key not in self._payloads:
            return False
        index = self._keys.index(key)
        last = len(self._keys) - 1
        if index != last:
            self._keys[index] = self._keys[last]
            self._matrix[index] = self._matrix[last]
            self._norms[index] = self._norms[last]
            self._assignments[index] = self._assignments[last]
        self._keys.pop()
        del self._payloads[key]
        return True

    def payload(self, key: int) -> dict:
        """Payload stored for ``key``."""
        return self._payloads[key]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, top_k: int = 1) -> list[SearchResult]:
        """Return the ``top_k`` most similar stored vectors."""
        query = self._check_vector(query)
        count = len(self._keys)
        if count == 0:
            return []
        candidate_indices = self._candidate_indices(query, count)
        matrix = self._matrix[candidate_indices]
        norms = self._norms[candidate_indices]
        query_norm = max(float(np.linalg.norm(query)), 1e-12)
        sims = (matrix @ query) / (norms * query_norm)
        order = np.argsort(-sims)[:top_k]
        results = []
        for position in order:
            idx = int(candidate_indices[int(position)])
            key = self._keys[idx]
            results.append(
                SearchResult(
                    key=key, similarity=float(sims[int(position)]), payload=self._payloads[key]
                )
            )
        return results

    def nearest(self, query: np.ndarray) -> SearchResult | None:
        """Most similar stored vector, or None when the index is empty."""
        hits = self.search(query, top_k=1)
        return hits[0] if hits else None

    # ------------------------------------------------------------------ #
    # IVF internals
    # ------------------------------------------------------------------ #
    def _assign_cluster(self, vector: np.ndarray) -> int:
        if self.index_type != "ivf":
            return 0
        if self._centroids is None or len(self._keys) % 256 == 1:
            self._rebuild_centroids()
        assert self._centroids is not None
        sims = self._centroids @ vector
        return int(np.argmax(sims))

    def _rebuild_centroids(self) -> None:
        count = len(self._keys)
        if count == 0:
            self._centroids = self._normalize_rows(
                self._rng.normal(size=(self.num_clusters, self.dim))
            )
            return
        data = self._matrix[:count]
        sample_size = min(count, 64 * self.num_clusters)
        sample_idx = self._rng.choice(count, size=sample_size, replace=False)
        sample = data[sample_idx]
        seed_count = min(self.num_clusters, len(sample))
        centroids = sample[self._rng.choice(len(sample), size=seed_count, replace=False)]
        if len(centroids) < self.num_clusters:
            extra = self._rng.normal(size=(self.num_clusters - len(centroids), self.dim))
            centroids = np.vstack([centroids, extra])
        for _ in range(5):
            assignments = np.argmax(sample @ centroids.T, axis=1)
            for cluster in range(self.num_clusters):
                members = sample[assignments == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        self._centroids = self._normalize_rows(centroids)
        self._assignments[:count] = np.argmax(data @ self._centroids.T, axis=1)

    def _candidate_indices(self, query: np.ndarray, count: int) -> np.ndarray:
        if self.index_type != "ivf" or self._centroids is None:
            return np.arange(count)
        sims = self._centroids @ query
        probe_clusters = np.argsort(-sims)[: self.nprobe]
        mask = np.isin(self._assignments[:count], probe_clusters)
        candidates = np.nonzero(mask)[0]
        if len(candidates) == 0:
            return np.arange(count)
        return candidates

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        return vector

    @staticmethod
    def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms
