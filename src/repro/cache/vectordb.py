"""In-memory vector database (the Qdrant stand-in).

Stores prompt embeddings and answers nearest-neighbour queries by cosine
similarity.  Three index types are provided, the same latency/recall ladder
a production VDB exposes:

* ``flat`` — exact brute force.  Rows are stored unit-normalised so a
  search is a single zero-copy ``matrix[:count] @ query`` (no per-query
  matrix copy, no norm division) followed by an ``argpartition`` top-k.
* ``ivf`` — inverted-file clustering that probes only the ``nprobe``
  closest centroids.  Centroid (re)builds are batched off the insert path:
  inserts are O(1) appends and the index refreshes lazily at search time.
* ``hnsw`` — a hierarchical navigable-small-world graph for sub-linear
  search at large entry counts, trading a little recall for latency.
  Deletes are tombstoned (the node keeps routing the graph) and the index
  compacts itself once tombstones outnumber live entries.
"""

from __future__ import annotations

import math
import heapq
import random
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: int
    similarity: float
    payload: dict


class VectorDatabase:
    """Cosine-similarity vector index with IVF / HNSW acceleration."""

    #: Inserts between lazy IVF centroid rebuilds.
    IVF_REBUILD_INTERVAL = 256

    def __init__(
        self,
        dim: int,
        index_type: str = "flat",
        num_clusters: int = 16,
        nprobe: int = 4,
        seed: int = 0,
        hnsw_m: int = 16,
        hnsw_ef_construction: int = 120,
        hnsw_ef_search: int = 128,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if index_type not in ("flat", "ivf", "hnsw"):
            raise ValueError("index_type must be 'flat', 'ivf' or 'hnsw'")
        self.dim = int(dim)
        self.index_type = index_type
        self.num_clusters = int(num_clusters)
        self.nprobe = int(nprobe)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._capacity = 1024
        #: Unit-normalised row storage; cosine similarity is a plain dot.
        self._matrix = np.zeros((self._capacity, self.dim), dtype=np.float64)
        self._keys: list[int] = []
        self._key_index: dict[int, int] = {}
        self._payloads: dict[int, dict] = {}
        self._next_key = 0
        #: Bumped on every upsert/delete.  Search results are a pure function
        #: of the stored vectors, so callers may memoise them against this
        #: counter (the approximate cache's nearest-match memo does).
        self.mutations = 0
        # IVF state: assignments are valid for rows [0, _assigned_count).
        self._assignments = np.zeros(self._capacity, dtype=np.int64)
        self._centroids: np.ndarray | None = None
        self._assigned_count = 0
        self._inserts_since_rebuild = 0
        # HNSW state.
        self._hnsw: _HnswGraph | None = None
        self._tombstones: set[int] = set()
        if index_type == "hnsw":
            self._hnsw = _HnswGraph(
                self,
                m=int(hnsw_m),
                ef_construction=int(hnsw_ef_construction),
                ef_search=int(hnsw_ef_search),
                seed=self.seed,
            )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._key_index)

    @property
    def _count(self) -> int:
        """Number of occupied rows (live + tombstoned)."""
        return len(self._keys)

    def _grow_if_needed(self) -> None:
        if self._count < self._capacity:
            return
        self._capacity *= 2
        matrix = np.zeros((self._capacity, self.dim), dtype=np.float64)
        matrix[: self._count] = self._matrix[: self._count]
        self._matrix = matrix
        assignments = np.zeros(self._capacity, dtype=np.int64)
        assignments[: self._count] = self._assignments[: self._count]
        self._assignments = assignments

    def upsert(self, vector: np.ndarray, payload: dict | None = None) -> int:
        """Insert a vector, returning its key.  O(1): index maintenance
        (IVF centroids, HNSW links beyond the node itself) is deferred."""
        vector = self._check_vector(vector)
        self._grow_if_needed()
        self.mutations += 1
        index = self._count
        key = self._next_key
        self._next_key += 1
        self._keys.append(key)
        norm = max(float(np.sqrt(vector @ vector)), 1e-12)
        self._matrix[index] = vector / norm
        self._key_index[key] = index
        self._payloads[key] = dict(payload or {})
        self._inserts_since_rebuild += 1
        if self._hnsw is not None:
            self._hnsw.insert(index)
        return key

    def delete(self, key: int) -> bool:
        """Delete a vector by key; returns False if the key was unknown.

        O(1) via the key→row map: flat/IVF swap the last row into the freed
        slot; HNSW tombstones the node (it keeps routing the graph) and
        compacts once tombstones outnumber live entries.
        """
        index = self._key_index.pop(key, None)
        if index is None:
            return False
        self.mutations += 1
        del self._payloads[key]
        if self._hnsw is not None:
            self._tombstones.add(index)
            if len(self._tombstones) > len(self._key_index):
                self._compact_hnsw()
            return True
        last = self._count - 1
        if index != last:
            moved_key = self._keys[last]
            self._keys[index] = moved_key
            self._key_index[moved_key] = index
            self._matrix[index] = self._matrix[last]
            if index < self._assigned_count:
                if last < self._assigned_count:
                    self._assignments[index] = self._assignments[last]
                else:
                    # The moved row had no assignment yet; derive one so the
                    # assigned prefix stays dense.
                    assert self._centroids is not None
                    self._assignments[index] = int(
                        np.argmax(self._centroids @ self._matrix[index])
                    )
        self._keys.pop()
        self._assigned_count = min(self._assigned_count, self._count)
        return True

    def payload(self, key: int) -> dict:
        """Payload stored for ``key``."""
        return self._payloads[key]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, top_k: int = 1) -> list[SearchResult]:
        """Return the ``top_k`` most similar stored vectors.

        Ties are broken deterministically: higher similarity first, then
        lower insertion index.
        """
        query = self._check_vector(query)
        if not self._key_index:
            return []
        # sqrt(q @ q) is np.linalg.norm without the errstate/dispatch
        # overhead (bit-identical for real 1-D input).
        query = query / max(float(np.sqrt(query @ query)), 1e-12)
        count = self._count
        if self._hnsw is not None:
            hits = self._hnsw.search(query, top_k)
            return [self._result(index, sim) for index, sim in hits]
        if self.index_type == "ivf":
            self._refresh_ivf(count)
            candidates = self._candidate_indices(query, count)
        else:
            candidates = None
        if candidates is None:
            sims = self._matrix[:count] @ query
        else:
            sims = self._matrix[candidates] @ query
        positions = _top_k_positions(sims, top_k)
        results = []
        for position in positions:
            idx = int(position) if candidates is None else int(candidates[int(position)])
            results.append(self._result(idx, float(sims[int(position)])))
        return results

    def nearest(self, query: np.ndarray) -> SearchResult | None:
        """Most similar stored vector, or None when the index is empty."""
        hits = self.search(query, top_k=1)
        return hits[0] if hits else None

    def _result(self, index: int, similarity: float) -> SearchResult:
        key = self._keys[index]
        return SearchResult(key=key, similarity=float(similarity), payload=self._payloads[key])

    # ------------------------------------------------------------------ #
    # IVF internals
    # ------------------------------------------------------------------ #
    def _refresh_ivf(self, count: int) -> None:
        """Bring centroids / assignments up to date (lazily, off inserts).

        The rebuild trigger counts inserts since the last rebuild rather
        than net growth, so delete/insert churn at a steady size still
        refreshes the centroids as the data turns over.
        """
        if (
            self._centroids is None
            or self._inserts_since_rebuild >= self.IVF_REBUILD_INTERVAL
        ):
            self._rebuild_centroids()
            return
        if self._assigned_count < count:
            fresh = self._matrix[self._assigned_count : count]
            self._assignments[self._assigned_count : count] = np.argmax(
                fresh @ self._centroids.T, axis=1
            )
            self._assigned_count = count

    def _rebuild_centroids(self) -> None:
        count = self._count
        if count == 0:
            self._centroids = self._normalize_rows(
                self._rng.normal(size=(self.num_clusters, self.dim))
            )
            self._inserts_since_rebuild = 0
            self._assigned_count = 0
            return
        data = self._matrix[:count]
        sample_size = min(count, 64 * self.num_clusters)
        sample_idx = self._rng.choice(count, size=sample_size, replace=False)
        sample = data[sample_idx]
        seed_count = min(self.num_clusters, len(sample))
        centroids = sample[self._rng.choice(len(sample), size=seed_count, replace=False)]
        if len(centroids) < self.num_clusters:
            extra = self._rng.normal(size=(self.num_clusters - len(centroids), self.dim))
            centroids = np.vstack([centroids, extra])
        for _ in range(5):
            assignments = np.argmax(sample @ centroids.T, axis=1)
            for cluster in range(self.num_clusters):
                members = sample[assignments == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        self._centroids = self._normalize_rows(centroids)
        self._assignments[:count] = np.argmax(data @ self._centroids.T, axis=1)
        self._assigned_count = count
        self._inserts_since_rebuild = 0

    def _candidate_indices(self, query: np.ndarray, count: int) -> np.ndarray | None:
        """Row indices to scan; None means scan everything (flat fallback)."""
        if self._centroids is None:
            return None
        sims = self._centroids @ query
        probe_clusters = np.argpartition(-sims, min(self.nprobe, len(sims)) - 1)[
            : self.nprobe
        ]
        mask = np.isin(self._assignments[:count], probe_clusters)
        candidates = np.nonzero(mask)[0]
        if len(candidates) == 0:
            return None
        return candidates

    # ------------------------------------------------------------------ #
    # HNSW internals
    # ------------------------------------------------------------------ #
    def _compact_hnsw(self) -> None:
        """Drop tombstoned rows and rebuild the graph over live entries."""
        assert self._hnsw is not None
        live = [index for index in range(self._count) if index not in self._tombstones]
        keys = [self._keys[index] for index in live]
        rows = self._matrix[live].copy()
        self._keys = []
        self._key_index = {}
        self._tombstones = set()
        self._matrix[: len(live)] = rows
        self._hnsw.reset()
        for new_index, key in enumerate(keys):
            self._keys.append(key)
            self._key_index[key] = new_index
            self._hnsw.insert(new_index)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        return vector

    @staticmethod
    def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms


def _top_k_positions(sims: np.ndarray, top_k: int) -> np.ndarray:
    """Positions of the ``top_k`` largest sims, similarity-desc/index-asc.

    ``argpartition`` keeps the selection O(n) instead of the O(n log n) a
    full ``argsort`` costs; only the selected candidates are sorted.
    """
    n = sims.shape[0]
    if top_k <= 0:
        return np.empty(0, dtype=np.int64)
    if top_k == 1:
        return np.array([int(np.argmax(sims))], dtype=np.int64)
    if top_k < n:
        part = np.argpartition(-sims, top_k - 1)[:top_k]
        # argpartition picks an index-arbitrary subset when equal
        # similarities straddle the k-th position; widen to every position
        # tied with the boundary value so the index-asc rule decides.
        kth = sims[part].min()
        candidates = np.flatnonzero(sims >= kth)
        order = candidates[np.lexsort((candidates, -sims[candidates]))]
        return order[:top_k]
    return np.lexsort((np.arange(n), -sims))


class _HnswGraph:
    """Hierarchical navigable-small-world graph over the database's rows.

    Similarity-based (cosine on unit rows = dot product), deterministic
    (seeded level sampling), with tombstone-aware search: deleted nodes keep
    routing the graph but never appear in results.
    """

    def __init__(
        self,
        db: VectorDatabase,
        m: int = 16,
        ef_construction: int = 120,
        ef_search: int = 128,
        seed: int = 0,
    ) -> None:
        if m < 2:
            raise ValueError("hnsw_m must be at least 2")
        self._db = db
        self.m = int(m)
        self.m0 = 2 * int(m)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self._seed = int(seed)
        self._level_mult = 1.0 / math.log(m)
        self.reset()

    def reset(self) -> None:
        self._rand = random.Random(self._seed)
        #: Per node: list of per-layer neighbour id lists.
        self._links: list[list[list[int]]] = []
        self._entry = -1
        self._max_level = -1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def insert(self, index: int) -> None:
        assert index == len(self._links), "HNSW nodes must be appended in row order"
        level = int(-math.log(max(self._rand.random(), 1e-12)) * self._level_mult)
        self._links.append([[] for _ in range(level + 1)])
        if self._entry < 0:
            self._entry = index
            self._max_level = level
            return
        query = self._db._matrix[index]
        ep = self._entry
        for layer in range(self._max_level, level, -1):
            ep = self._greedy_closest(query, ep, layer)
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(query, [ep], self.ef_construction, layer)
            m_max = self.m0 if layer == 0 else self.m
            neighbours = self._select_neighbours(query, candidates, self.m)
            self._links[index][layer] = list(neighbours)
            for neighbour in neighbours:
                links = self._links[neighbour][layer]
                links.append(index)
                if len(links) > m_max:
                    self._links[neighbour][layer] = self._prune(neighbour, links, m_max)
            if candidates:
                ep = max(candidates)[1]
        if level > self._max_level:
            self._entry = index
            self._max_level = level

    def _select_neighbours(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Diversity-heuristic neighbour selection (HNSW Algorithm 4).

        A candidate joins only if it is closer to the new node than to any
        already-selected neighbour; plain top-M links collapse into one
        dense clique per cluster and leave the graph un-navigable between
        clusters (recall@1 drops by half on clustered prompt workloads).
        """
        matrix = self._db._matrix
        selected: list[int] = []
        selected_rows: list[np.ndarray] = []
        for sim, node in sorted(candidates, key=lambda item: (-item[0], item[1])):
            if len(selected) >= m:
                break
            row = matrix[node]
            if selected_rows and float(np.max(np.asarray(selected_rows) @ row)) >= sim:
                continue
            selected.append(node)
            selected_rows.append(row)
        if not selected and candidates:
            selected = [max(candidates)[1]]
        return selected

    def _prune(self, node: int, links: list[int], m_max: int) -> list[int]:
        """Re-select ``node``'s neighbours with the diversity heuristic."""
        rows = self._db._matrix[np.asarray(links, dtype=np.int64)]
        sims = rows @ self._db._matrix[node]
        return self._select_neighbours(
            self._db._matrix[node], list(zip(sims.tolist(), links)), m_max
        )

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, top_k: int) -> list[tuple[int, float]]:
        """(row index, similarity) of the top-k live nodes, best first."""
        if self._entry < 0:
            return []
        ep = self._entry
        for layer in range(self._max_level, 0, -1):
            ep = self._greedy_closest(query, ep, layer)
        ef = max(self.ef_search, top_k)
        candidates = self._search_layer(query, [ep], ef, 0)
        tombstones = self._db._tombstones
        live = [(sim, node) for sim, node in candidates if node not in tombstones]
        live.sort(key=lambda item: (-item[0], item[1]))
        return [(node, sim) for sim, node in live[:top_k]]

    def _greedy_closest(self, query: np.ndarray, start: int, layer: int) -> int:
        best = start
        best_sim = float(self._db._matrix[best] @ query)
        improved = True
        while improved:
            improved = False
            links = self._links[best][layer] if layer < len(self._links[best]) else []
            if not links:
                break
            rows = self._db._matrix[np.asarray(links, dtype=np.int64)]
            sims = rows @ query
            position = int(np.argmax(sims))
            if float(sims[position]) > best_sim:
                best = links[position]
                best_sim = float(sims[position])
                improved = True
        return best

    def _search_layer(
        self, query: np.ndarray, entry_points: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Best-first beam search; returns (similarity, node) pairs."""
        matrix = self._db._matrix
        visited = set(entry_points)
        results: list[tuple[float, int]] = []  # min-heap of size <= ef
        frontier: list[tuple[float, int]] = []  # max-heap via negated sims
        for point in entry_points:
            sim = float(matrix[point] @ query)
            heapq.heappush(results, (sim, point))
            heapq.heappush(frontier, (-sim, point))
        while frontier:
            neg_sim, node = heapq.heappop(frontier)
            if len(results) >= ef and -neg_sim < results[0][0]:
                break
            links = self._links[node][layer] if layer < len(self._links[node]) else []
            fresh = [n for n in links if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            sims = matrix[np.asarray(fresh, dtype=np.int64)] @ query
            for position, neighbour in enumerate(fresh):
                sim = float(sims[position])
                if len(results) < ef:
                    heapq.heappush(results, (sim, neighbour))
                    heapq.heappush(frontier, (-sim, neighbour))
                elif sim > results[0][0]:
                    heapq.heapreplace(results, (sim, neighbour))
                    heapq.heappush(frontier, (-sim, neighbour))
        return results
