"""Network condition model between GPU workers and the cache services.

Under normal conditions cache retrieval costs a few tens of milliseconds;
under congestion it can spike to seconds (Fig. 11), and during an outage the
vector database / blob store are unreachable.  Argus monitors the observed
retrieval latency and switches strategy when it degrades.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum

import numpy as np


class NetworkCondition(str, Enum):
    """Coarse health states of the path to the cache services."""

    HEALTHY = "healthy"
    CONGESTED = "congested"
    OUTAGE = "outage"


@dataclass(frozen=True)
class ConditionWindow:
    """A scheduled network condition over a simulated time interval."""

    start_s: float
    end_s: float
    condition: NetworkCondition

    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside this window."""
        return self.start_s <= time_s < self.end_s


class NetworkModel:
    """Produces per-request retrieval latencies given the current condition."""

    def __init__(
        self,
        seed: int = 0,
        healthy_latency_s: float = 0.035,
        congested_latency_s: float = 1.8,
        jitter_fraction: float = 0.25,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.healthy_latency_s = float(healthy_latency_s)
        self.congested_latency_s = float(congested_latency_s)
        self.jitter_fraction = float(jitter_fraction)
        self._windows: list[ConditionWindow] = []
        self._default = NetworkCondition.HEALTHY
        # Flattened timeline: segment start times (sorted) and the condition
        # in force from each start up to the next.  Rebuilt lazily after a
        # schedule change so per-request lookups are a single bisect instead
        # of a scan over every window.
        self._segment_starts: list[float] | None = None
        self._segment_conditions: list[NetworkCondition] = []

    # ------------------------------------------------------------------ #
    # Condition scheduling
    # ------------------------------------------------------------------ #
    def set_default_condition(self, condition: NetworkCondition) -> None:
        """Condition in effect outside every scheduled window."""
        self._default = NetworkCondition(condition)
        self._segment_starts = None

    def schedule_condition(
        self, start_s: float, end_s: float, condition: NetworkCondition
    ) -> None:
        """Schedule a condition window, e.g. a congestion episode."""
        if end_s <= start_s:
            raise ValueError("window end must be after start")
        self._windows.append(ConditionWindow(start_s, end_s, NetworkCondition(condition)))
        self._segment_starts = None

    def _rebuild_segments(self) -> None:
        """Flatten the window list into disjoint segments.

        Each window boundary starts a new segment; a segment's condition is
        decided by replaying the windows in scheduling order (later windows
        win on overlap), so lookups agree exactly with a linear scan.
        """
        boundaries = sorted(
            {window.start_s for window in self._windows}
            | {window.end_s for window in self._windows}
        )
        self._segment_starts = boundaries
        self._segment_conditions = []
        for start in boundaries:
            condition = self._default
            for window in self._windows:
                if window.contains(start):
                    condition = window.condition
            self._segment_conditions.append(condition)

    def condition_at(self, time_s: float) -> NetworkCondition:
        """The network condition in effect at ``time_s``.

        Later-scheduled windows take precedence when windows overlap.
        O(log windows) via bisect over the flattened segment timeline.
        """
        if self._segment_starts is None:
            self._rebuild_segments()
        index = bisect_right(self._segment_starts, time_s) - 1
        if index < 0:
            return self._default
        return self._segment_conditions[index]

    # ------------------------------------------------------------------ #
    # Latency sampling
    # ------------------------------------------------------------------ #
    def retrieval_latency(self, time_s: float) -> float | None:
        """Sample one round-trip retrieval latency at ``time_s``.

        Returns None when the cache services are unreachable (outage).
        """
        condition = self.condition_at(time_s)
        if condition is NetworkCondition.OUTAGE:
            return None
        base = (
            self.healthy_latency_s
            if condition is NetworkCondition.HEALTHY
            else self.congested_latency_s
        )
        jitter = self._rng.normal(0.0, base * self.jitter_fraction)
        return float(max(0.001, base + jitter))

    def probe(self, time_s: float, samples: int = 3) -> float | None:
        """Average of several retrieval latency probes (background checks).

        Used by the strategy switcher while running in SM mode to detect
        that the network has recovered.  Returns None if any probe fails.
        """
        observed = []
        for _ in range(samples):
            latency = self.retrieval_latency(time_s)
            if latency is None:
                return None
            observed.append(latency)
        return float(np.mean(observed))
