"""Noise-state store: the EFS stand-in holding cached intermediate states.

Each entry records, for a previously served prompt, which denoising-step
checkpoints are available.  The store enforces a capacity limit with LRU
eviction (production caches are bounded) and tracks hit/miss statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.simulation.randomness import stable_hash


@dataclass(frozen=True)
class StoredState:
    """Metadata for one cached intermediate noise state."""

    prompt_id: int
    prompt_text: str
    #: Denoising steps at which checkpoints were saved for this prompt.
    available_steps: tuple[int, ...]
    size_kib_per_step: float = 144.0

    def checksum(self) -> int:
        """Content checksum over the fields a corruption would damage.

        Computed at write time and re-verified on retrieval by the cache
        tier: an entry whose stored checksum no longer matches its content
        is poisoned and must not be served.
        """
        payload = f"{self.prompt_id}|{self.prompt_text}|{self.available_steps}"
        return stable_hash(f"noise-state:{payload}")

    @property
    def total_size_kib(self) -> float:
        """Total storage footprint of all checkpoints for this prompt."""
        return self.size_kib_per_step * len(self.available_steps)

    def best_step_for(self, requested_step: int) -> int | None:
        """Largest available checkpoint not exceeding ``requested_step``.

        A request for K=20 can be served from a K=15 checkpoint (fewer steps
        are skipped, quality is at least as good), but not from K=25.
        """
        candidates = [s for s in self.available_steps if s <= requested_step]
        return max(candidates) if candidates else None


@dataclass
class StoreStatistics:
    """Aggregate hit/miss counters for the store."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NoiseStateStore:
    """LRU-bounded store of intermediate noise states keyed by prompt id.

    ``on_evict`` (if given) is called with each evicted prompt id — the
    tenant-namespaced cache uses it to drop the matching vector-index entry
    so quota evictions keep the two structures in sync.
    """

    def __init__(self, capacity_entries: int = 50_000, on_evict=None) -> None:
        if capacity_entries <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_entries = int(capacity_entries)
        self.on_evict = on_evict
        self._entries: OrderedDict[int, StoredState] = OrderedDict()
        self.stats = StoreStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prompt_id: int) -> bool:
        return prompt_id in self._entries

    @property
    def total_size_kib(self) -> float:
        """Total storage used, in KiB."""
        return sum(entry.total_size_kib for entry in self._entries.values())

    def put(self, state: StoredState) -> None:
        """Insert or refresh a cached state, evicting LRU entries if full."""
        if state.prompt_id in self._entries:
            self._entries.move_to_end(state.prompt_id)
        self._entries[state.prompt_id] = state
        self.stats.writes += 1
        while len(self._entries) > self.capacity_entries:
            evicted_id, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_id)

    def get(self, prompt_id: int) -> StoredState | None:
        """Fetch a cached state, updating LRU order and hit statistics."""
        entry = self._entries.get(prompt_id)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(prompt_id)
        self.stats.hits += 1
        return entry

    def peek(self, prompt_id: int) -> StoredState | None:
        """Fetch without touching LRU order or statistics."""
        return self._entries.get(prompt_id)

    def clear(self) -> None:
        """Drop every entry (used when simulating storage loss)."""
        self._entries.clear()
