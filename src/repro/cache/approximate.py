"""The approximate-caching pipeline a GPU worker executes for each AC request.

For a prompt served at AC level K > 0 the worker:

1. embeds the prompt and queries the vector database for the most similar
   previously served prompt;
2. fetches that prompt's intermediate noise state (at the largest cached
   step <= K) from the noise-state store over the network;
3. resumes denoising from that step.

If the similarity is too low, the state is missing, or the network is down,
the request falls back to full generation (effective K = 0).  After serving,
the worker writes back this prompt's states so future similar prompts hit.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cache.network import NetworkModel
from repro.cache.store import NoiseStateStore, StoredState
from repro.cache.vectordb import VectorDatabase
from repro.prompts.embedding import PromptEmbedder
from repro.prompts.generator import Prompt


class _TenantNamespace:
    """One tenant's private slice of the cache: vector index + state store.

    The store is quota-bounded (per-tenant entry quota); quota evictions
    delete the matching vector-index entry through the store's eviction
    hook, so a tenant's churn reshapes only its own working set.
    """

    def __init__(self, dim: int, quota: int | None) -> None:
        self.vectordb = VectorDatabase(dim=dim)
        self.store = NoiseStateStore(
            capacity_entries=quota if quota is not None else 50_000,
            on_evict=self._evict_vector,
        )
        #: prompt id -> vector-index key, for eviction-time deletes.
        self._vdb_keys: dict[int, int] = {}

    def _evict_vector(self, prompt_id: int) -> None:
        key = self._vdb_keys.pop(prompt_id, None)
        if key is not None:
            self.vectordb.delete(key)

    def index(self, prompt_id: int, embedding) -> None:
        self._vdb_keys[prompt_id] = self.vectordb.upsert(
            embedding, payload={"prompt_id": prompt_id}
        )


@dataclass(frozen=True, slots=True)
class RetrievalOutcome:
    """Result of the cache-retrieval phase for one request."""

    requested_skip: int
    #: Denoising steps actually skipped (0 when retrieval failed or missed).
    effective_skip: int
    #: Wall-clock spent on VDB search + state fetch (seconds); 0 when no
    #: retrieval was attempted.
    retrieval_latency_s: float
    hit: bool
    #: Cosine similarity of the matched prompt (None on miss/outage).
    similarity: float | None = None
    #: True when the retrieval failed because the network was unreachable.
    network_failed: bool = False


class ApproximateCache:
    """Coordinates the vector database, noise-state store and network model."""

    def __init__(
        self,
        embedder: PromptEmbedder | None = None,
        vectordb: VectorDatabase | None = None,
        store: NoiseStateStore | None = None,
        network: NetworkModel | None = None,
        similarity_threshold: float = 0.78,
        checkpoint_steps: tuple[int, ...] = (5, 10, 15, 20, 25),
        tenants: tuple = (),
    ) -> None:
        self.embedder = embedder or PromptEmbedder()
        self.vectordb = vectordb or VectorDatabase(dim=self.embedder.dim)
        self.store = store or NoiseStateStore()
        self.network = network or NetworkModel()
        self.similarity_threshold = float(similarity_threshold)
        self.checkpoint_steps = tuple(sorted(checkpoint_steps))
        #: Private namespace per *named* tenant: a tenant's retrievals only
        #: match its own history and its quota bounds only its own entries.
        #: The anonymous tenant "" keeps the shared default index/store, so
        #: an empty tenant set is bit-for-bit the un-namespaced cache.
        self._namespaces: dict[str, _TenantNamespace] = {
            spec.name: _TenantNamespace(dim=self.embedder.dim, quota=spec.cache_quota)
            for spec in tenants
            if spec.name
        }
        #: End-to-end retrieval accounting: every attempt with a positive
        #: requested skip counts, whether it died at the network, the vector
        #: index, the state store or the step check.  (The store-level
        #: ``hit_rate`` only sees lookups that already matched the index.)
        self.retrieval_attempts = 0
        self.retrieval_hits = 0
        self._tenant_attempts: dict[str, int] = defaultdict(int)
        self._tenant_hits: dict[str, int] = defaultdict(int)
        #: Nearest-match memo: (tenant, prompt hash) -> (db mutation counter
        #: at compute time, match).  The index search is a pure function of
        #: the stored vectors, and long traces cycle the same prompts while
        #: the index stops growing once every dataset prompt is cached — so
        #: steady-state retrievals skip the embed + O(entries) scan entirely.
        self._nearest_memo: dict[tuple[str, int], tuple[int, object]] = {}

    # ------------------------------------------------------------------ #
    # Tenant namespacing
    # ------------------------------------------------------------------ #
    def _vectordb_for(self, tenant: str) -> VectorDatabase:
        namespace = self._namespaces.get(tenant)
        return namespace.vectordb if namespace is not None else self.vectordb

    def _store_for(self, tenant: str) -> NoiseStateStore:
        namespace = self._namespaces.get(tenant)
        return namespace.store if namespace is not None else self.store

    def tenant_entries(self, tenant: str) -> int:
        """Entries currently held in one tenant's namespace."""
        return len(self._store_for(tenant))

    # ------------------------------------------------------------------ #
    # Retrieval path
    # ------------------------------------------------------------------ #
    def retrieve(self, prompt: Prompt, requested_skip: int, now_s: float) -> RetrievalOutcome:
        """Attempt to retrieve a noise state enabling ``requested_skip``."""
        outcome = self._retrieve(prompt, requested_skip, now_s)
        if requested_skip > 0:
            self.retrieval_attempts += 1
            self._tenant_attempts[prompt.tenant] += 1
            if outcome.hit:
                self.retrieval_hits += 1
                self._tenant_hits[prompt.tenant] += 1
        return outcome

    @property
    def retrieval_hit_rate(self) -> float:
        """Fraction of retrieval attempts that produced a usable state."""
        if self.retrieval_attempts == 0:
            return 0.0
        return self.retrieval_hits / self.retrieval_attempts

    def retrieval_hit_rate_for(self, tenant: str) -> float:
        """Retrieval hit rate within one tenant's namespace."""
        attempts = self._tenant_attempts.get(tenant, 0)
        if attempts == 0:
            return 0.0
        return self._tenant_hits.get(tenant, 0) / attempts

    def _retrieve(self, prompt: Prompt, requested_skip: int, now_s: float) -> RetrievalOutcome:
        if requested_skip <= 0:
            return RetrievalOutcome(
                requested_skip=0, effective_skip=0, retrieval_latency_s=0.0, hit=False
            )

        latency = self.network.retrieval_latency(now_s)
        if latency is None:
            return RetrievalOutcome(
                requested_skip=requested_skip,
                effective_skip=0,
                retrieval_latency_s=0.0,
                hit=False,
                network_failed=True,
            )

        vectordb = self._vectordb_for(prompt.tenant)
        memo_key = (prompt.tenant, prompt.content_hash())
        cached = self._nearest_memo.get(memo_key)
        if cached is not None and cached[0] == vectordb.mutations:
            match = cached[1]
        else:
            match = vectordb.nearest(self.embedder.embed(prompt))
            self._nearest_memo[memo_key] = (vectordb.mutations, match)
        if match is None or match.similarity < self.similarity_threshold:
            return RetrievalOutcome(
                requested_skip=requested_skip,
                effective_skip=0,
                retrieval_latency_s=latency,
                hit=False,
                similarity=None if match is None else match.similarity,
            )

        cached_prompt_id = int(match.payload.get("prompt_id", -1))
        state = self._store_for(prompt.tenant).get(cached_prompt_id)
        if state is None:
            return RetrievalOutcome(
                requested_skip=requested_skip,
                effective_skip=0,
                retrieval_latency_s=latency,
                hit=False,
                similarity=match.similarity,
            )

        usable_step = state.best_step_for(requested_skip)
        if usable_step is None:
            return RetrievalOutcome(
                requested_skip=requested_skip,
                effective_skip=0,
                retrieval_latency_s=latency,
                hit=False,
                similarity=match.similarity,
            )
        return RetrievalOutcome(
            requested_skip=requested_skip,
            effective_skip=usable_step,
            retrieval_latency_s=latency,
            hit=True,
            similarity=match.similarity,
        )

    # ------------------------------------------------------------------ #
    # Write-back path
    # ------------------------------------------------------------------ #
    def _store_embedded(self, prompt: Prompt, embedding) -> None:
        """Index one prompt's embedding and record its noise states (in the
        prompt's tenant namespace)."""
        namespace = self._namespaces.get(prompt.tenant)
        if namespace is not None:
            namespace.index(prompt.prompt_id, embedding)
        else:
            self.vectordb.upsert(embedding, payload={"prompt_id": prompt.prompt_id})
        self._store_for(prompt.tenant).put(
            StoredState(
                prompt_id=prompt.prompt_id,
                prompt_text=prompt.text,
                available_steps=self.checkpoint_steps,
            )
        )

    def store_states(self, prompt: Prompt) -> None:
        """Record the intermediate states produced while serving ``prompt``.

        Re-serving a prompt that is already cached is a no-op so the vector
        index does not accumulate duplicates.
        """
        if self._store_for(prompt.tenant).peek(prompt.prompt_id) is not None:
            return
        self._store_embedded(prompt, self.embedder.embed(prompt))

    def warm(self, prompts: list[Prompt]) -> None:
        """Pre-populate the cache with a prompt history.

        Embeddings are computed through the embedder's vectorized batch
        path; already-cached prompts (and duplicates within the batch) are
        skipped exactly as per-prompt :meth:`store_states` calls would.
        """
        fresh: list[Prompt] = []
        seen: set[tuple[str, int]] = set()
        for prompt in prompts:
            key = (prompt.tenant, prompt.prompt_id)
            if key in seen or self._store_for(prompt.tenant).peek(prompt.prompt_id) is not None:
                continue
            seen.add(key)
            fresh.append(prompt)
        if not fresh:
            return
        embeddings = self.embedder.embed_batch(fresh)
        for prompt, embedding in zip(fresh, embeddings):
            self._store_embedded(prompt, embedding)

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def probe_network(self, now_s: float) -> float | None:
        """Background network probe used by the strategy switcher."""
        return self.network.probe(now_s)

    def store_counts(self) -> tuple[int, int]:
        """(hits, misses) over state-store lookups, all namespaces combined."""
        hits = self.store.stats.hits
        misses = self.store.stats.misses
        for namespace in self._namespaces.values():
            hits += namespace.store.stats.hits
            misses += namespace.store.stats.misses
        return hits, misses

    @property
    def hit_rate(self) -> float:
        """Fraction of store lookups that hit (all namespaces combined)."""
        hits, misses = self.store_counts()
        total = hits + misses
        return hits / total if total else 0.0
