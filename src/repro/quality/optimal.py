"""Optimal-quality and optimal-model definitions (§3 of the paper).

An image is *optimal quality* when its PickScore is within ``θ = 0.9`` of the
best score achievable for the prompt across all levels; the *optimal model*
(or level) for a prompt is the fastest level that still yields an optimal
quality image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt
from repro.quality.pickscore import PickScoreModel

#: θ from the paper: optimal quality means PickScore >= θ * best PickScore.
OPTIMALITY_THRESHOLD = 0.9


@dataclass(frozen=True)
class OptimalChoice:
    """The optimal level for a prompt, with supporting scores."""

    prompt_id: int
    strategy: Strategy
    optimal_rank: int
    scores: tuple[float, ...]

    @property
    def best_score(self) -> float:
        """Best PickScore across all levels."""
        return max(self.scores)

    @property
    def optimal_score(self) -> float:
        """PickScore at the optimal level."""
        return self.scores[self.optimal_rank]


class OptimalModelSelector:
    """Finds the optimal (fastest acceptable) level for prompts."""

    def __init__(
        self,
        pickscore: PickScoreModel,
        threshold: float = OPTIMALITY_THRESHOLD,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.pickscore = pickscore
        self.threshold = float(threshold)

    def optimal_choice(self, prompt: Prompt, strategy: Strategy | str) -> OptimalChoice:
        """Compute the optimal level with full score detail."""
        strategy = Strategy(strategy)
        scores = self.pickscore.score_all_levels(prompt, strategy)
        best = max(scores)
        cutoff = self.threshold * best
        optimal_rank = 0
        for rank in range(len(scores) - 1, -1, -1):
            if scores[rank] >= cutoff:
                optimal_rank = rank
                break
        return OptimalChoice(
            prompt_id=prompt.prompt_id,
            strategy=strategy,
            optimal_rank=optimal_rank,
            scores=tuple(scores),
        )

    def optimal_rank(self, prompt: Prompt, strategy: Strategy | str) -> int:
        """The fastest rank that still produces an optimal-quality image."""
        return self.optimal_choice(prompt, strategy).optimal_rank

    def optimal_ranks(self, prompts: list[Prompt], strategy: Strategy | str) -> list[int]:
        """Optimal ranks for a list of prompts."""
        return [self.optimal_rank(p, strategy) for p in prompts]

    def affinity_distribution(
        self, prompts: list[Prompt], strategy: Strategy | str
    ) -> np.ndarray:
        """Fraction of prompts whose optimal level is each rank (Fig. 8).

        Index ``r`` of the returned array is the fraction of prompts for
        which rank ``r`` is the optimal level.
        """
        num_levels = self.pickscore.num_levels
        counts = np.zeros(num_levels, dtype=np.float64)
        for prompt in prompts:
            counts[self.optimal_rank(prompt, strategy)] += 1
        if counts.sum() == 0:
            return counts
        return counts / counts.sum()

    def affinity_distribution_excluding(
        self,
        prompts: list[Prompt],
        strategy: Strategy | str,
        excluded_ranks: set[int],
    ) -> np.ndarray:
        """Affinity distribution when some ranks are unavailable.

        Reproduces the middle/right panels of Fig. 8 where M1 (and M1+M2)
        are eliminated: each prompt is re-assigned to the fastest remaining
        rank that still clears the optimality threshold, or the best
        remaining rank when none does.
        """
        strategy = Strategy(strategy)
        num_levels = self.pickscore.num_levels
        available = [r for r in range(num_levels) if r not in excluded_ranks]
        if not available:
            raise ValueError("cannot exclude every rank")
        counts = np.zeros(num_levels, dtype=np.float64)
        for prompt in prompts:
            scores = self.pickscore.score_all_levels(prompt, strategy)
            cutoff = self.threshold * max(scores)
            chosen = None
            for rank in sorted(available, reverse=True):
                if scores[rank] >= cutoff:
                    chosen = rank
                    break
            if chosen is None:
                chosen = max(available, key=lambda r: scores[r])
            counts[chosen] += 1
        return counts / counts.sum() if counts.sum() else counts
