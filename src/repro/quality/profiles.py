"""Per-level quality/throughput profiles and the Pareto frontier (Fig. 13).

The solver (Eq. 1) needs, for every approximation level, a profiled average
quality ``q_l`` and peak throughput.  This module computes those profiles
from a prompt sample and also builds the 17-model quality-vs-throughput
scatter the paper plots in Fig. 13 (models A-Q plus their AC variants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.prompts.generator import Prompt
from repro.quality.pickscore import PickScoreModel


@dataclass(frozen=True)
class LevelQualityProfile:
    """Profiled quality and throughput for one approximation level."""

    strategy: Strategy
    rank: int
    name: str
    mean_pickscore: float
    median_pickscore: float
    latency_s: float
    peak_throughput_qpm: float

    @property
    def pickscore_per_latency(self) -> float:
        """Quality per second of inference, the efficiency metric in Fig. 9."""
        if self.latency_s <= 0:
            return 0.0
        return self.mean_pickscore / self.latency_s


@dataclass(frozen=True)
class ParetoPoint:
    """A point on the Fig. 13 quality-throughput scatter."""

    name: str
    family: str
    throughput_ipm: float
    median_pickscore: float


class QualityProfiler:
    """Profiles average quality of each level over a prompt sample."""

    def __init__(self, zoo: ModelZoo, pickscore: PickScoreModel) -> None:
        self.zoo = zoo
        self.pickscore = pickscore

    def profile_level(
        self, level: ApproximationLevel, prompts: list[Prompt]
    ) -> LevelQualityProfile:
        """Profile one approximation level on a prompt sample."""
        scores = [self.pickscore.score(p, level.strategy, level.rank) for p in prompts]
        scores_arr = np.array(scores) if scores else np.array([0.0])
        return LevelQualityProfile(
            strategy=level.strategy,
            rank=level.rank,
            name=level.name,
            mean_pickscore=float(scores_arr.mean()),
            median_pickscore=float(np.median(scores_arr)),
            latency_s=level.latency_s,
            peak_throughput_qpm=level.peak_throughput_qpm,
        )

    def profile_strategy(
        self, strategy: Strategy | str, prompts: list[Prompt]
    ) -> list[LevelQualityProfile]:
        """Profiles for every level of a strategy, ordered by rank."""
        return [self.profile_level(level, prompts) for level in self.zoo.levels(strategy)]

    def quality_vector(self, strategy: Strategy | str, prompts: list[Prompt]) -> np.ndarray:
        """The q_l vector the ILP solver maximises against (Eq. 1)."""
        profiles = self.profile_strategy(strategy, prompts)
        return np.array([p.mean_pickscore for p in profiles])

    def throughput_vector(self, strategy: Strategy | str) -> np.ndarray:
        """Peak per-worker throughput (QPM) of every level."""
        return np.array([level.peak_throughput_qpm for level in self.zoo.levels(strategy)])

    # ------------------------------------------------------------------ #
    # Fig. 13: quality-throughput scatter and Pareto frontier
    # ------------------------------------------------------------------ #
    def pareto_scatter(self, prompts: list[Prompt]) -> list[ParetoPoint]:
        """Quality-vs-throughput points for SM variants and AC levels.

        SM variants are profiled with the SM quality model and labelled with
        their model family; AC levels use the AC quality model (same SD-XL
        base).  The paper additionally includes quantised variants; we model
        those as slightly faster, slightly lower-quality copies of the SM
        variants, matching how §4.2 treats them ("quantized variants ... are
        also treated as valid approximation levels").
        """
        points: list[ParetoPoint] = []
        for profile in self.profile_strategy(Strategy.SM, prompts):
            points.append(
                ParetoPoint(
                    name=profile.name,
                    family="SM",
                    throughput_ipm=profile.peak_throughput_qpm,
                    median_pickscore=profile.median_pickscore,
                )
            )
            points.append(
                ParetoPoint(
                    name=f"{profile.name}-int8",
                    family="quantized",
                    throughput_ipm=profile.peak_throughput_qpm * 1.18,
                    median_pickscore=profile.median_pickscore - 0.45,
                )
            )
        for profile in self.profile_strategy(Strategy.AC, prompts):
            points.append(
                ParetoPoint(
                    name=profile.name,
                    family="AC",
                    throughput_ipm=profile.peak_throughput_qpm,
                    median_pickscore=profile.median_pickscore,
                )
            )
        return points


def pareto_frontier(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Subset of points not dominated in (throughput, quality)."""
    frontier: list[ParetoPoint] = []
    for candidate in points:
        dominated = any(
            other.throughput_ipm >= candidate.throughput_ipm
            and other.median_pickscore >= candidate.median_pickscore
            and (
                other.throughput_ipm > candidate.throughput_ipm
                or other.median_pickscore > candidate.median_pickscore
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.throughput_ipm)
