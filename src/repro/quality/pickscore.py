"""PickScore simulator.

``PickScoreModel.score(prompt, strategy, rank)`` returns the PickScore of the
image that the given approximation level would produce for the prompt.  The
model encodes the paper's Observations 1-3:

* every prompt has a latent tolerance rank: all levels up to that rank produce
  images within the optimal-quality band (>= 0.9x the best score);
* beyond the tolerance, quality degrades super-linearly with the rank gap;
* the tolerance is a (noisy) function of prompt complexity, so a classifier
  can learn it from prompt text.

Scores are deterministic per (prompt text, strategy, rank) so repeated
simulation runs agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt
from repro.simulation.randomness import stable_hash

#: Typical PickScore of a best-possible SD-XL generation (paper reports ~21).
_BASE_SCORE_MEAN = 21.5
_BASE_SCORE_STD = 0.9

#: Per-rank-gap degradation, super-linear exponent (Observation in §4.3 that
#: degradation grows super-linearly with the speed gap).
_DEGRADATION_PER_GAP = 0.055
_DEGRADATION_EXPONENT = 1.3

#: Fraction of the best score retained when exactly at the tolerance edge.
_TOLERABLE_FLOOR = 0.955


@dataclass(frozen=True)
class QualitySample:
    """The quality outcome of generating a prompt at one level."""

    prompt_id: int
    strategy: Strategy
    rank: int
    pickscore: float
    best_pickscore: float

    @property
    def relative_quality(self) -> float:
        """PickScore relative to the best achievable for this prompt."""
        if self.best_pickscore <= 0:
            return 0.0
        return self.pickscore / self.best_pickscore


class PickScoreModel:
    """Deterministic per-prompt quality model over approximation levels."""

    def __init__(
        self,
        num_levels: int = 6,
        seed: int = 0,
        tolerance_noise: float = 0.35,
    ) -> None:
        """Args:
            num_levels: number of approximation levels per strategy.
            seed: global seed mixed into every per-prompt hash.
            tolerance_noise: standard deviation (in rank units) of the noise
                added to the complexity-derived tolerance; this is what keeps
                the classifier's achievable accuracy below 100%.
        """
        self.num_levels = int(num_levels)
        self.seed = int(seed)
        self.tolerance_noise = float(tolerance_noise)
        # Scores are deterministic per (prompt text, strategy, rank); memoise
        # them because the serving loop re-evaluates the same prompts often.
        self._best_cache: dict[int, float] = {}
        self._tolerance_cache: dict[tuple[int, Strategy], int] = {}
        self._score_cache: dict[tuple[int, Strategy, int], float] = {}

    # ------------------------------------------------------------------ #
    # Per-prompt latent quantities
    # ------------------------------------------------------------------ #
    def _prompt_rng(self, prompt: Prompt, salt: str) -> np.random.Generator:
        key = stable_hash(f"{self.seed}:{salt}:{prompt.text}") % (1 << 32)
        return np.random.default_rng(key)

    def best_score(self, prompt: Prompt) -> float:
        """PickScore of the best (least approximate) generation for a prompt."""
        key = prompt.content_hash()
        if key not in self._best_cache:
            rng = self._prompt_rng(prompt, "best")
            self._best_cache[key] = float(
                np.clip(rng.normal(_BASE_SCORE_MEAN, _BASE_SCORE_STD), 18.5, 24.5)
            )
        return self._best_cache[key]

    def tolerance_rank(self, prompt: Prompt, strategy: Strategy | str = Strategy.AC) -> int:
        """Highest approximation rank the prompt tolerates without degradation.

        Complexity 0 maps to (almost) full tolerance, complexity 1 to needing
        the exact model; AC tolerances are slightly more permissive than SM
        ones, reflecting the paper's finding that AC variants dominate the
        Pareto frontier (Fig. 13).
        """
        strategy = Strategy(strategy)
        key = (prompt.content_hash(), strategy)
        if key not in self._tolerance_cache:
            rng = self._prompt_rng(prompt, f"tolerance-{strategy.value}")
            max_rank = self.num_levels - 1
            permissiveness = 0.5 if strategy is Strategy.AC else 0.0
            raw = (1.0 - prompt.complexity) * max_rank + permissiveness
            noisy = raw + rng.normal(0.0, self.tolerance_noise)
            # Scalar min/max rather than np.clip: same value, none of the
            # ufunc dispatch overhead on this per-prompt hot path.
            self._tolerance_cache[key] = int(min(max(round(noisy), 0), max_rank))
        return self._tolerance_cache[key]

    # ------------------------------------------------------------------ #
    # Scores
    # ------------------------------------------------------------------ #
    def score(self, prompt: Prompt, strategy: Strategy | str, rank: int) -> float:
        """PickScore of the image generated at ``rank`` under ``strategy``."""
        if strategy.__class__ is not Strategy:
            strategy = Strategy(strategy)
        if rank < 0 or rank >= self.num_levels:
            raise ValueError(f"rank {rank} outside [0, {self.num_levels - 1}]")
        key = (prompt.content_hash(), strategy, rank)
        cached = self._score_cache.get(key)
        if cached is not None:
            return cached
        best = self.best_score(prompt)
        tolerance = self.tolerance_rank(prompt, strategy)
        rng = self._prompt_rng(prompt, f"score-{strategy.value}-{rank}")
        if rank <= tolerance:
            factor = _TOLERABLE_FLOOR + (1.0 - _TOLERABLE_FLOOR) * rng.random()
            score = best * factor
        else:
            gap = rank - tolerance
            degradation = _DEGRADATION_PER_GAP * gap ** _DEGRADATION_EXPONENT
            jitter = rng.normal(0.0, 0.01)
            factor = min(max(0.9 - degradation + jitter, 0.45), 0.9)
            score = best * float(factor)
        self._score_cache[key] = float(score)
        return float(score)

    def sample(self, prompt: Prompt, strategy: Strategy | str, rank: int) -> QualitySample:
        """Full quality sample including the best achievable score."""
        strategy = Strategy(strategy)
        return QualitySample(
            prompt_id=prompt.prompt_id,
            strategy=strategy,
            rank=rank,
            pickscore=self.score(prompt, strategy, rank),
            best_pickscore=self.best_score(prompt),
        )

    def score_all_levels(self, prompt: Prompt, strategy: Strategy | str) -> list[float]:
        """PickScores at every rank for one prompt."""
        return [self.score(prompt, strategy, rank) for rank in range(self.num_levels)]

    def mean_score(
        self, prompts: list[Prompt], strategy: Strategy | str, rank: int
    ) -> float:
        """Average PickScore of a prompt population served at a fixed rank."""
        if not prompts:
            return 0.0
        return float(np.mean([self.score(p, strategy, rank) for p in prompts]))
