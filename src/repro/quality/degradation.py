"""Empirical degradation profiling: the d(l', l) input to ODA (Eq. 2).

Argus does not assume a closed-form degradation model; it profiles, for each
pair of approximation levels (target l', affinity l), the expected PickScore
loss when a prompt whose optimal level is ``l`` is instead served at ``l'``.
ODA consumes this matrix when deciding where to shift excess load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel


@dataclass(frozen=True)
class DegradationProfile:
    """Expected quality loss for shifting prompts between levels.

    ``matrix[l_prime, l]`` is the mean PickScore drop (non-negative) when a
    prompt with affinity for level ``l`` is served at level ``l_prime``.
    Shifting to a slower / less approximate level (``l_prime < l``) never
    degrades quality, so those entries are zero.
    """

    strategy: Strategy
    matrix: np.ndarray
    num_prompts: int

    @property
    def num_levels(self) -> int:
        """Number of approximation levels covered by the profile."""
        return self.matrix.shape[0]

    def loss(self, target_rank: int, affinity_rank: int) -> float:
        """Expected PickScore loss of serving affinity ``affinity_rank`` at
        ``target_rank``."""
        return float(self.matrix[target_rank, affinity_rank])

    def is_superlinear(self) -> bool:
        """Check the paper's premise: loss grows super-linearly with the gap.

        The loss of the first out-of-tolerance step includes the fixed drop
        below the optimal-quality band, so convexity is checked from gap >= 1
        onwards: increments between successive gaps must not shrink.
        """
        for affinity in range(self.num_levels):
            losses = [self.matrix[t, affinity] for t in range(affinity + 1, self.num_levels)]
            increments = np.diff(losses)
            if len(increments) >= 2 and np.any(np.diff(increments) < -1e-6):
                return False
            if len(losses) >= 2 and not np.all(np.diff(losses) >= -1e-9):
                return False
        return True


def profile_degradation(
    prompts: list[Prompt],
    pickscore: PickScoreModel,
    strategy: Strategy | str,
    selector: OptimalModelSelector | None = None,
) -> DegradationProfile:
    """Profile the degradation matrix from a prompt sample.

    Args:
        prompts: prompt sample used for profiling (the paper uses 10k
            DiffusionDB prompts).
        pickscore: the quality model.
        strategy: which approximation strategy to profile.
        selector: optional pre-built optimal-model selector.

    Returns:
        A :class:`DegradationProfile` whose matrix rows are target levels and
        columns are affinity levels.
    """
    strategy = Strategy(strategy)
    selector = selector or OptimalModelSelector(pickscore)
    num_levels = pickscore.num_levels
    sums = np.zeros((num_levels, num_levels), dtype=np.float64)
    counts = np.zeros(num_levels, dtype=np.float64)

    for prompt in prompts:
        choice = selector.optimal_choice(prompt, strategy)
        affinity = choice.optimal_rank
        counts[affinity] += 1
        affinity_score = choice.scores[affinity]
        for target in range(num_levels):
            loss = max(0.0, affinity_score - choice.scores[target])
            if target <= affinity:
                loss = 0.0
            sums[target, affinity] += loss

    matrix = np.zeros_like(sums)
    for affinity in range(num_levels):
        if counts[affinity] > 0:
            matrix[:, affinity] = sums[:, affinity] / counts[affinity]
        else:
            # No observed prompt with this affinity: fall back to a smooth
            # super-linear default so ODA still has a usable penalty.
            for target in range(num_levels):
                gap = max(0, target - affinity)
                matrix[target, affinity] = 1.6 * gap ** 1.35
    return DegradationProfile(strategy=strategy, matrix=matrix, num_prompts=len(prompts))
