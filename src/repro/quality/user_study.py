"""User-study simulator (§5.4 / §5.7 of the paper).

The paper surveys 186 participants who rate generated images for prompt
relevance and overall quality.  We model a participant's "suitable" vote as
a Bernoulli draw whose probability is a logistic function of the image's
relative PickScore, so systems that serve more prompts near their optimal
quality collect more votes.  The simulator reproduces the *ranking* of
systems, not the exact human percentages.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StudyResult:
    """Aggregate votes for one serving system."""

    system: str
    prompt_relevance_rate: float
    overall_quality_rate: float
    num_votes: int

    def as_tuple(self) -> tuple[float, float]:
        """(relevance, quality) pair, convenient for ranking assertions."""
        return (self.prompt_relevance_rate, self.overall_quality_rate)


class UserStudySimulator:
    """Simulates suitability votes from relative-quality samples."""

    def __init__(
        self,
        num_participants: int = 186,
        seed: int = 0,
        relevance_midpoint: float = 0.86,
        quality_midpoint: float = 0.90,
        steepness: float = 22.0,
    ) -> None:
        if num_participants <= 0:
            raise ValueError("num_participants must be positive")
        self.num_participants = int(num_participants)
        self.seed = int(seed)
        self.relevance_midpoint = float(relevance_midpoint)
        self.quality_midpoint = float(quality_midpoint)
        self.steepness = float(steepness)

    def _vote_probability(self, relative_quality: float, midpoint: float) -> float:
        return float(1.0 / (1.0 + np.exp(-self.steepness * (relative_quality - midpoint))))

    def run(self, system: str, relative_qualities: list[float]) -> StudyResult:
        """Simulate the study for one system.

        Args:
            system: display name of the serving system.
            relative_qualities: per-served-image PickScore / best-PickScore
                ratios produced by that system under load.
        """
        if not relative_qualities:
            raise ValueError("relative_qualities must be non-empty")
        # crc32, not hash(): string hashes are salted per process, which
        # would make repeated studies of the same system disagree.  Pinned
        # (not stable_hash) for the same fixture reason as TraceLibrary._rng.
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + zlib.crc32(system.encode("utf-8"))) % (1 << 32)
        )
        qualities = np.asarray(relative_qualities, dtype=np.float64)
        relevance_votes = 0
        quality_votes = 0
        total = 0
        for _ in range(self.num_participants):
            sampled = rng.choice(qualities, size=min(10, len(qualities)))
            for rq in sampled:
                total += 1
                if rng.random() < self._vote_probability(rq, self.relevance_midpoint):
                    relevance_votes += 1
                if rng.random() < self._vote_probability(rq, self.quality_midpoint):
                    quality_votes += 1
        return StudyResult(
            system=system,
            prompt_relevance_rate=relevance_votes / total,
            overall_quality_rate=quality_votes / total,
            num_votes=total,
        )

    def compare(self, samples: dict[str, list[float]]) -> list[StudyResult]:
        """Run the study for several systems, sorted best-first by relevance."""
        results = [self.run(system, values) for system, values in samples.items()]
        return sorted(results, key=lambda r: r.prompt_relevance_rate, reverse=True)
