"""Quality substrate: the PickScore simulator and everything built on it.

The paper measures image quality with PickScore.  Without real image
generation we model PickScore(prompt, approximation level) directly: each
prompt carries a latent approximation *tolerance* derived from its
complexity; quality is flat up to the tolerance and degrades super-linearly
beyond it.  The model is calibrated so the aggregate numbers the paper
reports (optimal-vs-random gaps, ODA redistribution gains, Pareto frontier
shape) are reproduced.
"""

from repro.quality.degradation import DegradationProfile, profile_degradation
from repro.quality.optimal import OPTIMALITY_THRESHOLD, OptimalModelSelector
from repro.quality.pickscore import PickScoreModel
from repro.quality.profiles import LevelQualityProfile, QualityProfiler, pareto_frontier
from repro.quality.user_study import UserStudySimulator

__all__ = [
    "DegradationProfile",
    "LevelQualityProfile",
    "OPTIMALITY_THRESHOLD",
    "OptimalModelSelector",
    "PickScoreModel",
    "QualityProfiler",
    "UserStudySimulator",
    "pareto_frontier",
    "profile_degradation",
]
