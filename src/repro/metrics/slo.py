"""Latency SLO policy.

The paper defines the latency SLO as 3x the inference latency of the largest
model (SD-XL), following Proteus.  A request violates the SLO when its
end-to-end latency (queueing + service) exceeds that budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.variants import SM_VARIANTS


#: Named SLO classes for multi-tenant serving: each maps to a latency-budget
#: multiplier over the largest model's latency (the same unit as
#: :attr:`SloPolicy.multiplier`).  ``standard`` is special-cased to *inherit*
#: the deployment's configured policy rather than pin 3.0, so a tenant with
#: the default class always shares the global budget exactly.
SLO_CLASSES: dict[str, float] = {
    "gold": 2.0,
    "standard": 3.0,
    "best-effort": 6.0,
}


@dataclass(frozen=True)
class SloPolicy:
    """Latency service-level objective."""

    #: Multiplier over the largest model's single-image latency.
    multiplier: float = 3.0
    #: Latency of the largest model (seconds); defaults to SD-XL on A100.
    base_latency_s: float = SM_VARIANTS[0].latency_a100_s

    def __post_init__(self) -> None:
        if self.multiplier <= 0 or self.base_latency_s <= 0:
            raise ValueError("multiplier and base latency must be positive")

    @property
    def budget_s(self) -> float:
        """Maximum acceptable end-to-end latency in seconds."""
        return self.multiplier * self.base_latency_s

    def is_violation(self, latency_s: float) -> bool:
        """Whether a request's latency violates the SLO."""
        return latency_s > self.budget_s

    def violation_mask(self, latencies_s) -> "np.ndarray":
        """Vectorized :meth:`is_violation` over an array of latencies.

        This is the single source of the violation predicate for columnar
        consumers (the metrics collector); it must stay in lockstep with
        the scalar form above.
        """
        return np.asarray(latencies_s) > self.budget_s

    def violation_ratio(self, latencies_s) -> float:
        """Fraction of requests whose latency violates the SLO.

        Accepts any array-like (list, tuple, numpy array, columnar view —
        truth-testing a numpy array raises, so no ``if not latencies_s``
        here) and always returns a plain Python float.
        """
        latencies = np.asarray(latencies_s, dtype=np.float64)
        if latencies.size == 0:
            return 0.0
        violations = int(np.count_nonzero(self.violation_mask(latencies)))
        return float(violations / latencies.size)
