"""Time-series metrics collection for serving experiments."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.requests import CompletedRequest
from repro.metrics.slo import SloPolicy


@dataclass(frozen=True)
class ServedSample:
    """One served request annotated with its quality outcome."""

    completed: CompletedRequest
    pickscore: float
    best_pickscore: float

    @property
    def relative_quality(self) -> float:
        """PickScore relative to the best achievable for the prompt."""
        if self.best_pickscore <= 0:
            return 0.0
        return self.pickscore / self.best_pickscore

    @property
    def latency_s(self) -> float:
        """End-to-end latency of the request."""
        return self.completed.latency_s

    @property
    def batch_size(self) -> int:
        """Size of the GPU pass that served this request."""
        return self.completed.batch_size


@dataclass
class MinuteStats:
    """Aggregated statistics for one simulated minute."""

    minute: int
    offered_qpm: float = 0.0
    arrivals: int = 0
    completions: int = 0
    slo_violations: int = 0
    pickscores: list[float] = field(default_factory=list)
    relative_qualities: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    #: Time-weighted mean workers in rotation this minute (0 when the run
    #: did not attach fleet accounting).
    fleet_workers: float = 0.0
    #: Time-weighted mean workers per GPU type this minute.
    fleet_by_gpu: dict[str, float] = field(default_factory=dict)

    @property
    def served_qpm(self) -> float:
        """Completions during this minute (the served throughput)."""
        return float(self.completions)

    @property
    def violation_ratio(self) -> float:
        """Fraction of completions this minute that violated the SLO."""
        if self.completions == 0:
            return 0.0
        return self.slo_violations / self.completions

    @property
    def mean_pickscore(self) -> float:
        """Mean PickScore of completions this minute (0 when none)."""
        return float(np.mean(self.pickscores)) if self.pickscores else 0.0

    @property
    def mean_relative_quality(self) -> float:
        """Mean relative quality of completions this minute (0 when none)."""
        return float(np.mean(self.relative_qualities)) if self.relative_qualities else 0.0


class MetricsCollector:
    """Collects per-request samples and aggregates them per minute."""

    def __init__(self, slo: SloPolicy | None = None) -> None:
        self.slo = slo or SloPolicy()
        self.samples: list[ServedSample] = []
        self._minutes: dict[int, MinuteStats] = {}
        self._arrivals_by_minute: dict[int, int] = defaultdict(int)
        self.dropped_requests = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_arrival(self, arrival_time_s: float) -> None:
        """Record an offered request (whether or not it completes)."""
        self._arrivals_by_minute[int(arrival_time_s // 60)] += 1

    def record_drop(self) -> None:
        """Record a request the system could not serve at all."""
        self.dropped_requests += 1

    def record_completion(
        self, completed: CompletedRequest, pickscore: float, best_pickscore: float
    ) -> ServedSample:
        """Record a served request with its quality outcome."""
        sample = ServedSample(completed=completed, pickscore=pickscore, best_pickscore=best_pickscore)
        self.samples.append(sample)
        minute = int(completed.completion_time_s // 60)
        stats = self._minutes.setdefault(minute, MinuteStats(minute=minute))
        stats.completions += 1
        stats.pickscores.append(pickscore)
        stats.relative_qualities.append(sample.relative_quality)
        stats.latencies.append(sample.latency_s)
        if self.slo.is_violation(sample.latency_s):
            stats.slo_violations += 1
        return sample

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def minute_series(
        self,
        offered: dict[int, float] | None = None,
        fleet: dict[int, "object"] | None = None,
    ) -> list[MinuteStats]:
        """Per-minute statistics, sorted by minute.

        Args:
            offered: optional per-minute offered QPM to attach (e.g. from the
                trace); arrivals recorded via :meth:`record_arrival` are used
                when absent.
            fleet: optional per-minute fleet composition to attach, mapping
                minute -> :class:`repro.cluster.cluster.FleetMinute` (from
                ``GpuCluster.fleet_minute_series``).
        """
        minutes = set(self._minutes) | set(self._arrivals_by_minute)
        if offered:
            minutes |= set(offered)
        if fleet:
            minutes |= set(fleet)
        series = []
        for minute in sorted(minutes):
            stats = self._minutes.get(minute, MinuteStats(minute=minute))
            stats.arrivals = self._arrivals_by_minute.get(minute, 0)
            stats.offered_qpm = (
                offered.get(minute, float(stats.arrivals)) if offered else float(stats.arrivals)
            )
            if fleet and minute in fleet:
                stats.fleet_workers = fleet[minute].mean_workers
                stats.fleet_by_gpu = dict(fleet[minute].by_gpu)
            series.append(stats)
        return series

    # ------------------------------------------------------------------ #
    # Scalar summaries
    # ------------------------------------------------------------------ #
    @property
    def total_completions(self) -> int:
        """Total requests served."""
        return len(self.samples)

    @property
    def total_arrivals(self) -> int:
        """Total requests offered."""
        return sum(self._arrivals_by_minute.values())

    def slo_violation_ratio(self) -> float:
        """Fraction of served requests violating the latency SLO."""
        if not self.samples:
            return 0.0
        return self.slo.violation_ratio([s.latency_s for s in self.samples])

    def effective_accuracy(self) -> float:
        """Mean PickScore over requests completed within the SLO (§5.1)."""
        within = [s.pickscore for s in self.samples if not self.slo.is_violation(s.latency_s)]
        return float(np.mean(within)) if within else 0.0

    def mean_pickscore(self) -> float:
        """Mean PickScore over all served requests."""
        return float(np.mean([s.pickscore for s in self.samples])) if self.samples else 0.0

    def mean_relative_quality(self) -> float:
        """Mean relative quality over all served requests."""
        if not self.samples:
            return 0.0
        return float(np.mean([s.relative_quality for s in self.samples]))

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in seconds over served requests."""
        if not self.samples:
            return 0.0
        return float(np.percentile([s.latency_s for s in self.samples], percentile))

    def relative_qualities(self) -> list[float]:
        """Per-request relative qualities (input to the user-study simulator)."""
        return [s.relative_quality for s in self.samples]
