"""Time-series metrics collection for serving experiments.

The collector stores per-request outcomes **columnar**: latency, PickScore,
best PickScore and completion minute live in growable contiguous float
arrays instead of one Python object per request.  Scalar summaries
(`latency_percentile`, `effective_accuracy`, ...) are single vectorized
passes over those arrays, and per-minute aggregates are maintained
incrementally at record time, so nothing ever rescans N Python objects.
At a million completions this is roughly an order of magnitude less memory
than the previous object-list design and 10-100x faster to summarise.

The :class:`ServedSample` API survives as a lazy view (``collector.samples``
builds samples on access), so existing callers keep working unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.requests import CompletedRequest
from repro.metrics.slo import SloPolicy


@dataclass(frozen=True, slots=True)
class ServedSample:
    """One served request annotated with its quality outcome."""

    completed: CompletedRequest
    pickscore: float
    best_pickscore: float

    @property
    def relative_quality(self) -> float:
        """PickScore relative to the best achievable for the prompt."""
        if self.best_pickscore <= 0:
            return 0.0
        return self.pickscore / self.best_pickscore

    @property
    def latency_s(self) -> float:
        """End-to-end latency of the request."""
        return self.completed.latency_s

    @property
    def batch_size(self) -> int:
        """Size of the GPU pass that served this request."""
        return self.completed.batch_size


class _Column:
    """Growable contiguous numpy column (amortised O(1) append)."""

    __slots__ = ("_data", "_n")

    def __init__(self, dtype=np.float64, capacity: int = 1024) -> None:
        self._data = np.empty(capacity, dtype=dtype)
        self._n = 0

    def append(self, value) -> None:
        if self._n == len(self._data):
            grown = np.empty(2 * len(self._data), dtype=self._data.dtype)
            grown[: self._n] = self._data
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        """Bulk append (one resize + one vectorized copy)."""
        values = np.asarray(values, dtype=self._data.dtype)
        needed = self._n + len(values)
        if needed > len(self._data):
            grown = np.empty(max(2 * len(self._data), needed), dtype=self._data.dtype)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n : needed] = values
        self._n = needed

    def view(self) -> np.ndarray:
        """Zero-copy view of the filled prefix."""
        return self._data[: self._n]

    def __len__(self) -> int:
        return self._n


@dataclass
class MinuteStats:
    """Aggregated statistics for one simulated minute.

    The per-sample columns (``pickscores``/``relative_qualities``/
    ``latencies``) are numpy slices of the collector's columnar storage,
    attached by :meth:`MetricsCollector.minute_series`.
    """

    minute: int
    offered_qpm: float = 0.0
    arrivals: int = 0
    completions: int = 0
    slo_violations: int = 0
    pickscores: Sequence[float] = field(default_factory=list)
    relative_qualities: Sequence[float] = field(default_factory=list)
    latencies: Sequence[float] = field(default_factory=list)
    #: Time-weighted mean workers in rotation this minute (0 when the run
    #: did not attach fleet accounting).
    fleet_workers: float = 0.0
    #: Time-weighted mean workers per GPU type this minute.
    fleet_by_gpu: dict[str, float] = field(default_factory=dict)

    @property
    def served_qpm(self) -> float:
        """Completions during this minute (the served throughput)."""
        return float(self.completions)

    @property
    def violation_ratio(self) -> float:
        """Fraction of completions this minute that violated the SLO."""
        if self.completions == 0:
            return 0.0
        return self.slo_violations / self.completions

    @property
    def mean_pickscore(self) -> float:
        """Mean PickScore of completions this minute (0 when none)."""
        return float(np.mean(self.pickscores)) if len(self.pickscores) else 0.0

    @property
    def mean_relative_quality(self) -> float:
        """Mean relative quality of completions this minute (0 when none)."""
        if not len(self.relative_qualities):
            return 0.0
        return float(np.mean(self.relative_qualities))


class _LazySamples(Sequence):
    """Sequence view reconstructing :class:`ServedSample` objects on access."""

    __slots__ = ("_collector",)

    def __init__(self, collector: "MetricsCollector") -> None:
        self._collector = collector

    def __len__(self) -> int:
        return self._collector.total_completions

    def __getitem__(self, index):
        collector = self._collector
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return ServedSample(
            completed=collector._completed[index],
            pickscore=float(collector._pick.view()[index]),
            best_pickscore=float(collector._best.view()[index]),
        )


class MetricsCollector:
    """Collects per-request outcomes columnar and aggregates them per minute.

    Args:
        slo: latency SLO policy (defaults to the paper's 3x SD-XL budget).
        retain_completed: keep a reference to every :class:`CompletedRequest`
            so ``collector.samples`` can rebuild full :class:`ServedSample`
            views.  Disable for long measurement-only runs (e.g. the perf
            harness) to drop per-request Python objects entirely; scalar
            summaries and minute series keep working.
    """

    def __init__(self, slo: SloPolicy | None = None, retain_completed: bool = True) -> None:
        self.slo = slo or SloPolicy()
        self.retain_completed = bool(retain_completed)
        self._completed: list[CompletedRequest] = []
        self._lat = _Column()
        self._pick = _Column()
        self._best = _Column()
        self._relq = _Column()
        self._minute = _Column(dtype=np.int64)
        #: minute -> [completions, slo_violations] maintained incrementally.
        self._minute_counts: dict[int, list[int]] = {}
        self._arrivals_by_minute: dict[int, int] = defaultdict(int)
        self.dropped_requests = 0
        # Tenant dimension: completions carry an interned tenant index in a
        # parallel column; arrivals and drops keep per-tenant counters.  The
        # anonymous workload interns a single "" tenant, so single-tenant
        # overhead is one int per completion.
        self._tenant_ids: dict[str, int] = {}
        self._tenant_col = _Column(dtype=np.int32)
        self._tenant_arrivals: dict[str, int] = defaultdict(int)
        self._tenant_drops: dict[str, int] = defaultdict(int)
        #: Cache-tier per-shard accounting: shard id -> [lookups, hits,
        #: total latency].  Empty unless a distributed cache tier feeds
        #: :meth:`record_cache_lookup` (the flat cache records nothing).
        self._cache_shards: dict[int, list[float]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _tenant_id(self, tenant: str) -> int:
        """Intern a tenant name into a stable small integer."""
        tenant_id = self._tenant_ids.get(tenant)
        if tenant_id is None:
            tenant_id = self._tenant_ids[tenant] = len(self._tenant_ids)
        return tenant_id

    def record_arrival(self, arrival_time_s: float, tenant: str = "") -> None:
        """Record an offered request (whether or not it completes)."""
        self._arrivals_by_minute[int(arrival_time_s // 60)] += 1
        self._tenant_arrivals[tenant] += 1

    def record_drop(self, tenant: str = "") -> None:
        """Record a request the system could not serve at all."""
        self.dropped_requests += 1
        self._tenant_drops[tenant] += 1

    def record_cache_lookup(self, shard: int, hit: bool, latency_s: float) -> None:
        """Record one cache-tier retrieval against its answering shard."""
        counters = self._cache_shards.get(shard)
        if counters is None:
            counters = self._cache_shards[shard] = [0, 0, 0.0]
        counters[0] += 1
        if hit:
            counters[1] += 1
        counters[2] += latency_s

    def cache_shard_stats(self) -> dict[str, dict[str, float]]:
        """Per-shard cache traffic: shard -> lookups / hits / mean latency."""
        return {
            str(shard): {
                "lookups": int(lookups),
                "hits": int(hits),
                "mean_latency_s": (latency / lookups) if lookups else 0.0,
            }
            for shard, (lookups, hits, latency) in sorted(self._cache_shards.items())
        }

    def record_completion(
        self, completed: CompletedRequest, pickscore: float, best_pickscore: float
    ) -> ServedSample:
        """Record a served request with its quality outcome.  O(1)."""
        sample = ServedSample(completed=completed, pickscore=pickscore, best_pickscore=best_pickscore)
        if self.retain_completed:
            self._completed.append(completed)
        latency = sample.latency_s
        self._lat.append(latency)
        self._pick.append(pickscore)
        self._best.append(best_pickscore)
        self._relq.append(sample.relative_quality)
        self._tenant_col.append(self._tenant_id(completed.request.prompt.tenant))
        minute = int(completed.completion_time_s // 60)
        self._minute.append(minute)
        counts = self._minute_counts.get(minute)
        if counts is None:
            counts = self._minute_counts[minute] = [0, 0]
        counts[0] += 1
        if self.slo.is_violation(latency):
            counts[1] += 1
        return sample

    # ------------------------------------------------------------------ #
    # Cross-process merging (sharded execution)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Columnar snapshot of everything recorded so far.

        The snapshot is self-contained and picklable (numpy arrays plus
        plain dicts), so a shard process can ship its collector across a
        pipe and the coordinator can rebuild the union with
        :meth:`absorb_state`.  Per-request ``CompletedRequest`` objects are
        deliberately not part of the snapshot — merged collectors are
        measurement-only.
        """
        names = [""] * len(self._tenant_ids)
        for name, tenant_id in self._tenant_ids.items():
            names[tenant_id] = name
        return {
            "lat": self._lat.view().copy(),
            "pick": self._pick.view().copy(),
            "best": self._best.view().copy(),
            "relq": self._relq.view().copy(),
            "minute": self._minute.view().copy(),
            "tenant_col": self._tenant_col.view().copy(),
            "tenant_names": names,
            "minute_counts": {int(m): list(c) for m, c in self._minute_counts.items()},
            "arrivals_by_minute": {
                int(m): int(c) for m, c in self._arrivals_by_minute.items()
            },
            "dropped_requests": int(self.dropped_requests),
            "tenant_arrivals": dict(self._tenant_arrivals),
            "tenant_drops": dict(self._tenant_drops),
            "cache_shards": {int(s): list(c) for s, c in self._cache_shards.items()},
        }

    def absorb_state(self, state: dict) -> None:
        """Merge an :meth:`export_state` snapshot into this collector.

        Columns are appended in bulk and tenant indices are re-interned
        into this collector's namespace, so absorbing N shard snapshots in
        shard order is deterministic.  Only collectors built with
        ``retain_completed=False`` may absorb: the snapshot carries no
        per-request objects, so a sample-retaining collector would end up
        with columns longer than its ``_completed`` list.
        """
        if self.retain_completed:
            raise RuntimeError(
                "absorb_state requires a collector built with retain_completed=False"
            )
        self._lat.extend(state["lat"])
        self._pick.extend(state["pick"])
        self._best.extend(state["best"])
        self._relq.extend(state["relq"])
        self._minute.extend(state["minute"])
        names = list(state["tenant_names"])
        column = np.asarray(state["tenant_col"], dtype=np.int32)
        if names and len(column):
            remap = np.array([self._tenant_id(n) for n in names], dtype=np.int32)
            column = remap[column]
        self._tenant_col.extend(column)
        for minute, (completions, violations) in state["minute_counts"].items():
            counts = self._minute_counts.get(minute)
            if counts is None:
                counts = self._minute_counts[minute] = [0, 0]
            counts[0] += completions
            counts[1] += violations
        for minute, arrivals in state["arrivals_by_minute"].items():
            self._arrivals_by_minute[minute] += arrivals
        self.dropped_requests += state["dropped_requests"]
        for tenant, count in state["tenant_arrivals"].items():
            self._tenant_arrivals[tenant] += count
        for tenant, count in state["tenant_drops"].items():
            self._tenant_drops[tenant] += count
        for shard, (lookups, hits, latency) in state.get("cache_shards", {}).items():
            counters = self._cache_shards.get(shard)
            if counters is None:
                counters = self._cache_shards[shard] = [0, 0, 0.0]
            counters[0] += lookups
            counters[1] += hits
            counters[2] += latency

    # ------------------------------------------------------------------ #
    # Sample access (compatibility view)
    # ------------------------------------------------------------------ #
    @property
    def samples(self) -> Sequence[ServedSample]:
        """Lazy per-request :class:`ServedSample` view (built on access)."""
        if not self.retain_completed and self.total_completions:
            raise RuntimeError(
                "per-sample view unavailable: collector was built with "
                "retain_completed=False"
            )
        return _LazySamples(self)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _grouped_minute_slices(self) -> dict[int, np.ndarray]:
        """Row positions per completion minute (order-preserving)."""
        minutes = self._minute.view()
        if len(minutes) == 0:
            return {}
        positions: dict[int, np.ndarray] = {}
        # Completions almost always arrive in nondecreasing time order, so
        # each minute is one contiguous slice findable via searchsorted; the
        # stable argsort below only runs for out-of-order direct API use.
        if np.all(minutes[1:] >= minutes[:-1]):
            uniques = np.unique(minutes)
            starts = np.searchsorted(minutes, uniques, side="left")
            ends = np.searchsorted(minutes, uniques, side="right")
            for minute, start, end in zip(uniques, starts, ends):
                positions[int(minute)] = np.arange(start, end)
        else:
            order = np.argsort(minutes, kind="stable")
            ordered = minutes[order]
            uniques = np.unique(ordered)
            starts = np.searchsorted(ordered, uniques, side="left")
            ends = np.searchsorted(ordered, uniques, side="right")
            for minute, start, end in zip(uniques, starts, ends):
                positions[int(minute)] = order[start:end]
        return positions

    def minute_series(
        self,
        offered: dict[int, float] | None = None,
        fleet: dict[int, "object"] | None = None,
    ) -> list[MinuteStats]:
        """Per-minute statistics, sorted by minute.

        Args:
            offered: optional per-minute offered QPM to attach (e.g. from the
                trace); arrivals recorded via :meth:`record_arrival` are used
                when absent.
            fleet: optional per-minute fleet composition to attach, mapping
                minute -> :class:`repro.cluster.cluster.FleetMinute` (from
                ``GpuCluster.fleet_minute_series``).
        """
        minutes = set(self._minute_counts) | set(self._arrivals_by_minute)
        if offered:
            minutes |= set(offered)
        if fleet:
            minutes |= set(fleet)
        grouped = self._grouped_minute_slices()
        lat = self._lat.view()
        pick = self._pick.view()
        relq = self._relq.view()
        series = []
        for minute in sorted(minutes):
            stats = MinuteStats(minute=minute)
            counts = self._minute_counts.get(minute)
            if counts is not None:
                stats.completions, stats.slo_violations = counts
                rows = grouped[minute]
                stats.pickscores = pick[rows]
                stats.relative_qualities = relq[rows]
                stats.latencies = lat[rows]
            stats.arrivals = self._arrivals_by_minute.get(minute, 0)
            stats.offered_qpm = (
                offered.get(minute, float(stats.arrivals)) if offered else float(stats.arrivals)
            )
            if fleet and minute in fleet:
                stats.fleet_workers = fleet[minute].mean_workers
                stats.fleet_by_gpu = dict(fleet[minute].by_gpu)
            series.append(stats)
        return series

    # ------------------------------------------------------------------ #
    # Scalar summaries (single vectorized pass each)
    # ------------------------------------------------------------------ #
    @property
    def total_completions(self) -> int:
        """Total requests served."""
        return len(self._lat)

    @property
    def total_arrivals(self) -> int:
        """Total requests offered."""
        return sum(self._arrivals_by_minute.values())

    @property
    def total_slo_violations(self) -> int:
        """Total completions that violated the latency SLO (incremental)."""
        return sum(counts[1] for counts in self._minute_counts.values())

    def slo_violation_ratio(self) -> float:
        """Fraction of served requests violating the latency SLO."""
        n = self.total_completions
        if n == 0:
            return 0.0
        violations = int(np.count_nonzero(self.slo.violation_mask(self._lat.view())))
        return violations / n

    def effective_accuracy(self) -> float:
        """Mean PickScore over requests completed within the SLO (§5.1)."""
        within = self._pick.view()[~self.slo.violation_mask(self._lat.view())]
        return float(np.mean(within)) if len(within) else 0.0

    def mean_pickscore(self) -> float:
        """Mean PickScore over all served requests."""
        return float(np.mean(self._pick.view())) if self.total_completions else 0.0

    def mean_relative_quality(self) -> float:
        """Mean relative quality over all served requests."""
        if not self.total_completions:
            return 0.0
        return float(np.mean(self._relq.view()))

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in seconds over served requests."""
        if not self.total_completions:
            return 0.0
        return float(np.percentile(self._lat.view(), percentile))

    def relative_qualities(self) -> list[float]:
        """Per-request relative qualities (input to the user-study simulator)."""
        return self._relq.view().tolist()

    # ------------------------------------------------------------------ #
    # Per-tenant breakdowns
    # ------------------------------------------------------------------ #
    @property
    def tenant_names(self) -> list[str]:
        """Tenant names observed so far (arrival, drop or completion)."""
        names = set(self._tenant_ids) | set(self._tenant_arrivals) | set(self._tenant_drops)
        return sorted(names)

    def tenant_stats(self, tenant: str, budget_s: float | None = None) -> dict:
        """Outcome statistics for one tenant, against its own SLO budget.

        ``budget_s`` overrides the collector's global SLO budget (per-tenant
        SLO classes); None keeps the global policy.  Unknown tenants return
        all-zero stats.
        """
        budget = self.slo.budget_s if budget_s is None else float(budget_s)
        tenant_id = self._tenant_ids.get(tenant)
        if tenant_id is None:
            latencies = np.empty(0)
            relq = np.empty(0)
        else:
            mask = self._tenant_col.view() == tenant_id
            latencies = self._lat.view()[mask]
            relq = self._relq.view()[mask]
        completions = int(latencies.size)
        violations = int(np.count_nonzero(latencies > budget))
        return {
            "arrivals": int(self._tenant_arrivals.get(tenant, 0)),
            "completions": completions,
            "dropped": int(self._tenant_drops.get(tenant, 0)),
            "violation_ratio": violations / completions if completions else 0.0,
            "mean_relative_quality": float(np.mean(relq)) if completions else 0.0,
            "p99_latency_s": float(np.percentile(latencies, 99)) if completions else 0.0,
        }
