"""Metrics: SLO accounting, time-series collection and summary reports."""

from repro.metrics.slo import SLO_CLASSES, SloPolicy
from repro.metrics.collector import MetricsCollector, MinuteStats, ServedSample
from repro.metrics.report import RunSummary, TenantSummary, fair_share_index, summarize

__all__ = [
    "SLO_CLASSES",
    "MetricsCollector",
    "MinuteStats",
    "RunSummary",
    "ServedSample",
    "SloPolicy",
    "TenantSummary",
    "fair_share_index",
    "summarize",
]
