"""Metrics: SLO accounting, time-series collection and summary reports."""

from repro.metrics.slo import SloPolicy
from repro.metrics.collector import MetricsCollector, MinuteStats, ServedSample
from repro.metrics.report import RunSummary, summarize

__all__ = [
    "MetricsCollector",
    "MinuteStats",
    "RunSummary",
    "ServedSample",
    "SloPolicy",
    "summarize",
]
