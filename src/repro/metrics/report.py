"""Run summaries: the scalar rows reported in the paper's evaluation."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class TenantSummary:
    """Per-tenant slice of one serving run (the multi-tenant report row)."""

    name: str
    slo_class: str
    weight: float
    #: Latency budget this tenant's violations are measured against.
    slo_budget_s: float
    arrivals: int
    completions: int
    dropped: int
    #: Violations against the *tenant's own* budget, not the global SLO.
    slo_violation_ratio: float
    mean_relative_quality: float
    p99_latency_s: float
    #: Contracted relative-quality floor (reporting reference, 0 = none).
    quality_floor: float = 0.0
    #: Retrieval hit rate within the tenant's cache namespace.
    cache_hit_rate: float = 0.0
    #: Requests the fair-share admission controller delayed.
    admission_delayed: int = 0
    mean_admission_wait_s: float = 0.0
    #: Requests still parked in the admission queue when the run (including
    #: its drain period) ended — offered, never served, never dropped.
    admission_backlog: int = 0

    @property
    def goodput_fraction(self) -> float:
        """Fraction of this tenant's offered requests served within its SLO."""
        if self.arrivals == 0:
            return 0.0
        within = self.completions * (1.0 - self.slo_violation_ratio)
        return within / self.arrivals


def fair_share_index(tenants: tuple[TenantSummary, ...]) -> float:
    """Jain's fairness index over weight-normalised served throughput.

    ``x_t = completions_t / weight_t``; the index is 1.0 when every tenant's
    service is exactly proportional to its weight and approaches ``1/n`` as
    one tenant monopolises the fleet.  Tenants that offered no traffic are
    excluded (idle tenants do not count as starved).
    """
    shares = [t.completions / t.weight for t in tenants if t.arrivals > 0]
    if not shares:
        return 1.0
    total = sum(shares)
    if total <= 0:
        return 1.0
    squares = sum(share * share for share in shares)
    return float(total * total / (len(shares) * squares))


@dataclass(frozen=True)
class RunSummary:
    """Scalar summary of one serving run (one system on one workload)."""

    system: str
    workload: str
    total_arrivals: int
    total_completions: int
    dropped_requests: int
    mean_served_qpm: float
    slo_violation_ratio: float
    effective_accuracy: float
    mean_pickscore: float
    mean_relative_quality: float
    p50_latency_s: float
    p99_latency_s: float
    cluster_utilization: float
    model_loads: int
    #: Mean requests per GPU pass over all completions (1.0 when the run
    #: served batch-size-1).
    mean_batch_occupancy: float = 1.0
    #: Largest number of workers in rotation at any point of the run.
    fleet_peak_workers: int = 0
    #: Time-weighted mean workers in rotation (equals the fixed pool size
    #: when autoscaling is off and nothing fails).
    fleet_mean_workers: float = 0.0
    #: Workers the autoscaler added / drained during the run.
    workers_added: int = 0
    workers_retired: int = 0
    #: Billable GPU-hours across the fleet (provisioning time included).
    gpu_hours: float = 0.0
    #: Dollar cost of those GPU-hours at per-type list prices.
    cost_usd: float = 0.0
    #: Per-tenant breakdown (empty for the anonymous single-tenant workload).
    tenants: tuple[TenantSummary, ...] = ()

    @property
    def fair_share_index(self) -> float:
        """Jain's index over weight-normalised per-tenant served throughput."""
        return fair_share_index(self.tenants)

    def tenant(self, name: str) -> TenantSummary:
        """Look up one tenant's breakdown row by name."""
        for row in self.tenants:
            if row.name == name:
                return row
        raise KeyError(f"no tenant {name!r} in this summary")

    @property
    def goodput_fraction(self) -> float:
        """Fraction of offered requests served within the SLO."""
        if self.total_arrivals == 0:
            return 0.0
        within_slo = self.total_completions * (1.0 - self.slo_violation_ratio)
        return within_slo / self.total_arrivals

    @property
    def cost_per_image_usd(self) -> float:
        """Fleet cost amortised over served images (0 when nothing served)."""
        if self.total_completions == 0:
            return 0.0
        return self.cost_usd / self.total_completions

    def as_dict(self) -> dict:
        """Full-precision dict of every field plus the derived properties.

        Unlike :meth:`as_row` nothing is rounded, so two bit-identical runs
        produce byte-identical JSON dumps of this dict — the property the
        scenario determinism tests pin.
        """
        payload = asdict(self)
        payload["goodput_fraction"] = self.goodput_fraction
        payload["cost_per_image_usd"] = self.cost_per_image_usd
        if self.tenants:
            for row, summary in zip(payload["tenants"], self.tenants):
                row["goodput_fraction"] = summary.goodput_fraction
            payload["tenants"] = list(payload["tenants"])
            payload["fair_share_index"] = self.fair_share_index
        else:
            # Omitted entirely so a tenancy-unconfigured run's JSON dump is
            # byte-identical to the pre-tenancy format.
            payload.pop("tenants")
        return payload

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dict convenient for printing benchmark tables."""
        return {
            "system": self.system,
            "workload": self.workload,
            "served_qpm": round(self.mean_served_qpm, 2),
            "slo_violation_ratio": round(self.slo_violation_ratio, 4),
            "effective_accuracy": round(self.effective_accuracy, 3),
            "relative_quality": round(self.mean_relative_quality, 4),
            "p99_latency_s": round(self.p99_latency_s, 2),
            "utilization": round(self.cluster_utilization, 3),
            "model_loads": self.model_loads,
            "batch_occupancy": round(self.mean_batch_occupancy, 2),
            "fleet_peak": self.fleet_peak_workers,
            "gpu_hours": round(self.gpu_hours, 2),
            "cost_per_image": round(self.cost_per_image_usd, 5),
        }


def summarize(
    system: str,
    workload: str,
    collector: MetricsCollector,
    duration_minutes: float,
    cluster_utilization: float = 0.0,
    model_loads: int = 0,
    mean_batch_occupancy: float = 1.0,
    fleet_peak_workers: int = 0,
    fleet_mean_workers: float = 0.0,
    workers_added: int = 0,
    workers_retired: int = 0,
    gpu_hours: float = 0.0,
    cost_usd: float = 0.0,
    tenants: tuple[TenantSummary, ...] = (),
) -> RunSummary:
    """Build a :class:`RunSummary` from a collector.

    ``mean_batch_occupancy`` is the cluster's per-pass occupancy
    (:meth:`repro.cluster.cluster.GpuCluster.mean_batch_occupancy`);
    callers without batching can leave the batch-size-1 default.  The fleet
    and cost figures come from the cluster's fleet log / billing accounting;
    callers without an elastic fleet can leave the zero defaults.
    """
    duration_minutes = max(duration_minutes, 1e-9)
    return RunSummary(
        system=system,
        workload=workload,
        total_arrivals=collector.total_arrivals,
        total_completions=collector.total_completions,
        dropped_requests=collector.dropped_requests,
        mean_served_qpm=collector.total_completions / duration_minutes,
        slo_violation_ratio=collector.slo_violation_ratio(),
        effective_accuracy=collector.effective_accuracy(),
        mean_pickscore=collector.mean_pickscore(),
        mean_relative_quality=collector.mean_relative_quality(),
        p50_latency_s=collector.latency_percentile(50),
        p99_latency_s=collector.latency_percentile(99),
        cluster_utilization=cluster_utilization,
        model_loads=model_loads,
        mean_batch_occupancy=mean_batch_occupancy,
        fleet_peak_workers=fleet_peak_workers,
        fleet_mean_workers=fleet_mean_workers,
        workers_added=workers_added,
        workers_retired=workers_retired,
        gpu_hours=gpu_hours,
        cost_usd=cost_usd,
        tenants=tuple(tenants),
    )


@dataclass(frozen=True)
class ScenarioReport:
    """A scenario-tagged run report: what the ``repro`` CLI emits as JSON.

    Wraps a :class:`RunSummary` with the scenario identity (name, preset,
    seed, system) and the per-minute time series, so an artifact is fully
    self-describing: two reports are comparable iff their tags match, and a
    report regenerated from the same (scenario, preset, seed) is
    byte-identical.
    """

    scenario: str
    preset: str
    seed: int
    system: str
    workload: str
    summary: RunSummary
    #: Per-minute rows: offered/served QPM, violation ratio, relative
    #: quality and fleet size (the Fig. 16-style curves).
    minutes: list[dict] = field(default_factory=list)
    #: System-specific extras (strategy switches, cache hit rate, ...).
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable dict form."""
        return {
            "scenario": self.scenario,
            "preset": self.preset,
            "seed": self.seed,
            "system": self.system,
            "workload": self.workload,
            "summary": self.summary.as_dict(),
            "minutes": list(self.minutes),
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON dump (sorted keys) of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def minute_rows(minute_series) -> list[dict]:
        """Flatten a ``MinuteStats`` series into JSON-friendly rows."""
        return [
            {
                "minute": stats.minute,
                "offered_qpm": float(stats.offered_qpm),
                "served_qpm": float(stats.served_qpm),
                "violation_ratio": float(stats.violation_ratio),
                "mean_relative_quality": float(stats.mean_relative_quality),
                "fleet_workers": float(stats.fleet_workers),
            }
            for stats in minute_series
        ]
