"""Prometheus text-format export of the metrics collector.

A pure function over :class:`~repro.metrics.collector.MetricsCollector` (plus
caller-supplied gauges), so the same rendering serves the live gateway's
``/metrics`` endpoint and ad-hoc snapshots of a simulation run.  The output
follows the Prometheus exposition format version 0.0.4: ``# HELP`` /
``# TYPE`` preambles, counters suffixed ``_total``, label values escaped.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.metrics.collector import MetricsCollector


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    # Prometheus accepts plain floats; repr keeps full precision without
    # scientific-notation surprises for typical magnitudes.
    return repr(float(value))


class _Lines:
    """Accumulates one metric family at a time (HELP/TYPE emitted once)."""

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._out: list[str] = []

    def family(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[tuple[Mapping[str, str] | None, float]],
    ) -> None:
        metric = f"{self.namespace}_{name}"
        rows = list(samples)
        if not rows:
            return
        self._out.append(f"# HELP {metric} {help_text}")
        self._out.append(f"# TYPE {metric} {kind}")
        for labels, value in rows:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
                )
                self._out.append(f"{metric}{{{rendered}}} {_fmt(value)}")
            else:
                self._out.append(f"{metric} {_fmt(value)}")

    def render(self) -> str:
        return "\n".join(self._out) + "\n"


def render_prometheus(
    collector: MetricsCollector,
    extra_gauges: Mapping[str, float] | None = None,
    namespace: str = "repro",
) -> str:
    """Render a collector snapshot in Prometheus text format.

    ``extra_gauges`` lets the caller fold in figures the collector does not
    own (fleet size, admission backlog, cache hit rate); each key becomes a
    gauge named ``{namespace}_{key}``.
    """
    lines = _Lines(namespace)
    lines.family(
        "requests_offered_total",
        "counter",
        "Requests offered to the system (admitted or not).",
        [(None, collector.total_arrivals)],
    )
    lines.family(
        "requests_served_total",
        "counter",
        "Requests served to completion.",
        [(None, collector.total_completions)],
    )
    lines.family(
        "requests_dropped_total",
        "counter",
        "Requests dropped (unroutable or rejected).",
        [(None, collector.dropped_requests)],
    )
    lines.family(
        "slo_violations_total",
        "counter",
        "Completions whose end-to-end latency exceeded the SLO budget.",
        [(None, collector.total_slo_violations)],
    )
    lines.family(
        "slo_violation_ratio",
        "gauge",
        "Fraction of completions violating the latency SLO.",
        [(None, collector.slo_violation_ratio())],
    )
    if collector.total_completions:
        lines.family(
            "latency_seconds",
            "summary",
            "End-to-end request latency quantiles (queueing + service).",
            [
                ({"quantile": "0.5"}, collector.latency_percentile(50)),
                ({"quantile": "0.99"}, collector.latency_percentile(99)),
            ],
        )
        lines.family(
            "relative_quality_mean",
            "gauge",
            "Mean served quality relative to the exact model.",
            [(None, collector.mean_relative_quality())],
        )
    tenants = [name for name in collector.tenant_names if name]
    if tenants:
        per_tenant = [(name, collector.tenant_stats(name)) for name in tenants]
        lines.family(
            "tenant_requests_offered_total",
            "counter",
            "Requests offered, by tenant.",
            [({"tenant": name}, stats["arrivals"]) for name, stats in per_tenant],
        )
        lines.family(
            "tenant_requests_served_total",
            "counter",
            "Requests served, by tenant.",
            [({"tenant": name}, stats["completions"]) for name, stats in per_tenant],
        )
    cache_shards = collector.cache_shard_stats()
    if cache_shards:
        rows = list(cache_shards.items())
        lines.family(
            "cache_shard_lookups_total",
            "counter",
            "Cache-tier retrievals answered, by shard.",
            [({"shard": shard}, stats["lookups"]) for shard, stats in rows],
        )
        lines.family(
            "cache_shard_hits_total",
            "counter",
            "Cache-tier retrievals that hit, by shard.",
            [({"shard": shard}, stats["hits"]) for shard, stats in rows],
        )
        lines.family(
            "cache_shard_latency_seconds_mean",
            "gauge",
            "Mean cache-tier retrieval latency, by answering shard.",
            [({"shard": shard}, stats["mean_latency_s"]) for shard, stats in rows],
        )
    if extra_gauges:
        for key in sorted(extra_gauges):
            lines.family(
                key,
                "gauge",
                f"{key} (gateway-supplied gauge).",
                [(None, extra_gauges[key])],
            )
    return lines.render()
