"""A small integer-linear-programming substrate (the Gurobi stand-in).

The Allocator solves Eq. 1 every minute; the production system calls Gurobi.
This package provides a generic modelling layer plus a branch-and-bound
solver on top of ``scipy.optimize.linprog`` and is used by the Argus Solver
in :mod:`repro.core.solver`.
"""

from repro.ilp.model import Constraint, IlpProblem, SolveStatus, Solution, Variable
from repro.ilp.branch_and_bound import BranchAndBoundSolver

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "IlpProblem",
    "Solution",
    "SolveStatus",
    "Variable",
]
