"""Modelling layer for linear and mixed-integer linear programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SolveStatus(str, Enum):
    """Outcome of a solve attempt."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class Variable:
    """A decision variable with bounds and integrality."""

    name: str
    lower: float = 0.0
    upper: float | None = None
    integer: bool = False

    def __post_init__(self) -> None:
        if self.upper is not None and self.upper < self.lower:
            raise ValueError(f"variable {self.name}: upper bound below lower bound")


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum(coeff * var) <sense> rhs``."""

    coefficients: dict
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported constraint sense {self.sense!r}")


@dataclass
class Solution:
    """Result of solving a problem."""

    status: SolveStatus
    objective: float = 0.0
    values: dict = field(default_factory=dict)
    #: Number of branch-and-bound nodes explored (1 for pure LPs).
    nodes_explored: int = 0

    @property
    def is_optimal(self) -> bool:
        """True when a provably optimal solution was found."""
        return self.status is SolveStatus.OPTIMAL

    def value(self, name: str) -> float:
        """Value of a variable in the solution."""
        return float(self.values[name])


class IlpProblem:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "", maximize: bool = True) -> None:
        self.name = name
        self.maximize = bool(maximize)
        self._variables: dict[str, Variable] = {}
        self._objective: dict[str, float] = {}
        self._constraints: list[Constraint] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float | None = None,
        integer: bool = False,
    ) -> Variable:
        """Declare a decision variable."""
        if name in self._variables:
            raise ValueError(f"variable {name!r} already declared")
        variable = Variable(name=name, lower=lower, upper=upper, integer=integer)
        self._variables[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        """Declare a 0/1 variable."""
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def set_objective(self, coefficients: dict, maximize: bool | None = None) -> None:
        """Set the (linear) objective; unknown variables raise KeyError."""
        for name in coefficients:
            if name not in self._variables:
                raise KeyError(f"objective references unknown variable {name!r}")
        self._objective = dict(coefficients)
        if maximize is not None:
            self.maximize = bool(maximize)

    def add_constraint(
        self, coefficients: dict, sense: str, rhs: float, name: str = ""
    ) -> Constraint:
        """Add a linear constraint."""
        for var_name in coefficients:
            if var_name not in self._variables:
                raise KeyError(f"constraint references unknown variable {var_name!r}")
        constraint = Constraint(
            coefficients=dict(coefficients), sense=sense, rhs=float(rhs), name=name
        )
        self._constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> dict[str, Variable]:
        """Declared variables, keyed by name."""
        return dict(self._variables)

    @property
    def variable_names(self) -> list[str]:
        """Variable names in declaration order."""
        return list(self._variables)

    @property
    def objective(self) -> dict[str, float]:
        """Objective coefficients, keyed by variable name."""
        return dict(self._objective)

    @property
    def constraints(self) -> list[Constraint]:
        """All constraints added so far."""
        return list(self._constraints)

    @property
    def integer_variables(self) -> list[str]:
        """Names of variables declared integer."""
        return [name for name, var in self._variables.items() if var.integer]

    def is_pure_lp(self) -> bool:
        """True when no variable is integer."""
        return not self.integer_variables
