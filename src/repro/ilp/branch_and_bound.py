"""Branch-and-bound MILP solver on top of ``scipy.optimize.linprog``.

The LP relaxation of each node is solved with HiGHS; fractional integer
variables are branched on best-first by relaxation bound.  Problem sizes in
this repository (tens of binaries for the per-minute allocation) solve in a
few milliseconds, matching the paper's "under 100 ms" claim for the Gurobi
solver.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.ilp.model import IlpProblem, Solution, SolveStatus

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass
class _Node:
    """A branch-and-bound node: extra bounds layered over the base problem."""

    extra_lower: dict
    extra_upper: dict
    bound: float


class BranchAndBoundSolver:
    """Solves :class:`IlpProblem` instances exactly (small/medium sizes)."""

    def __init__(self, max_nodes: int = 20_000, gap_tolerance: float = 1e-6) -> None:
        self.max_nodes = int(max_nodes)
        self.gap_tolerance = float(gap_tolerance)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, problem: IlpProblem) -> Solution:
        """Solve the problem, returning the best integer-feasible solution."""
        names = problem.variable_names
        if not names:
            return Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={})

        relaxed = self._solve_relaxation(problem, {}, {})
        if relaxed is None:
            return Solution(status=SolveStatus.INFEASIBLE)
        if problem.is_pure_lp():
            values, objective = relaxed
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=objective,
                values=dict(zip(names, values)),
                nodes_explored=1,
            )
        return self._branch_and_bound(problem, relaxed)

    # ------------------------------------------------------------------ #
    # Branch and bound
    # ------------------------------------------------------------------ #
    def _branch_and_bound(
        self, problem: IlpProblem, root: tuple[np.ndarray, float]
    ) -> Solution:
        names = problem.variable_names
        integer_indices = [
            i for i, name in enumerate(names) if problem.variables[name].integer
        ]
        best_values: np.ndarray | None = None
        best_objective = -math.inf
        counter = itertools.count()

        root_values, root_objective = root
        heap: list[tuple[float, int, _Node]] = []
        heapq.heappush(
            heap,
            (-root_objective, next(counter), _Node({}, {}, root_objective)),
        )
        nodes_explored = 0

        while heap and nodes_explored < self.max_nodes:
            neg_bound, _, node = heapq.heappop(heap)
            bound = -neg_bound
            if bound <= best_objective + self.gap_tolerance:
                continue
            relaxed = self._solve_relaxation(problem, node.extra_lower, node.extra_upper)
            nodes_explored += 1
            if relaxed is None:
                continue
            values, objective = relaxed
            if objective <= best_objective + self.gap_tolerance:
                continue

            fractional = self._most_fractional(values, integer_indices)
            if fractional is None:
                if objective > best_objective:
                    best_objective = objective
                    best_values = values
                continue

            index, value = fractional
            name = names[index]
            floor_value = math.floor(value)

            down_upper = dict(node.extra_upper)
            down_upper[name] = min(down_upper.get(name, math.inf), floor_value)
            heapq.heappush(
                heap,
                (-objective, next(counter), _Node(dict(node.extra_lower), down_upper, objective)),
            )

            up_lower = dict(node.extra_lower)
            up_lower[name] = max(up_lower.get(name, -math.inf), floor_value + 1)
            heapq.heappush(
                heap,
                (-objective, next(counter), _Node(up_lower, dict(node.extra_upper), objective)),
            )

        if best_values is None:
            return Solution(status=SolveStatus.INFEASIBLE, nodes_explored=nodes_explored)
        rounded = best_values.copy()
        for i in integer_indices:
            rounded[i] = round(rounded[i])
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=float(best_objective),
            values=dict(zip(names, rounded.tolist())),
            nodes_explored=nodes_explored,
        )

    @staticmethod
    def _most_fractional(
        values: np.ndarray, integer_indices: list[int]
    ) -> tuple[int, float] | None:
        best_index = None
        best_distance = _INTEGRALITY_TOLERANCE
        for index in integer_indices:
            value = values[index]
            distance = abs(value - round(value))
            if distance > best_distance:
                best_distance = distance
                best_index = index
        if best_index is None:
            return None
        return best_index, float(values[best_index])

    # ------------------------------------------------------------------ #
    # LP relaxation
    # ------------------------------------------------------------------ #
    def _solve_relaxation(
        self,
        problem: IlpProblem,
        extra_lower: dict,
        extra_upper: dict,
    ) -> tuple[np.ndarray, float] | None:
        names = problem.variable_names
        index_of = {name: i for i, name in enumerate(names)}
        n = len(names)

        objective = np.zeros(n)
        for name, coefficient in problem.objective.items():
            objective[index_of[name]] = coefficient
        sign = -1.0 if problem.maximize else 1.0
        c = sign * objective

        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for constraint in problem.constraints:
            row = np.zeros(n)
            for name, coefficient in constraint.coefficients.items():
                row[index_of[name]] = coefficient
            if constraint.sense == "<=":
                a_ub.append(row)
                b_ub.append(constraint.rhs)
            elif constraint.sense == ">=":
                a_ub.append(-row)
                b_ub.append(-constraint.rhs)
            else:
                a_eq.append(row)
                b_eq.append(constraint.rhs)

        bounds = []
        for name in names:
            variable = problem.variables[name]
            lower = max(variable.lower, extra_lower.get(name, -math.inf))
            upper = variable.upper if variable.upper is not None else math.inf
            upper = min(upper, extra_upper.get(name, math.inf))
            if lower > upper:
                return None
            bounds.append((lower, None if math.isinf(upper) else upper))

        result = linprog(
            c,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        values = np.asarray(result.x, dtype=np.float64)
        achieved = float(objective @ values)
        return values, achieved
