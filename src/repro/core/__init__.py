"""Argus core: the paper's primary contribution.

The pieces map one-to-one onto Fig. 3 of the paper:

* :mod:`repro.core.solver` — the ILP-based Solver (block A, Eq. 1) deciding
  how many workers run each approximation level and what share of the load
  each level serves.
* :mod:`repro.core.predictor` — the Workload Distribution Predictor
  (block B) estimating the affinity histogram and the near-term load.
* :mod:`repro.core.oda` — the Optimised Distribution Aligner and the
  Probabilistic Approximation Shift Map (Eq. 2, Algorithm 1).
* :mod:`repro.core.scheduler` — the Prompt Scheduler and Worker Selector
  (blocks C/D/E, Eq. 3).
* :mod:`repro.core.strategy` — the AC↔SM strategy switcher (§4.6).
* :mod:`repro.core.autoscaler` — the closed-loop horizontal scaler built on
  the §6 saturation signal (elastic fleet, hysteresis + debounce).
* :mod:`repro.core.allocator` — the periodic calibration loop tying the
  solver, predictor and ODA together.
* :mod:`repro.core.admission` — the weighted fair-share admission
  controller multiplexing tenant contracts over the shared fleet.
* :mod:`repro.core.system` — :class:`ArgusSystem`, the end-to-end serving
  system (and its prompt-agnostic ablation, PAC).
"""

from repro.core.admission import FairShareAdmission, TenantAdmissionStats
from repro.core.autoscaler import Autoscaler, ScalingEvent
from repro.core.config import ArgusConfig
from repro.core.solver import AllocationPlan, AllocationSolver
from repro.core.predictor import LoadEstimator, WorkloadDistributionPredictor
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.scheduler import PromptScheduler, WorkerSelector
from repro.core.strategy import StrategySwitcher, SwitchEvent
from repro.core.allocator import Allocator
from repro.core.base import BaseServingSystem
from repro.core.system import ArgusSystem

__all__ = [
    "AllocationPlan",
    "AllocationSolver",
    "Allocator",
    "ArgusConfig",
    "ArgusSystem",
    "Autoscaler",
    "BaseServingSystem",
    "FairShareAdmission",
    "ScalingEvent",
    "TenantAdmissionStats",
    "LoadEstimator",
    "OptimizedDistributionAligner",
    "PromptScheduler",
    "ShiftMap",
    "StrategySwitcher",
    "SwitchEvent",
    "WorkerSelector",
    "WorkloadDistributionPredictor",
]
