"""Common scaffolding shared by Argus and every baseline serving system.

A serving system owns a simulation engine, the model zoo, a GPU cluster, an
(optional) approximate cache and a metrics collector.  Subclasses implement
the routing policy and any periodic control loops; the base class handles
request bookkeeping and quality accounting so all systems are measured
identically.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache import build_cache
from repro.cache.network import NetworkModel
from repro.cluster.cluster import GpuCluster
from repro.cluster.requests import CompletedRequest, Request
from repro.core.admission import FairShareAdmission
from repro.core.config import ArgusConfig
from repro.metrics.collector import MetricsCollector, ServedSample
from repro.metrics.report import RunSummary, TenantSummary, summarize
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.prompts.generator import Prompt
from repro.quality.pickscore import PickScoreModel
from repro.runtime.sim import SimRuntime
from repro.simulation.engine import SimulationEngine
from repro.workloads.tenants import build_runtimes


@dataclass(frozen=True)
class Route:
    """Routing outcome: where one prompt should be served."""

    worker_id: int
    predicted_rank: int
    assigned_rank: int
    strategy: Strategy


class BaseServingSystem(ABC):
    """Abstract serving system running on the simulated GPU cluster."""

    name = "base"
    #: Whether this system's serving runtime can execute dynamic batches.
    #: Systems that model single-request designs (e.g. NIRVANA) set this to
    #: False and always serve batch-size-1 regardless of the config, so
    #: batched-vs-unbatched comparisons stay faithful.
    supports_batching = True

    def __init__(
        self,
        config: ArgusConfig | None = None,
        pickscore: PickScoreModel | None = None,
        network: NetworkModel | None = None,
        initial_level: ApproximationLevel | None = None,
        use_cache: bool = True,
    ) -> None:
        self.config = config or ArgusConfig()
        self.engine = SimulationEngine(seed=self.config.seed)
        #: Clock-agnostic scheduling facade every control loop goes through;
        #: in simulation it is a zero-cost veneer over the engine.
        self.runtime = SimRuntime(self.engine)
        self.zoo = ModelZoo(gpu=self.config.gpu)
        self.pickscore = pickscore or PickScoreModel(
            num_levels=self.zoo.num_levels(Strategy.AC), seed=self.config.seed
        )
        self.network = network or NetworkModel(seed=self.config.seed + 1)
        self.cache = (
            build_cache(
                self.config,
                network=self.network,
                on_lookup=self._record_cache_lookup,
            )
            if use_cache
            else None
        )
        #: Resolved per-tenant runtime table (budgets, shares); empty when
        #: the deployment serves the anonymous single-tenant workload.
        self.tenant_runtimes = build_runtimes(self.config.tenants, self.config.slo)
        self.collector = MetricsCollector(
            slo=self.config.slo, retain_completed=self.config.retain_completed
        )
        max_batch = self.config.max_batch_size if self.supports_batching else 1
        self.cluster = GpuCluster(
            engine=self.engine,
            zoo=self.zoo,
            num_workers=self.config.num_workers,
            initial_level=initial_level or self.default_initial_level(),
            cache=self.cache,
            memory_capacity_gib=self.config.worker_memory_gib,
            on_complete=self._handle_completion,
            on_requeue=self._handle_requeue,
            blocking_loads=self.config.blocking_model_loads,
            max_batch_size=max_batch,
            batch_timeout_s=self.config.batch_timeout_s if max_batch > 1 else 0.0,
            queue_policy=(
                "tenant-priority" if self.config.priority_queues_enabled else "fifo"
            ),
            tenant_weights={
                spec.name: spec.weight for spec in self.config.tenants
            }
            if self.config.priority_queues_enabled
            else None,
        )
        #: Weighted fair-share admission controller; None admits everything
        #: immediately (single-tenant, or fair_share_admission=False).
        self.admission: FairShareAdmission | None = None
        if self.config.admission_enabled:
            self.admission = FairShareAdmission(
                runtime=self.runtime,
                tenants=self.config.tenants,
                capacity_qps=self._admission_capacity_qps,
                admit=self._dispatch_admitted,
                rate_factor=self.config.admission_rate_factor,
                burst_s=self.config.admission_burst_s,
            )
        self._request_ids = itertools.count()
        self._started = False

    def _record_cache_lookup(self, shard: int, hit: bool, latency_s: float) -> None:
        """Cache-tier per-shard accounting hook (fires once per retrieval)."""
        self.collector.record_cache_lookup(shard, hit, latency_s)

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def default_initial_level(self) -> ApproximationLevel:
        """Level every worker starts at (SD-XL / K=0 by default)."""
        return self.zoo.exact_level(self.config.default_strategy)

    @abstractmethod
    def route(self, prompt: Prompt) -> Route | None:
        """Decide where to serve a prompt; None drops the request."""

    def start(self) -> None:
        """Install periodic control loops on the engine (optional)."""

    def on_sample(self, sample: ServedSample, completed: CompletedRequest) -> None:
        """Hook invoked after each completion is recorded (optional)."""

    # ------------------------------------------------------------------ #
    # Request lifecycle
    # ------------------------------------------------------------------ #
    def submit(self, prompt: Prompt) -> Request | None:
        """Offer a prompt at the current simulated time.

        With fair-share admission configured, a prompt whose tenant is over
        its share is parked in the admission queue and dispatched later (the
        wait is charged against the request's own latency); otherwise the
        prompt is routed and dispatched immediately.
        """
        now = self.engine.now
        self.collector.record_arrival(now, tenant=prompt.tenant)
        self.observe_arrival(now, prompt)
        if self.admission is not None and not self.admission.offer(now, prompt):
            return None
        return self._dispatch_prompt(prompt, arrival_time_s=now)

    def _dispatch_admitted(self, prompt: Prompt, offer_time_s: float) -> None:
        """Admission-queue drain callback: dispatch with the original offer
        time so admission delay counts into the request's latency."""
        self._dispatch_prompt(prompt, arrival_time_s=offer_time_s)

    def _dispatch_prompt(self, prompt: Prompt, arrival_time_s: float) -> Request | None:
        """Route and dispatch one admitted prompt."""
        route = self.route(prompt)
        if route is None:
            self.collector.record_drop(tenant=prompt.tenant)
            return None
        request = Request(
            request_id=next(self._request_ids),
            prompt=prompt,
            arrival_time_s=arrival_time_s,
            strategy=route.strategy,
            predicted_rank=route.predicted_rank,
            assigned_rank=route.assigned_rank,
            deadline_s=self._deadline_for(prompt, arrival_time_s),
        )
        self.cluster.dispatch(request, route.worker_id)
        return request

    def _deadline_for(self, prompt: Prompt, arrival_time_s: float) -> float | None:
        """Absolute SLO deadline for priority queueing (None when disabled)."""
        if not self.config.priority_queues_enabled:
            return None
        runtime = self.tenant_runtimes.get(prompt.tenant)
        budget = runtime.budget_s if runtime is not None else self.config.slo.budget_s
        return arrival_time_s + budget

    def observe_arrival(self, now: float, prompt: Prompt) -> None:
        """Hook for load estimators (optional)."""

    def _admission_capacity_qps(self) -> float:
        """Fleet throughput in requests/second the admission rate is based on.

        The raw ceiling assumes every request serves at the fastest level's
        nominal cost — for AC that means a cache *hit* on every request.  A
        miss falls back to full generation, so real AC capacity degrades
        with the miss rate; the estimate blends the fastest and exact level
        latencies by the observed retrieval hit rate (Laplace-smoothed
        towards 0.5 while the sample is small) so admission does not wave
        through a crowd the fleet cannot actually serve.
        """
        strategy = getattr(self, "active_strategy", self.config.default_strategy)
        ceiling = self.cluster.fleet_ceiling_qpm(strategy) / 60.0
        if strategy is Strategy.AC and self.cache is not None:
            fastest = self.zoo.fastest_level(strategy).latency_s
            exact = self.zoo.exact_level(strategy).latency_s
            hit = (self.cache.retrieval_hits + 5.0) / (self.cache.retrieval_attempts + 10.0)
            effective = hit * fastest + (1.0 - hit) * exact
            ceiling *= fastest / effective
        return ceiling

    def _handle_completion(self, completed: CompletedRequest) -> None:
        prompt = completed.request.prompt
        strategy = completed.request.strategy
        score = self.pickscore.score(prompt, strategy, completed.effective_rank)
        best = self.pickscore.best_score(prompt)
        sample = self.collector.record_completion(completed, score, best)
        self.on_sample(sample, completed)

    def _handle_requeue(self, request: Request) -> None:
        """Re-route requests orphaned by a worker failure."""
        route = self.route(request.prompt)
        if route is None:
            self.collector.record_drop(tenant=request.prompt.tenant)
            return
        request.predicted_rank = route.predicted_rank
        request.assigned_rank = route.assigned_rank
        request.strategy = route.strategy
        self.cluster.dispatch(request, route.worker_id)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def schedule_arrivals(self, timed_prompts) -> None:
        """Stream a request source onto the engine lazily.

        Only the next arrival is ever resident in the event heap: each
        arrival callback submits its prompt and schedules the one after it.
        Million-request traces therefore cost O(1) heap space instead of one
        pre-materialised event per request.

        ``timed_prompts`` must yield arrivals in nondecreasing time order
        (every arrival process in :mod:`repro.workloads` does).
        """
        iterator = iter(timed_prompts)

        def schedule_next() -> None:
            timed = next(iterator, None)
            if timed is None:
                return
            if timed.arrival_time_s < self.engine.now:
                raise ValueError(
                    "schedule_arrivals requires nondecreasing arrival times: "
                    f"got {timed.arrival_time_s:.6f}s after {self.engine.now:.6f}s"
                )

            def arrive(_engine, prompt=timed.prompt) -> None:
                schedule_next()
                self.submit(prompt)

            self.engine.schedule_at(timed.arrival_time_s, arrive, name="arrival")

        schedule_next()

    def run(self, duration_s: float, drain_s: float = 120.0) -> None:
        """Run the simulation for ``duration_s`` plus a drain period."""
        if not self._started:
            self.start()
            self._started = True
        self.engine.run(until=duration_s + drain_s)

    def _tenant_breakdown(self) -> tuple[TenantSummary, ...]:
        """Per-tenant outcome rows (empty for the anonymous workload)."""
        rows = []
        for runtime in self.tenant_runtimes.values():
            spec = runtime.spec
            stats = self.collector.tenant_stats(spec.name, budget_s=runtime.budget_s)
            cache_hit_rate = (
                self.cache.retrieval_hit_rate_for(spec.name) if self.cache is not None else 0.0
            )
            admission = (
                self.admission.stats_for(spec.name) if self.admission is not None else None
            )
            rows.append(
                TenantSummary(
                    name=spec.name,
                    slo_class=spec.slo_class,
                    weight=spec.weight,
                    slo_budget_s=runtime.budget_s,
                    arrivals=stats["arrivals"],
                    completions=stats["completions"],
                    dropped=stats["dropped"],
                    slo_violation_ratio=stats["violation_ratio"],
                    mean_relative_quality=stats["mean_relative_quality"],
                    p99_latency_s=stats["p99_latency_s"],
                    quality_floor=spec.quality_floor,
                    cache_hit_rate=cache_hit_rate,
                    admission_delayed=0 if admission is None else admission.delayed,
                    mean_admission_wait_s=0.0 if admission is None else admission.mean_wait_s,
                    admission_backlog=(
                        0 if self.admission is None else self.admission.backlog(spec.name)
                    ),
                )
            )
        return tuple(rows)

    def summary(self, workload: str, duration_minutes: float) -> RunSummary:
        """Summarise the run for reporting."""
        duration_s = duration_minutes * 60.0
        fleet_peak, fleet_mean = self.cluster.fleet_stats(duration_s)
        return summarize(
            system=self.name,
            workload=workload,
            collector=self.collector,
            duration_minutes=duration_minutes,
            cluster_utilization=self.cluster.utilization(duration_s),
            model_loads=self.cluster.total_model_loads(),
            mean_batch_occupancy=self.cluster.mean_batch_occupancy(),
            fleet_peak_workers=fleet_peak,
            fleet_mean_workers=fleet_mean,
            workers_added=self.cluster.workers_added,
            workers_retired=self.cluster.workers_retired,
            gpu_hours=self.cluster.gpu_hours(duration_s),
            cost_usd=self.cluster.total_cost_usd(duration_s),
            tenants=self._tenant_breakdown(),
        )
