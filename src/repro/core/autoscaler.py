"""Closed-loop horizontal autoscaler (§6 promoted from a print to a loop).

The paper's discussion ends with an observation: once every worker serves at
the most approximate level and offered load still exceeds the fleet's
throughput ceiling, quality can no longer be traded for throughput and the
operator must scale horizontally.  This module turns that signal — plus
queued-backlog pressure — into a control loop that provisions workers (with
a realistic node-provisioning delay and model warm-up before they enter
rotation) and drains them back out when load subsides.

The loop mirrors the hysteresis/debounce discipline of
:mod:`repro.core.strategy`: scale-out arms only after consecutive overloaded
observations, scale-in after a longer run of underloaded ones, and each
direction has its own cooldown so the fleet never flaps.  GPU types for new
workers cycle through the configured ``gpu_mix``; scale-in removes the most
recently added worker first, so the baseline fleet survives transients
untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import GpuCluster
from repro.cluster.worker import Worker
from repro.core.allocator import Allocator
from repro.core.config import ArgusConfig
from repro.models.gpus import gpu_by_name
from repro.models.zoo import ModelZoo, Strategy
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action (for §6-style fleet timelines)."""

    time_s: float
    action: str  # "scale_out" | "scale_in"
    delta: int
    #: Workers in rotation or provisioning right after the action.
    fleet_size: int
    reason: str


@dataclass
class Autoscaler:
    """Drives the elastic fleet from saturation and backlog signals."""

    config: ArgusConfig
    zoo: ModelZoo
    cluster: GpuCluster
    allocator: Allocator
    #: Callable returning the active strategy (it switches at runtime).
    active_strategy: Callable[[], Strategy]
    events: list[ScalingEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.min_workers = self.config.effective_min_workers
        self.max_workers = self.config.effective_max_workers
        self._mix = self.config.effective_gpu_mix
        self._mix_index = 0
        self._overload_streak = 0
        self._underload_streak = 0
        self._last_scale_out_s = -math.inf
        self._last_scale_in_s = -math.inf
        #: Ids of autoscaler-added workers still in the fleet (LIFO pool).
        self._added_ids: list[int] = []

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def install(self, engine: SimulationEngine) -> None:
        """Schedule the periodic evaluation loop."""
        engine.schedule_every(
            self.config.autoscale_interval_s,
            lambda e: self.tick(e.now),
            name="autoscaler",
        )

    # ------------------------------------------------------------------ #
    # Control loop
    # ------------------------------------------------------------------ #
    def tick(self, now: float) -> None:
        """Evaluate the scaling signals once."""
        strategy = self.active_strategy()
        demand_qpm = self.allocator.load_estimator.estimated_qpm(now)
        ceiling = self.cluster.fleet_ceiling_qpm(strategy)
        ceiling_with_pending = self.cluster.fleet_ceiling_qpm(
            strategy, include_provisioning=True
        )
        queued = self.cluster.total_queued_requests()
        backlog_pressure = queued > self.config.autoscale_backlog_factor * max(
            1.0, self.cluster.backlog_slack()
        )
        saturated = (
            self.cluster.all_at_fastest_level(strategy) and demand_qpm > ceiling
        )
        overloaded = demand_qpm > self.config.scale_up_threshold * ceiling_with_pending and (
            saturated or backlog_pressure
        )

        if overloaded:
            self._overload_streak += 1
            self._underload_streak = 0
        else:
            self._overload_streak = 0

        if (
            overloaded
            and self._overload_streak >= self.config.scale_out_consecutive_ticks
            and now - self._last_scale_out_s >= self.config.scale_out_cooldown_s
        ):
            if self._scale_out(now, demand_qpm, ceiling_with_pending, strategy):
                return

        self._consider_scale_in(now, demand_qpm, ceiling, strategy, backlog_pressure)

    # ------------------------------------------------------------------ #
    # Scale-out
    # ------------------------------------------------------------------ #
    def _next_gpu(self) -> str:
        gpu = self._mix[self._mix_index % len(self._mix)]
        self._mix_index += 1
        return gpu

    def _scale_out(
        self, now: float, demand_qpm: float, projected_qpm: float, strategy: Strategy
    ) -> bool:
        in_fleet = self.cluster.fleet_size + len(self.cluster.provisioning_workers)
        batch = max(1, self.cluster.max_batch_size)
        fastest = self.zoo.fastest_level(strategy)
        peak = self.zoo.batched_peak_qpm(fastest, batch)
        reference_speed = self.zoo.latency_model.gpu.relative_speed
        added = 0
        # Add workers until the projected ceiling clears demand (with the
        # scale-up threshold as headroom), the step cap, or the fleet cap.
        while (
            added < self.config.max_scale_step
            and in_fleet + added < self.max_workers
            and (added == 0 or projected_qpm * self.config.scale_up_threshold < demand_qpm)
        ):
            gpu_name = self._next_gpu()
            speed = gpu_by_name(gpu_name).relative_speed / reference_speed
            worker = self.cluster.provision_worker(
                gpu=gpu_name,
                level=fastest,
                provision_delay_s=self.config.provision_delay_s,
                on_ready=self._on_worker_ready,
            )
            self._added_ids.append(worker.worker_id)
            projected_qpm += peak * speed
            added += 1
        if added == 0:
            return False
        self._overload_streak = 0
        self._last_scale_out_s = now
        self.events.append(
            ScalingEvent(
                time_s=now,
                action="scale_out",
                delta=added,
                fleet_size=in_fleet + added,
                reason=(
                    f"demand {demand_qpm:.0f} QPM above fleet ceiling "
                    f"(saturation/backlog)"
                ),
            )
        )
        return True

    def _on_worker_ready(self, worker: Worker) -> None:
        """Fold a freshly provisioned worker into the current plan."""
        self.allocator.recalibrate(worker.engine.now, self.active_strategy())

    # ------------------------------------------------------------------ #
    # Scale-in
    # ------------------------------------------------------------------ #
    def _scale_in_candidate(self) -> Worker | None:
        """Most recently added worker still in rotation (LIFO), falling back
        to the highest-id active worker when ``min_workers`` allows shrinking
        below the initial fleet."""
        active_ids = {w.worker_id: w for w in self.cluster.healthy_workers}
        for worker_id in reversed(self._added_ids):
            if worker_id in active_ids:
                return active_ids[worker_id]
        if not active_ids:
            return None
        return active_ids[max(active_ids)]

    def _consider_scale_in(
        self,
        now: float,
        demand_qpm: float,
        ceiling: float,
        strategy: Strategy,
        backlog_pressure: bool,
    ) -> None:
        if self.cluster.provisioning_workers:
            # Never shrink while growth is still in flight.
            self._underload_streak = 0
            return
        if self.cluster.fleet_size <= self.min_workers:
            self._underload_streak = 0
            return
        candidate = self._scale_in_candidate()
        if candidate is None:
            return
        ceiling_after = ceiling - candidate.peak_qpm(
            self.zoo.fastest_level(strategy), max(1, self.cluster.max_batch_size)
        )
        underloaded = (
            not backlog_pressure
            and demand_qpm < self.config.scale_down_threshold * ceiling_after
        )
        if not underloaded:
            self._underload_streak = 0
            return
        self._underload_streak += 1
        if self._underload_streak < self.config.scale_in_consecutive_ticks:
            return
        if now - self._last_scale_in_s < self.config.scale_in_cooldown_s:
            return
        self.cluster.drain_worker(candidate.worker_id)
        if candidate.worker_id in self._added_ids:
            self._added_ids.remove(candidate.worker_id)
        self._underload_streak = 0
        self._last_scale_in_s = now
        self.events.append(
            ScalingEvent(
                time_s=now,
                action="scale_in",
                delta=-1,
                fleet_size=self.cluster.fleet_size,
                reason=f"demand {demand_qpm:.0f} QPM fits the smaller fleet",
            )
        )
        self.allocator.recalibrate(now, strategy)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_scale_outs(self) -> int:
        """Scale-out actions taken."""
        return sum(1 for e in self.events if e.action == "scale_out")

    @property
    def num_scale_ins(self) -> int:
        """Scale-in actions taken."""
        return sum(1 for e in self.events if e.action == "scale_in")
