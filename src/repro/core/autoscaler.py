"""Closed-loop horizontal autoscaler (§6 promoted from a print to a loop).

The paper's discussion ends with an observation: once every worker serves at
the most approximate level and offered load still exceeds the fleet's
throughput ceiling, quality can no longer be traded for throughput and the
operator must scale horizontally.  This module turns that signal — plus
queued-backlog pressure — into a control loop that provisions workers (with
a realistic node-provisioning delay and model warm-up before they enter
rotation) and drains them back out when load subsides.

The loop mirrors the hysteresis/debounce discipline of
:mod:`repro.core.strategy`: scale-out arms only after consecutive overloaded
observations, scale-in after a longer run of underloaded ones, and each
direction has its own cooldown so the fleet never flaps.  GPU types for new
workers cycle through the configured ``gpu_mix``; scale-in removes the most
recently added worker first, so the baseline fleet survives transients
untouched.

Sharded runs flip ``brokered`` on: the signals, streaks and cooldowns are
evaluated identically over the shard's fleet partition, but instead of
provisioning/draining directly the loop emits
:class:`~repro.simulation.messages.ScaleRequest` records.  The shard ships
them at the next autoscale-epoch barrier; the coordinator's budget broker
grants against the *global* ``min_workers``/``max_workers``/``gpu_mix``
budget and the shard applies the grants (provision/drain + events) at
exactly the epoch time via :meth:`Autoscaler.apply_outcomes`.  While a
request is pending or awaiting a grant the loop holds still — the same
"never shrink while growth is in flight" rule the sequential loop applies
to provisioning workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import GpuCluster
from repro.cluster.worker import Worker
from repro.core.allocator import Allocator
from repro.core.config import ArgusConfig
from repro.models.gpus import gpu_by_name
from repro.models.zoo import ModelZoo, Strategy
from repro.runtime.base import Runtime, as_runtime
from repro.simulation import messages
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action (for §6-style fleet timelines)."""

    time_s: float
    action: str  # "scale_out" | "scale_in"
    delta: int
    #: Workers in rotation or provisioning right after the action.
    fleet_size: int
    reason: str


@dataclass
class Autoscaler:
    """Drives the elastic fleet from saturation and backlog signals."""

    config: ArgusConfig
    zoo: ModelZoo
    cluster: GpuCluster
    allocator: Allocator
    #: Callable returning the active strategy (it switches at runtime).
    active_strategy: Callable[[], Strategy]
    events: list[ScalingEvent] = field(default_factory=list)
    #: Brokered mode (sharded runs): emit ScaleRequests instead of acting;
    #: the coordinator's budget broker grants, :meth:`apply_outcomes` acts.
    brokered: bool = False

    def __post_init__(self) -> None:
        self.min_workers = self.config.effective_min_workers
        self.max_workers = self.config.effective_max_workers
        self._mix = self.config.effective_gpu_mix
        self._mix_index = 0
        self._overload_streak = 0
        self._underload_streak = 0
        self._last_scale_out_s = -math.inf
        self._last_scale_in_s = -math.inf
        #: Ids of autoscaler-added workers still in the fleet (LIFO pool).
        self._added_ids: list[int] = []
        #: Brokered-mode request bookkeeping: emitted-but-unshipped asks,
        #: shipped-awaiting-grant asks, the emission sequence, denial count.
        self._pending: list[messages.ScaleRequest] = []
        self._awaiting: dict[int, messages.ScaleRequest] = {}
        self._request_seq = 0
        self.denied_requests = 0
        #: Pre-emission (cooldown stamp, streak) per in-flight request seq,
        #: restored on denial so a denied ask does not consume the cooldown.
        self._denial_restore: dict[int, tuple[float, int]] = {}
        #: Scale-in grants skipped at apply time (candidate failed meanwhile);
        #: the shard ships this to the coordinator so the broker ledger can
        #: be reconciled at the next barrier.
        self.unapplied_scale_ins = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def install(self, runtime: Runtime | SimulationEngine) -> None:
        """Schedule the periodic evaluation loop on an engine or runtime."""
        runtime = as_runtime(runtime)
        runtime.schedule_every(
            self.config.autoscale_interval_s,
            lambda: self.tick(runtime.now()),
            name="autoscaler",
        )

    # ------------------------------------------------------------------ #
    # Control loop
    # ------------------------------------------------------------------ #
    def tick(self, now: float) -> None:
        """Evaluate the scaling signals once."""
        if self.brokered and (self._pending or self._awaiting):
            # A request is still in flight to the broker: neither direction
            # moves until it is answered (the brokered analogue of "never
            # shrink while growth is in flight").
            self._underload_streak = 0
            return
        strategy = self.active_strategy()
        demand_qpm = self.allocator.load_estimator.estimated_qpm(now)
        ceiling = self.cluster.fleet_ceiling_qpm(strategy)
        ceiling_with_pending = self.cluster.fleet_ceiling_qpm(
            strategy, include_provisioning=True
        )
        queued = self.cluster.total_queued_requests()
        backlog_pressure = queued > self.config.autoscale_backlog_factor * max(
            1.0, self.cluster.backlog_slack()
        )
        saturated = (
            self.cluster.all_at_fastest_level(strategy) and demand_qpm > ceiling
        )
        overloaded = demand_qpm > self.config.scale_up_threshold * ceiling_with_pending and (
            saturated or backlog_pressure
        )

        if overloaded:
            self._overload_streak += 1
            self._underload_streak = 0
        else:
            self._overload_streak = 0

        if (
            overloaded
            and self._overload_streak >= self.config.scale_out_consecutive_ticks
            and now - self._last_scale_out_s >= self.config.scale_out_cooldown_s
        ):
            if self._scale_out(now, demand_qpm, ceiling_with_pending, strategy):
                return

        self._consider_scale_in(now, demand_qpm, ceiling, strategy, backlog_pressure)

    # ------------------------------------------------------------------ #
    # Scale-out
    # ------------------------------------------------------------------ #
    def _next_gpu(self) -> str:
        gpu = self._mix[self._mix_index % len(self._mix)]
        self._mix_index += 1
        return gpu

    def _scale_out(
        self, now: float, demand_qpm: float, projected_qpm: float, strategy: Strategy
    ) -> bool:
        in_fleet = self.cluster.fleet_size + len(self.cluster.provisioning_workers)
        batch = max(1, self.cluster.max_batch_size)
        fastest = self.zoo.fastest_level(strategy)
        peak = self.zoo.batched_peak_qpm(fastest, batch)
        reference_speed = self.zoo.latency_model.gpu.relative_speed
        added = 0
        # Add workers until the projected ceiling clears demand (with the
        # scale-up threshold as headroom), the step cap, or the fleet cap.
        # Brokered mode sizes the ask with the same loop (the local mix
        # cycle projects speeds) but defers provisioning to the grant.
        while (
            added < self.config.max_scale_step
            and in_fleet + added < self.max_workers
            and (added == 0 or projected_qpm * self.config.scale_up_threshold < demand_qpm)
        ):
            gpu_name = self._next_gpu()
            speed = gpu_by_name(gpu_name).relative_speed / reference_speed
            if not self.brokered:
                worker = self.cluster.provision_worker(
                    gpu=gpu_name,
                    level=fastest,
                    provision_delay_s=self.config.provision_delay_s,
                    on_ready=self._on_worker_ready,
                )
                self._added_ids.append(worker.worker_id)
            projected_qpm += peak * speed
            added += 1
        if added == 0:
            return False
        reason = f"demand {demand_qpm:.0f} QPM above fleet ceiling (saturation/backlog)"
        if self.brokered:
            seq = self._emit_request("scale_out", now, added, reason)
            self._denial_restore[seq] = (self._last_scale_out_s, self._overload_streak)
            self._overload_streak = 0
            self._last_scale_out_s = now
            return True
        self._overload_streak = 0
        self._last_scale_out_s = now
        self.events.append(
            ScalingEvent(
                time_s=now,
                action="scale_out",
                delta=added,
                fleet_size=in_fleet + added,
                reason=reason,
            )
        )
        return True

    def _on_worker_ready(self, worker: Worker) -> None:
        """Fold a freshly provisioned worker into the current plan."""
        self.allocator.recalibrate(worker.engine.now, self.active_strategy())

    # ------------------------------------------------------------------ #
    # Scale-in
    # ------------------------------------------------------------------ #
    def _scale_in_candidate(self) -> Worker | None:
        """Most recently added worker still in rotation (LIFO), falling back
        to the highest-id active worker when ``min_workers`` allows shrinking
        below the initial fleet."""
        active_ids = {w.worker_id: w for w in self.cluster.healthy_workers}
        for worker_id in reversed(self._added_ids):
            if worker_id in active_ids:
                return active_ids[worker_id]
        if not active_ids:
            return None
        return active_ids[max(active_ids)]

    def _consider_scale_in(
        self,
        now: float,
        demand_qpm: float,
        ceiling: float,
        strategy: Strategy,
        backlog_pressure: bool,
    ) -> None:
        if self.cluster.provisioning_workers:
            # Never shrink while growth is still in flight.
            self._underload_streak = 0
            return
        if self.cluster.fleet_size <= self.min_workers:
            self._underload_streak = 0
            return
        candidate = self._scale_in_candidate()
        if candidate is None:
            return
        ceiling_after = ceiling - candidate.peak_qpm(
            self.zoo.fastest_level(strategy), max(1, self.cluster.max_batch_size)
        )
        underloaded = (
            not backlog_pressure
            and demand_qpm < self.config.scale_down_threshold * ceiling_after
        )
        if not underloaded:
            self._underload_streak = 0
            return
        self._underload_streak += 1
        if self._underload_streak < self.config.scale_in_consecutive_ticks:
            return
        if now - self._last_scale_in_s < self.config.scale_in_cooldown_s:
            return
        if self.brokered:
            seq = self._emit_request(
                "scale_in",
                now,
                1,
                f"demand {demand_qpm:.0f} QPM fits the smaller fleet",
            )
            self._denial_restore[seq] = (self._last_scale_in_s, self._underload_streak)
            self._underload_streak = 0
            self._last_scale_in_s = now
            return
        self.cluster.drain_worker(candidate.worker_id)
        if candidate.worker_id in self._added_ids:
            self._added_ids.remove(candidate.worker_id)
        self._underload_streak = 0
        self._last_scale_in_s = now
        self.events.append(
            ScalingEvent(
                time_s=now,
                action="scale_in",
                delta=-1,
                fleet_size=self.cluster.fleet_size,
                reason=f"demand {demand_qpm:.0f} QPM fits the smaller fleet",
            )
        )
        self.allocator.recalibrate(now, strategy)

    # ------------------------------------------------------------------ #
    # Brokered mode (sharded runs)
    # ------------------------------------------------------------------ #
    def _emit_request(self, action: str, now: float, count: int, reason: str) -> int:
        self._request_seq += 1
        self._pending.append(
            messages.ScaleRequest(
                seq=self._request_seq, action=action, time_s=now, count=count, reason=reason
            )
        )
        return self._request_seq

    def take_requests(self) -> tuple:
        """Pending :class:`~repro.simulation.messages.ScaleRequest`s, in
        emission order, moved to the awaiting-grant set.  The shard calls
        this when building its epoch-boundary barrier reply."""
        requests = tuple(self._pending)
        for request in requests:
            self._awaiting[request.seq] = request
        self._pending.clear()
        return requests

    def take_unapplied_scale_ins(self) -> int:
        """Scale-in grants skipped since the last barrier (and reset).

        The shard ships this count on its next :class:`BarrierReached`; the
        coordinator adds it back to the broker's committed ledger, which
        otherwise runs one worker high per skipped drain."""
        count = self.unapplied_scale_ins
        self.unapplied_scale_ins = 0
        return count

    def apply_outcomes(self, now: float, outcomes) -> None:
        """Apply the broker's grants at the epoch boundary (clock == now).

        Granted scale-outs provision with the broker-assigned GPU types
        (the *global* mix cycle); granted scale-ins re-pick the LIFO drain
        candidate at apply time — if faults removed it meanwhile the grant
        is skipped rather than draining an arbitrary worker, and the skip
        is counted in :attr:`unapplied_scale_ins` so the coordinator can
        reconcile the broker ledger at the next barrier.  A denial restores
        the pre-emission cooldown stamp and streak, so a denied ask retries
        on the next eligible tick instead of waiting out a cooldown it
        never earned.
        """
        for outcome in outcomes:
            request = self._awaiting.pop(outcome.seq, None)
            if request is None:
                continue
            if outcome.granted <= 0:
                self.denied_requests += 1
                restore = self._denial_restore.pop(outcome.seq, None)
                if restore is not None:
                    if outcome.action == "scale_out":
                        self._last_scale_out_s, self._overload_streak = restore
                    else:
                        self._last_scale_in_s, self._underload_streak = restore
                continue
            self._denial_restore.pop(outcome.seq, None)
            if outcome.action == "scale_out":
                fastest = self.zoo.fastest_level(self.active_strategy())
                for gpu_name in outcome.gpus[: outcome.granted]:
                    worker = self.cluster.provision_worker(
                        gpu=gpu_name,
                        level=fastest,
                        provision_delay_s=self.config.provision_delay_s,
                        on_ready=self._on_worker_ready,
                    )
                    self._added_ids.append(worker.worker_id)
                self.events.append(
                    ScalingEvent(
                        time_s=now,
                        action="scale_out",
                        delta=outcome.granted,
                        fleet_size=self.cluster.fleet_size
                        + len(self.cluster.provisioning_workers),
                        reason=f"{request.reason} [broker grant]",
                    )
                )
            else:
                candidate = self._scale_in_candidate()
                if candidate is None or self.cluster.fleet_size <= 1:
                    self.unapplied_scale_ins += 1
                    continue
                self.cluster.drain_worker(candidate.worker_id)
                if candidate.worker_id in self._added_ids:
                    self._added_ids.remove(candidate.worker_id)
                self.events.append(
                    ScalingEvent(
                        time_s=now,
                        action="scale_in",
                        delta=-1,
                        fleet_size=self.cluster.fleet_size,
                        reason=f"{request.reason} [broker grant]",
                    )
                )
                self.allocator.recalibrate(now, self.active_strategy())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_scale_outs(self) -> int:
        """Scale-out actions taken."""
        return sum(1 for e in self.events if e.action == "scale_out")

    @property
    def num_scale_ins(self) -> int:
        """Scale-in actions taken."""
        return sum(1 for e in self.events if e.action == "scale_in")
