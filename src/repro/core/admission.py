"""Weighted fair-share admission control (the multi-tenant front door).

Sits between request arrival and the Prompt Scheduler.  Each tenant owns a
token bucket whose sustained rate is its weight share of the fleet's current
throughput ceiling; a request is admitted immediately when its tenant has a
token and no backlog, and is otherwise parked in the tenant's admission
queue.  Queued requests drain by deficit round-robin — quanta proportional
to tenant weights — in two passes: a *guaranteed* pass spending each
tenant's own tokens, then a work-conserving *surplus* pass that hands
leftover aggregate capacity to whoever still has backlog.  A flash-crowd
tenant therefore queues behind its own share while quiet tenants keep
admitting at line rate; when the crowd is alone, it gets the whole fleet.

Admission delay is charged to the delayed request: its recorded arrival
time is the original offer time, so time spent in the admission queue
counts against the offending tenant's own latency SLO, not anyone else's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.prompts.generator import Prompt
from repro.runtime.base import Runtime, as_runtime
from repro.simulation.engine import SimulationEngine
from repro.workloads.tenants import TenantSpec


@dataclass
class TenantAdmissionStats:
    """Per-tenant admission accounting."""

    offered: int = 0
    admitted_immediately: int = 0
    admitted_after_wait: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0
    #: Queued requests migrated to another shard by cross-shard work
    #: stealing (they complete elsewhere, so offered > admitted here).
    stolen: int = 0

    @property
    def admitted(self) -> int:
        """Total requests admitted for this tenant."""
        return self.admitted_immediately + self.admitted_after_wait

    @property
    def delayed(self) -> int:
        """Requests that waited in the admission queue."""
        return self.admitted_after_wait

    @property
    def mean_wait_s(self) -> float:
        """Mean admission delay over delayed requests (0 when none)."""
        if self.admitted_after_wait == 0:
            return 0.0
        return self.total_wait_s / self.admitted_after_wait


@dataclass
class _TenantState:
    spec: TenantSpec
    tokens: float
    deficit: float = 0.0
    queue: deque = field(default_factory=deque)


class FairShareAdmission:
    """Per-tenant token buckets + deficit round-robin over admission queues."""

    #: Smallest spacing between scheduled drain pumps (guards against
    #: pathological tiny-rate schedules flooding the event heap).
    MIN_PUMP_DELAY_S = 0.01
    #: Largest spacing: even a fully token-starved backlog is re-examined
    #: this often so capacity changes (autoscaling) are picked up.
    MAX_PUMP_DELAY_S = 1.0

    def __init__(
        self,
        engine: SimulationEngine | None = None,
        tenants: tuple[TenantSpec, ...] = (),
        capacity_qps: Callable[[], float] | None = None,
        admit: Callable[[Prompt, float], None] | None = None,
        rate_factor: float = 1.0,
        burst_s: float = 2.0,
        runtime: Runtime | None = None,
    ) -> None:
        """Args:
        engine: simulation engine used for drain scheduling (legacy spelling
            of ``runtime=SimRuntime(engine)``; give exactly one of the two).
        tenants: the tenant contracts (weights drive rates and quanta).
        capacity_qps: live fleet throughput ceiling in requests/second;
            re-read on every refill so autoscaling moves admission rates.
        admit: callback ``admit(prompt, offer_time_s)`` dispatching an
            admitted request; ``offer_time_s`` is the original arrival so
            admission delay counts into the request's latency.
        rate_factor: aggregate admission rate as a multiple of capacity.
        burst_s: per-tenant bucket depth in seconds of its guaranteed rate.
        runtime: clock-agnostic scheduler for drain pumps; on a
            :class:`~repro.runtime.wall.WallClockRuntime` the same DRR logic
            gates the live gateway.
        """
        if len(tenants) < 2:
            raise ValueError("fair-share admission needs at least two tenants")
        if capacity_qps is None or admit is None:
            raise TypeError("capacity_qps and admit are required")
        if (engine is None) == (runtime is None):
            raise TypeError("give exactly one of engine= or runtime=")
        self.engine = engine
        self.runtime = runtime if runtime is not None else as_runtime(engine)
        self.capacity_qps = capacity_qps
        self.admit = admit
        self.rate_factor = float(rate_factor)
        self.burst_s = float(burst_s)
        total_weight = sum(spec.weight for spec in tenants)
        self._order = tuple(spec.name for spec in tenants)
        max_weight = max(spec.weight for spec in tenants)
        #: DRR quantum per round, normalised so the heaviest tenant's
        #: quantum is exactly one request.  Floored at 1/64 so extreme
        #: weight ratios cannot spin the drain loop (or, past float
        #: precision, hang it) — beyond 64:1 the round-robin *order*
        #: saturates while the token rates still honor the exact weights.
        self._quantum = {
            spec.name: max(spec.weight / max_weight, 1.0 / 64.0) for spec in tenants
        }
        self._weight_share = {spec.name: spec.weight / total_weight for spec in tenants}
        self._tenants: dict[str, _TenantState] = {
            spec.name: _TenantState(spec=spec, tokens=1.0) for spec in tenants
        }
        self._global_tokens = 1.0
        self._last_refill_s = 0.0
        self._pump_scheduled = False
        self.stats: dict[str, TenantAdmissionStats] = {
            spec.name: TenantAdmissionStats() for spec in tenants
        }

    # ------------------------------------------------------------------ #
    # Rates
    # ------------------------------------------------------------------ #
    def _global_rate_qps(self) -> float:
        return max(self.rate_factor * float(self.capacity_qps()), 1e-9)

    def _tenant_rate_qps(self, name: str, global_rate: float) -> float:
        return self._weight_share[name] * global_rate

    def _refill(self, now: float) -> None:
        dt = now - self._last_refill_s
        if dt <= 0:
            return
        self._last_refill_s = now
        global_rate = self._global_rate_qps()
        # The global bucket can be *negative*: guaranteed-share admissions
        # have reservation priority and overdraw it, which suppresses the
        # work-conserving surplus pass until the debt refills.  Quiet
        # tenants are therefore never delayed by a noisy tenant's backlog.
        self._global_tokens = min(
            self._global_tokens + dt * global_rate,
            max(self.burst_s * global_rate, 1.0),
        )
        for name, state in self._tenants.items():
            rate = self._tenant_rate_qps(name, global_rate)
            state.tokens = min(state.tokens + dt * rate, max(self.burst_s * rate, 1.0))

    # ------------------------------------------------------------------ #
    # Offer path
    # ------------------------------------------------------------------ #
    def backlog(self, tenant: str | None = None) -> int:
        """Queued (not yet admitted) requests, per tenant or in total."""
        if tenant is not None:
            return len(self._tenants[tenant].queue)
        return sum(len(state.queue) for state in self._tenants.values())

    def steal_tail(self, count: int) -> list[tuple[str, float, Prompt]]:
        """Pop up to ``count`` queued entries off the backs of the longest
        tenant queues, for cross-shard migration.

        Repeatedly takes from the longest queue (ties broken by tenant
        order), newest entries first — the tail is the work least likely to
        admit soon, so draining it preserves each queue's FIFO head.
        Returns ``(tenant, offer_time_s, prompt)`` tuples sorted oldest
        first (stable migration order for the destination).  The entries'
        ``offered`` accounting stays here at the source; the per-tenant
        ``stolen`` counter records the migration.
        """
        stolen: list[tuple[str, float, Prompt]] = []
        while len(stolen) < count:
            name = max(self._order, key=lambda n: len(self._tenants[n].queue))
            state = self._tenants[name]
            if not state.queue:
                break
            offered_at, prompt = state.queue.pop()
            self.stats[name].stolen += 1
            stolen.append((name, offered_at, prompt))
        stolen.sort(key=lambda entry: (entry[1], entry[0]))
        return stolen

    def offer(self, now: float, prompt: Prompt) -> bool:
        """Offer one request; returns True when admitted immediately.

        Unknown tenants (e.g. hand-injected prompts) bypass fair-share: they
        have no contract to enforce, so they are admitted directly.
        """
        state = self._tenants.get(prompt.tenant)
        if state is None:
            return True
        self._refill(now)
        stats = self.stats[prompt.tenant]
        stats.offered += 1
        if not state.queue and state.tokens >= 1.0:
            state.tokens -= 1.0
            self._global_tokens -= 1.0
            stats.admitted_immediately += 1
            return True
        state.queue.append((now, prompt))
        self._schedule_pump()
        return False

    # ------------------------------------------------------------------ #
    # Drain (deficit round-robin)
    # ------------------------------------------------------------------ #
    def _admit_from(self, state: _TenantState, now: float) -> None:
        offered_at, prompt = state.queue.popleft()
        stats = self.stats[state.spec.name]
        wait = now - offered_at
        stats.admitted_after_wait += 1
        stats.total_wait_s += wait
        stats.max_wait_s = max(stats.max_wait_s, wait)
        self.admit(prompt, offered_at)

    def _drain_pass(self, now: float, can_admit, spend_tenant_tokens: bool) -> None:
        """One DRR drain pass: weight-proportional quanta, capped deficits.

        ``can_admit(state)`` is the token predicate gating each admission;
        ``spend_tenant_tokens`` says whether admissions consume the tenant's
        own bucket (guaranteed pass) or only the aggregate one (surplus).
        The pass runs rounds until no backlogged tenant satisfies the
        predicate.
        """
        tenants = self._tenants
        while any(state.queue and can_admit(state) for state in tenants.values()):
            for name in self._order:
                state = tenants[name]
                if not state.queue:
                    state.deficit = 0.0
                    continue
                # Cap carried deficit so a token-starved tenant cannot bank
                # unbounded credit while others drain (standard DRR hygiene).
                state.deficit = min(state.deficit + self._quantum[name], 2.0)
                while state.queue and state.deficit >= 1.0 and can_admit(state):
                    state.deficit -= 1.0
                    if spend_tenant_tokens:
                        state.tokens -= 1.0
                    self._global_tokens -= 1.0
                    self._admit_from(state, now)

    def _drain(self, now: float) -> None:
        # Pass 1 — guaranteed shares: spend each tenant's own tokens.
        # Reserved tokens have priority over the aggregate bucket (which
        # they may overdraw).
        self._drain_pass(now, lambda state: state.tokens >= 1.0, spend_tenant_tokens=True)
        # Pass 2 — work-conserving surplus: leftover aggregate tokens go to
        # whoever still has backlog, same weighted order.
        self._drain_pass(
            now, lambda _state: self._global_tokens >= 1.0, spend_tenant_tokens=False
        )

    def _next_pump_delay(self) -> float:
        """Time until some backlogged tenant can plausibly admit again.

        A backlogged tenant drains via its own guaranteed tokens (no global
        requirement) or via the surplus pass once the aggregate bucket
        recovers — whichever comes first.
        """
        global_rate = self._global_rate_qps()
        global_need = max(0.0, 1.0 - self._global_tokens) / global_rate
        best = None
        for name, state in self._tenants.items():
            if not state.queue:
                continue
            rate = self._tenant_rate_qps(name, global_rate)
            need = max(0.0, 1.0 - state.tokens) / max(rate, 1e-9)
            wait = min(need, global_need)
            best = wait if best is None else min(best, wait)
        if best is None:
            return self.MAX_PUMP_DELAY_S
        return min(max(best, self.MIN_PUMP_DELAY_S), self.MAX_PUMP_DELAY_S)

    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.runtime.schedule_in(self._next_pump_delay(), self._pump, name="admission-pump")

    def _pump(self) -> None:
        self._pump_scheduled = False
        now = self.runtime.now()
        self._refill(now)
        self._drain(now)
        if self.backlog():
            self._schedule_pump()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats_for(self, tenant: str) -> TenantAdmissionStats:
        """Admission stats for one tenant (empty stats for unknown names)."""
        return self.stats.get(tenant, TenantAdmissionStats())
