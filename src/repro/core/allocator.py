"""The Allocator: Argus's periodic calibration loop (block A+B of Fig. 3).

Every ``reallocation_interval_s`` (one minute by default) the Allocator:

1. estimates the near-term offered load ``R_t`` from recent arrivals;
2. reads the affinity distribution ``f(l)`` from the Workload Distribution
   Predictor;
3. solves Eq. 1 for the active strategy to get worker placements and the
   feasible load distribution ``g(l)``;
4. runs ODA to align ``f`` with ``g`` and installs the resulting PASM in the
   Prompt Scheduler;
5. applies the worker placement to the cluster (model loads happen in the
   background on the affected workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import GpuCluster
from repro.core.config import ArgusConfig
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.predictor import LoadEstimator, WorkloadDistributionPredictor
from repro.core.scheduler import PromptScheduler
from repro.core.solver import AllocationPlan, AllocationSolver
from repro.models.zoo import ModelZoo, Strategy


@dataclass
class AllocationRecord:
    """What the Allocator decided on one calibration tick."""

    time_s: float
    strategy: Strategy
    target_qpm: float
    plan: AllocationPlan
    shift_map: ShiftMap
    #: Estimated arrival rate before backlog drain, safety factor and switch
    #: margin are applied; the strategy switcher compares this against the
    #: per-strategy capacity ceilings (transient queue build-up must not
    #: masquerade as sustained overload).
    demand_qpm: float = 0.0


@dataclass
class Allocator:
    """Periodic solver + ODA loop."""

    config: ArgusConfig
    zoo: ModelZoo
    cluster: GpuCluster
    scheduler: PromptScheduler
    #: Profiled mean quality per level, per strategy (from QualityProfiler).
    quality_vectors: dict[Strategy, np.ndarray]
    #: The config's load_safety_factor is applied at recalibration time, so
    #: the estimator itself stays neutral (no double safety margin).
    load_estimator: LoadEstimator = field(
        default_factory=lambda: LoadEstimator(safety_factor=1.0)
    )
    solver: AllocationSolver = field(default_factory=AllocationSolver)
    aligner: OptimizedDistributionAligner = field(default_factory=OptimizedDistributionAligner)
    #: True while a strategy switch is in flight (adds the 1.5x margin).
    switching_in_progress: bool = False
    history: list[AllocationRecord] = field(default_factory=list)
    prompt_aware: bool = True

    def __post_init__(self) -> None:
        num_levels = self.zoo.num_levels(self.config.default_strategy)
        self.predictors: dict[Strategy, WorkloadDistributionPredictor] = {
            strategy: WorkloadDistributionPredictor(
                num_levels=self.zoo.num_levels(strategy),
                lookback=self.config.affinity_lookback,
            )
            for strategy in (Strategy.AC, Strategy.SM)
        }
        self._num_levels = num_levels
        #: Solver memo-key tag: plans are interpreted through tenant floors
        #: and weights, so deployments with different tenant contracts must
        #: never share cached plans (None for the anonymous workload).
        self._tenant_signature: tuple | None = (
            tuple(
                (spec.name, spec.weight, spec.quality_floor_rank)
                for spec in self.config.tenants
            )
            if self.config.tenants
            else None
        )

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #
    def observe_arrival(self, time_s: float) -> None:
        """Record an arrival for load estimation."""
        self.load_estimator.observe_arrival(time_s)

    def observe_affinity(
        self, strategy: Strategy, predicted_rank: int, weight: float = 1.0
    ) -> None:
        """Record a classifier prediction for the affinity histogram.

        ``weight`` is the prompt's tenant fair-share weight, so the PASM the
        planner aligns against is the *tenant-weighted* affinity histogram
        (heavier tenants pull the plan harder); 1.0 for anonymous traffic.
        """
        self.predictors[Strategy(strategy)].observe(predicted_rank, weight=weight)

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def recalibrate(self, now_s: float, strategy: Strategy) -> AllocationRecord:
        """Run one calibration tick for the given active strategy."""
        strategy = Strategy(strategy)
        # Backlog drain term: plan enough extra capacity to clear any queue
        # build-up within one reallocation interval, so a burst does not
        # leave a lingering tail.  In-service batch members are excluded —
        # they are normal in-flight work — and the slack scales with the
        # batch limit because up to one full batch legitimately queues
        # behind each in-flight GPU pass.
        excess_backlog = max(
            0, self.cluster.total_queued_requests() - self.cluster.backlog_slack()
        )
        demand_qpm = self.load_estimator.estimated_qpm(now_s)
        drain_qpm = excess_backlog * 60.0 / self.config.reallocation_interval_s
        target_qpm = (demand_qpm + drain_qpm) * self.config.load_safety_factor
        if self.switching_in_progress:
            target_qpm *= self.config.switch_margin
        target_qpm = max(target_qpm, 1.0)

        quality = self.quality_vectors[strategy]
        levels = self.zoo.levels(strategy)
        # Batch-aware capacity model: a worker running full batches sustains
        # its level's peak QPM times the Fig. 14 speed-up at the cluster's
        # batch limit (exactly the single-request peak when batching is off).
        batch = max(1, self.cluster.max_batch_size)
        peak_qpm = np.array(
            [self.zoo.batched_peak_qpm(level, batch) for level in levels]
        )
        healthy = self.cluster.healthy_workers
        num_healthy = len(healthy)
        if num_healthy == 0:
            shift_map = ShiftMap.identity(len(levels))
            plan = AllocationPlan(
                workers_per_level=tuple(0 for _ in levels),
                qpm_per_level=tuple(0.0 for _ in levels),
                feasible=False,
                target_qpm=target_qpm,
                expected_quality=0.0,
            )
            record = AllocationRecord(
                now_s, strategy, target_qpm, plan, shift_map, demand_qpm=demand_qpm
            )
            self.history.append(record)
            return record

        # Heterogeneity-aware capacity model: per-worker GPU speeds replace
        # the uniform ``num_workers x rate`` assumption.  The homogeneous
        # fast path (all speeds 1.0) is the seed solve, bit-for-bit.
        speeds = [w.speed_factor for w in healthy]
        plan = self.solver.solve(
            target_qpm,
            quality,
            peak_qpm,
            num_healthy,
            speed_factors=None if all(s == 1.0 for s in speeds) else speeds,
            signature=self._tenant_signature,
        )
        load_distribution = plan.load_distribution()

        if self.prompt_aware:
            affinity = self.predictors[strategy].affinity_distribution()
            shift_map = self.aligner.align(affinity, load_distribution)
        else:
            shift_map = ShiftMap.load_proportional(load_distribution)

        self._apply_plan(plan, strategy)
        self.scheduler.set_shift_map(shift_map)
        self.scheduler.set_strategy(strategy)

        record = AllocationRecord(
            time_s=now_s,
            strategy=strategy,
            target_qpm=target_qpm,
            plan=plan,
            shift_map=shift_map,
            demand_qpm=demand_qpm,
        )
        self.history.append(record)
        return record

    def _apply_plan(self, plan: AllocationPlan, strategy: Strategy) -> None:
        """Push the plan's worker placement to the cluster.

        Workers are handed to the plan fastest-GPU-first so the solver's
        heterogeneous capacity model (fastest workers on the lowest ranks)
        matches the realised placement; on a homogeneous fleet the stable
        sort preserves the original id order exactly.
        """
        ordered = sorted(
            self.cluster.healthy_workers, key=lambda w: (-w.speed_factor, w.worker_id)
        )
        healthy_ids = [w.worker_id for w in ordered]
        assignment = plan.worker_assignment(healthy_ids)
        levels = self.zoo.levels(strategy)
        level_assignment = {
            worker_id: levels[rank] for worker_id, rank in assignment.items()
        }
        self.cluster.apply_assignment(level_assignment)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def last_record(self) -> AllocationRecord | None:
        """The most recent calibration outcome."""
        return self.history[-1] if self.history else None

    def solver_latencies(self) -> list[float]:
        """Wall-clock solve times are not simulated; provided for API parity."""
        return []
