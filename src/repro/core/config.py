"""Configuration for the Argus serving system and its baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.slo import SloPolicy
from repro.models.zoo import Strategy


@dataclass
class ArgusConfig:
    """Tunable parameters of an Argus deployment.

    Defaults mirror the paper's test bed: 8 A100 workers, AC as the default
    strategy, a one-minute re-allocation interval, a 1000-prompt look-back
    window for the affinity predictor, and an SLO of 3x SD-XL latency.
    """

    num_workers: int = 8
    gpu: str = "A100"
    default_strategy: Strategy = Strategy.AC
    #: How often the Allocator re-solves the ILP and refreshes the PASM.
    reallocation_interval_s: float = 60.0
    #: Look-back window (number of prompts) for the affinity histogram.
    affinity_lookback: int = 1000
    #: Safety factor applied to the estimated load before solving, so the
    #: planned allocation keeps queueing headroom below the SLO budget.
    load_safety_factor: float = 1.25
    #: Extra capacity margin used while an AC→SM switch is in flight (§4.6).
    switch_margin: float = 1.5
    #: Cache-retrieval latency (seconds) above which Argus abandons AC.
    retrieval_latency_threshold_s: float = 0.6
    #: Consecutive slow/failed retrieval observations required to switch.
    retrieval_violations_to_switch: int = 20
    #: Interval between background network probes while running on SM.
    probe_interval_s: float = 30.0
    #: Out-of-band recalibration trigger: when more than this many requests
    #: per healthy worker *per batch slot* are waiting in queues (in-service
    #: batch members excluded, threshold scaled by ``max_batch_size``), the
    #: allocator re-solves immediately instead of waiting for the next
    #: periodic tick (§4.7 tail-latency protection at the allocation layer).
    #: Zero or negative disables the trigger.
    backlog_recalibration_per_worker: float = 3.0
    #: Minimum spacing between backlog-triggered recalibrations.
    backlog_recalibration_min_gap_s: float = 10.0
    #: Latency SLO policy (3x the largest model by default).
    slo: SloPolicy = field(default_factory=SloPolicy)
    #: Number of prompts used to train / retrain the classifier.
    classifier_training_prompts: int = 2000
    #: Epochs per classifier (re)training session.
    classifier_epochs: int = 20
    #: Number of prompts used to profile per-level quality for the solver.
    profiling_prompts: int = 1000
    #: GPU memory per worker in GiB.
    worker_memory_gib: float = 80.0
    #: Largest batch a worker may serve in one GPU pass.  1 reproduces the
    #: paper's batch-size-1 serving exactly; >1 enables dynamic batching
    #: along the Fig. 14 throughput curves.
    max_batch_size: int = 1
    #: How long an under-full batch waits for more arrivals before being
    #: launched anyway (only meaningful when ``max_batch_size > 1``).
    batch_timeout_s: float = 0.25
    #: When True, a worker stops serving while it loads a new model variant.
    #: Argus keeps this False (it serves with the resident model while the
    #: new one loads, §4.6); baselines that naively swap models pay the full
    #: Table-2 load latency on the serving path.
    blocking_model_loads: bool = False
    #: Random seed for every stochastic component.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.reallocation_interval_s <= 0:
            raise ValueError("reallocation interval must be positive")
        if self.affinity_lookback <= 0:
            raise ValueError("affinity_lookback must be positive")
        if self.load_safety_factor < 1.0:
            raise ValueError("load_safety_factor must be >= 1.0")
        if self.switch_margin < 1.0:
            raise ValueError("switch_margin must be >= 1.0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        self.default_strategy = Strategy(self.default_strategy)

    @property
    def batching_enabled(self) -> bool:
        """Whether workers serve dynamic batches rather than batch-size-1."""
        return self.max_batch_size > 1
