"""Configuration for the Argus serving system and its baselines."""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.metrics.slo import SloPolicy
from repro.models.gpus import gpu_by_name
from repro.models.zoo import Strategy
from repro.workloads.tenants import TenantSpec, validate_tenants


@dataclass
class ArgusConfig:
    """Tunable parameters of an Argus deployment.

    Defaults mirror the paper's test bed: 8 A100 workers, AC as the default
    strategy, a one-minute re-allocation interval, a 1000-prompt look-back
    window for the affinity predictor, and an SLO of 3x SD-XL latency.
    """

    num_workers: int = 8
    gpu: str = "A100"
    default_strategy: Strategy = Strategy.AC
    #: How often the Allocator re-solves the ILP and refreshes the PASM.
    reallocation_interval_s: float = 60.0
    #: Look-back window (number of prompts) for the affinity histogram.
    affinity_lookback: int = 1000
    #: Safety factor applied to the estimated load before solving, so the
    #: planned allocation keeps queueing headroom below the SLO budget.
    load_safety_factor: float = 1.25
    #: Extra capacity margin used while an AC→SM switch is in flight (§4.6).
    switch_margin: float = 1.5
    #: Cache-retrieval latency (seconds) above which Argus abandons AC.
    retrieval_latency_threshold_s: float = 0.6
    #: Consecutive slow/failed retrieval observations required to switch.
    retrieval_violations_to_switch: int = 20
    #: Interval between background network probes while running on SM.
    probe_interval_s: float = 30.0
    #: Out-of-band recalibration trigger: when more than this many requests
    #: per healthy worker *per batch slot* are waiting in queues (in-service
    #: batch members excluded, threshold scaled by ``max_batch_size``), the
    #: allocator re-solves immediately instead of waiting for the next
    #: periodic tick (§4.7 tail-latency protection at the allocation layer).
    #: Zero or negative disables the trigger.
    backlog_recalibration_per_worker: float = 3.0
    #: Minimum spacing between backlog-triggered recalibrations.
    backlog_recalibration_min_gap_s: float = 10.0
    #: Latency SLO policy (3x the largest model by default).
    slo: SloPolicy = field(default_factory=SloPolicy)
    # ----------------------------------------------------------------- #
    # Elastic fleet / closed-loop autoscaler (§6 promoted to a control loop)
    # ----------------------------------------------------------------- #
    #: Enable horizontal scaling.  False keeps the fixed pool and is
    #: bit-for-bit the pre-autoscaler behaviour.
    autoscale_enabled: bool = False
    #: Fleet-size floor for scale-in (None = the initial ``num_workers``).
    min_workers: int | None = None
    #: Fleet-size ceiling for scale-out (None = 4x the initial fleet).
    max_workers: int | None = None
    #: GPU types added on scale-out, cycled round-robin (empty = ``gpu``).
    gpu_mix: tuple[str, ...] = ()
    #: Node provisioning delay before a new worker's model warm-up begins.
    provision_delay_s: float = 90.0
    #: How often the autoscaler evaluates its signals.
    autoscale_interval_s: float = 15.0
    #: Demand/ceiling ratio that arms scale-out (hysteresis high side).
    scale_up_threshold: float = 0.9
    #: Demand vs post-removal ceiling ratio that arms scale-in (low side).
    scale_down_threshold: float = 0.6
    #: Consecutive overloaded ticks before scale-out fires (debounce).
    scale_out_consecutive_ticks: int = 2
    #: Consecutive underloaded ticks before scale-in fires (hysteresis
    #: window = ticks x ``autoscale_interval_s``).
    scale_in_consecutive_ticks: int = 8
    #: Minimum spacing between scale-out actions.
    scale_out_cooldown_s: float = 30.0
    #: Minimum spacing between scale-in actions.
    scale_in_cooldown_s: float = 180.0
    #: Most workers added in one scale-out action.
    max_scale_step: int = 2
    #: Queued requests beyond this multiple of the cluster's backlog slack
    #: count as scale-out pressure even before full saturation.
    autoscale_backlog_factor: float = 2.0
    #: Training prompts pre-inserted into the approximate cache before the
    #: run (0 = cold start: the cache fills from live traffic only).
    cache_warm_prompts: int = 300
    #: Number of prompts used to train / retrain the classifier.
    classifier_training_prompts: int = 2000
    #: Epochs per classifier (re)training session.
    classifier_epochs: int = 20
    #: Number of prompts used to profile per-level quality for the solver.
    profiling_prompts: int = 1000
    #: GPU memory per worker in GiB.  None (default) gives each worker its
    #: GPU type's native memory (80 GiB on the A100 reference, so the
    #: homogeneous default is unchanged); set a float to override uniformly.
    worker_memory_gib: float | None = None
    #: Largest batch a worker may serve in one GPU pass.  1 reproduces the
    #: paper's batch-size-1 serving exactly; >1 enables dynamic batching
    #: along the Fig. 14 throughput curves.
    max_batch_size: int = 1
    #: How long an under-full batch waits for more arrivals before being
    #: launched anyway (only meaningful when ``max_batch_size > 1``).
    batch_timeout_s: float = 0.25
    # ----------------------------------------------------------------- #
    # Multi-tenancy (per-tenant SLO classes, fair-share admission, quotas)
    # ----------------------------------------------------------------- #
    #: Tenant contracts served by this deployment.  Empty keeps the
    #: anonymous single-tenant workload and is bit-for-bit the pre-tenancy
    #: behaviour; dict entries (e.g. from a scenario JSON round-trip) are
    #: coerced to :class:`~repro.workloads.tenants.TenantSpec`.
    tenants: tuple[TenantSpec, ...] = ()
    #: Enable the weighted fair-share admission controller (token buckets +
    #: deficit round-robin) in front of the scheduler.  Only engages with
    #: two or more tenants — fairness needs competing parties; False keeps
    #: tenant tagging/accounting but admits everything immediately (the
    #: no-isolation baseline the noisy-neighbor scenario compares against).
    fair_share_admission: bool = True
    #: Aggregate admission rate as a multiple of the fleet's current
    #: throughput ceiling.  1.0 keeps total admitted inflow at what the
    #: fleet can actually serve, so an overloading tenant queues at
    #: admission (charged to itself) instead of flooding the shared worker
    #: queues; raise it to trade isolation for more aggressive draining.
    admission_rate_factor: float = 1.0
    #: Token-bucket depth per tenant, in seconds of its guaranteed rate
    #: (bursts up to this much above the sustained share are admitted
    #: immediately).
    admission_burst_s: float = 2.0
    #: Deadline-ordered per-tenant worker queues (weighted deficit
    #: round-robin across tenant subqueues, earliest-deadline-first within
    #: each).  Only engages with two or more tenants — with a single queue
    #: owner the discipline degenerates to FIFO, and keeping the plain deque
    #: preserves single-tenant bit-identity.
    tenant_priority_queues: bool = False
    # ----------------------------------------------------------------- #
    # Sharded parallel execution (simulation/shard.py)
    # ----------------------------------------------------------------- #
    #: Number of shard processes to partition the simulation across.  1 runs
    #: the plain sequential engine (bit-for-bit the unsharded behaviour);
    #: N > 1 splits the arrival stream and the fleet into N slices, each on
    #: its own event loop, synchronized at ``sync_window_s`` barriers.
    shards: int = 1
    #: Conservative barrier window for sharded runs: shards exchange fleet /
    #: metrics deltas and re-align their clocks every this many simulated
    #: seconds (the shared solver/admission tick granularity).
    sync_window_s: float = 60.0
    #: Fixed simulated-time grid on which sharded autoscaled runs exchange
    #: scale requests and grants with the coordinator's budget broker.  The
    #: grid is independent of ``sync_window_s`` (boundaries are the union of
    #: both), which is what keeps autoscaled N-shard runs
    #: barrier-window-invariant: grants always apply at the same simulated
    #: instants no matter how wide the barrier windows are.
    autoscale_epoch_s: float = 60.0
    #: Cross-shard work stealing for skewed tenant bin-packs: at each
    #: barrier the coordinator may migrate admission-queue tails from the
    #: most-backlogged shard to idle shards.  Off by default; disabled runs
    #: exchange zero stealing messages and are bit-identical to PR-6
    #: sharding.  Requires tenant-mode sharding with fair-share admission
    #: (the admission queues are what gets stolen).
    shard_work_stealing: bool = False
    #: Smallest admission backlog (queued requests) at which a shard
    #: becomes a stealing source.
    steal_backlog_threshold: int = 8
    #: Largest fraction of the source shard's admission backlog migrated at
    #: one barrier (whole-queue tails; in-flight batches never move).
    steal_max_fraction: float = 0.5
    #: Keep a Python object per completed request in the metrics collector.
    #: Summaries and minute series come from the columnar store either way;
    #: disable for very long runs (e.g. the 10M-request fig16-xl trace)
    #: where tens of millions of retained objects dominate memory and GC.
    retain_completed: bool = True
    # ----------------------------------------------------------------- #
    # Distributed cache tier (cache/tier.py)
    # ----------------------------------------------------------------- #
    #: Number of cache-node shards the approximate cache is consistent-hash
    #: partitioned across.  1 with ``cache_replication=0`` keeps the plain
    #: in-process cache (bit-for-bit the pre-tier behaviour); >= 2 builds a
    #: :class:`~repro.cache.tier.CacheTier` whose lookups fan out to every
    #: reachable node and whose entries live on their ring owner.
    cache_shards: int = 1
    #: Replica copies per entry beyond the owner (bounded staleness: copies
    #: become readable ``cache_replication_lag_s`` after the primary write).
    #: Must stay below ``cache_shards``; any nonzero value enables the tier.
    cache_replication: int = 0
    #: Virtual nodes per cache node on the consistent-hash ring.  More
    #: vnodes spread load more evenly and shrink per-node migration batches
    #: on ring changes, at O(vnodes * shards) ring-build cost.
    cache_node_vnodes: int = 64
    #: Coarse-quantisation clusters per cache node's vector index.  Each
    #: node stays a single flat matrix until it holds ``32 *`` this many
    #: rows, then fits centroids and stores each cluster contiguously.
    cache_node_clusters: int = 96
    #: Clusters scanned per query once a node's index is quantised (the
    #: recall/latency dial; the flat regime scans everything regardless).
    cache_node_nprobe: int = 8
    #: Bounded-staleness replication lag: seconds after the primary write
    #: before replica copies become readable (and the tombstone-compaction
    #: horizon for cross-shard deletes).
    cache_replication_lag_s: float = 30.0
    #: State fetches per node per minute above which a shard counts as hot
    #: and reads shift to its replicas.
    cache_hot_shard_threshold: int = 240
    #: Extra estimated backlog (seconds) a worker near the likely-hit cache
    #: shard may carry and still win routing over a farther, emptier worker.
    #: 0 disables shard-aware routing even when the tier is on.
    cache_affinity_tolerance_s: float = 0.5
    #: When True, a worker stops serving while it loads a new model variant.
    #: Argus keeps this False (it serves with the resident model while the
    #: new one loads, §4.6); baselines that naively swap models pay the full
    #: Table-2 load latency on the serving path.
    blocking_model_loads: bool = False
    #: Random seed for every stochastic component.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.reallocation_interval_s <= 0:
            raise ValueError("reallocation interval must be positive")
        if self.affinity_lookback <= 0:
            raise ValueError("affinity_lookback must be positive")
        if self.load_safety_factor < 1.0:
            raise ValueError("load_safety_factor must be >= 1.0")
        if self.switch_margin < 1.0:
            raise ValueError("switch_margin must be >= 1.0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        if self.retrieval_latency_threshold_s <= 0:
            raise ValueError("retrieval_latency_threshold_s must be positive")
        if self.retrieval_violations_to_switch < 1:
            raise ValueError("retrieval_violations_to_switch must be >= 1")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if self.backlog_recalibration_min_gap_s < 0:
            raise ValueError("backlog_recalibration_min_gap_s must be non-negative")
        self.default_strategy = Strategy(self.default_strategy)
        gpu_by_name(self.gpu)  # raises KeyError for unknown GPU types
        self.gpu_mix = tuple(self.gpu_mix)
        for name in self.gpu_mix:
            gpu_by_name(name)  # raises KeyError for unknown GPU types
        if self.min_workers is not None and not 1 <= self.min_workers <= self.num_workers:
            raise ValueError("min_workers must be in [1, num_workers]")
        if self.max_workers is not None and self.max_workers < self.num_workers:
            raise ValueError("max_workers must be >= num_workers")
        if (
            self.min_workers is not None
            and self.max_workers is not None
            and self.min_workers > self.max_workers
        ):
            raise ValueError("min_workers must not exceed max_workers")
        if self.provision_delay_s < 0:
            raise ValueError("provision_delay_s must be non-negative")
        if self.autoscale_interval_s <= 0:
            raise ValueError("autoscale_interval_s must be positive")
        if not 0.0 < self.scale_down_threshold < self.scale_up_threshold:
            raise ValueError("need 0 < scale_down_threshold < scale_up_threshold")
        if self.scale_out_consecutive_ticks < 1 or self.scale_in_consecutive_ticks < 1:
            raise ValueError("debounce tick counts must be >= 1")
        if self.scale_out_cooldown_s < 0 or self.scale_in_cooldown_s < 0:
            raise ValueError("scale cooldowns must be non-negative")
        if self.max_scale_step < 1:
            raise ValueError("max_scale_step must be >= 1")
        if self.autoscale_backlog_factor < 0:
            raise ValueError("autoscale_backlog_factor must be non-negative")
        if self.cache_warm_prompts < 0:
            raise ValueError("cache_warm_prompts must be non-negative")
        if self.classifier_training_prompts < 1:
            raise ValueError("classifier_training_prompts must be >= 1")
        if self.classifier_epochs < 1:
            raise ValueError("classifier_epochs must be >= 1")
        if self.profiling_prompts < 1:
            raise ValueError("profiling_prompts must be >= 1")
        if self.worker_memory_gib is not None and self.worker_memory_gib <= 0:
            raise ValueError("worker_memory_gib must be positive when set")
        self.tenants = validate_tenants(
            tuple(
                spec if isinstance(spec, TenantSpec) else TenantSpec(**spec)
                for spec in self.tenants
            )
        )
        if self.admission_rate_factor <= 0:
            raise ValueError("admission_rate_factor must be positive")
        if self.admission_burst_s < 0:
            raise ValueError("admission_burst_s must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.sync_window_s <= 0:
            raise ValueError("sync_window_s must be positive")
        if self.autoscale_epoch_s <= 0:
            raise ValueError("autoscale_epoch_s must be positive")
        if self.steal_backlog_threshold < 1:
            raise ValueError("steal_backlog_threshold must be >= 1")
        if self.cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        if not 0 <= self.cache_replication < self.cache_shards:
            raise ValueError("cache_replication must be in [0, cache_shards - 1]")
        if self.cache_node_vnodes < 1:
            raise ValueError("cache_node_vnodes must be >= 1")
        if self.cache_node_clusters < 1:
            raise ValueError("cache_node_clusters must be >= 1")
        if not 1 <= self.cache_node_nprobe <= self.cache_node_clusters:
            raise ValueError("cache_node_nprobe must be in [1, cache_node_clusters]")
        if self.cache_replication_lag_s < 0:
            raise ValueError("cache_replication_lag_s must be non-negative")
        if self.cache_hot_shard_threshold < 1:
            raise ValueError("cache_hot_shard_threshold must be >= 1")
        if self.cache_affinity_tolerance_s < 0:
            raise ValueError("cache_affinity_tolerance_s must be non-negative")
        if not 0.0 < self.steal_max_fraction <= 1.0:
            raise ValueError("steal_max_fraction must be in (0, 1]")
        if self.shards > 1:
            # Knobs that cannot partition are rejected loudly: silently
            # running them on N independent fleets would mis-simulate the
            # global control loop they model.
            if self.shard_work_stealing and not self.admission_enabled:
                raise ValueError(
                    "shard_work_stealing migrates admission-queue tails, so "
                    "it needs tenant-mode sharding with fair-share admission "
                    "(two or more tenants and fair_share_admission=True)"
                )
            if self.shards > self.num_workers:
                raise ValueError(
                    f"shards={self.shards} exceeds num_workers="
                    f"{self.num_workers}: every shard needs at least one "
                    "worker in its fleet partition"
                )
            if len(self.tenants) >= 2 and self.shards > len(self.tenants):
                raise ValueError(
                    f"shards={self.shards} exceeds the {len(self.tenants)} "
                    "tenants: tenant partitioning places whole tenants on "
                    "shards, so a multi-tenant run cannot use more shards "
                    "than it has tenants"
                )

    @property
    def cache_tier_enabled(self) -> bool:
        """True when the distributed cache tier replaces the flat cache.

        One shard with no replicas is *not* a tier: that configuration must
        stay bit-identical to the plain in-process cache.
        """
        return self.cache_shards > 1 or self.cache_replication > 0

    # ----------------------------------------------------------------- #
    # Serialization (the public config API: CLI --config-json, gateway
    # /config, saved deployments)
    # ----------------------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict of every field.

        Round-trips through :meth:`from_dict` bit-exactly: enums flatten to
        their values, the SLO policy and tenant specs to plain dicts,
        tuples to lists.
        """
        payload: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, Strategy):
                value = value.value
            elif isinstance(value, SloPolicy):
                value = {
                    "multiplier": value.multiplier,
                    "base_latency_s": value.base_latency_s,
                }
            elif spec.name == "tenants":
                value = [
                    {k: (list(v) if isinstance(v, tuple) else v) for k, v in asdict(t).items()}
                    for t in value
                ]
            elif isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArgusConfig":
        """Build a config from :meth:`to_dict` output (or any subset of it).

        Unknown keys are rejected with the nearest field name suggested, so
        a typo in a deployment file fails loudly instead of silently keeping
        the default.
        """
        known = {spec.name for spec in fields(cls)}
        overrides: dict[str, Any] = {}
        for key, value in data.items():
            if key not in known:
                close = difflib.get_close_matches(key, sorted(known), n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise ValueError(f"unknown config key {key!r}{hint}")
            overrides[key] = value
        slo = overrides.get("slo")
        if isinstance(slo, Mapping):
            overrides["slo"] = SloPolicy(**slo)
        # __post_init__ coerces the rest: strategy strings, tenant dicts,
        # gpu_mix lists.
        return cls(**overrides)

    @property
    def batching_enabled(self) -> bool:
        """Whether workers serve dynamic batches rather than batch-size-1."""
        return self.max_batch_size > 1

    @property
    def multi_tenant(self) -> bool:
        """Whether tenant contracts are configured at all."""
        return len(self.tenants) > 0

    @property
    def admission_enabled(self) -> bool:
        """Whether the fair-share admission controller engages.

        Fairness needs at least two competing tenants; a lone tenant (or the
        anonymous workload) is never delayed at admission.
        """
        return self.fair_share_admission and len(self.tenants) >= 2

    @property
    def priority_queues_enabled(self) -> bool:
        """Whether workers use deadline-ordered per-tenant queues.

        Like admission, the discipline needs at least two competing tenants;
        below that it stays on the plain FIFO deque (bit-for-bit identical).
        """
        return self.tenant_priority_queues and len(self.tenants) >= 2

    @property
    def effective_min_workers(self) -> int:
        """Scale-in floor (defaults to the initial fleet size)."""
        return self.min_workers if self.min_workers is not None else self.num_workers

    @property
    def effective_max_workers(self) -> int:
        """Scale-out ceiling (defaults to 4x the initial fleet size)."""
        return self.max_workers if self.max_workers is not None else 4 * self.num_workers

    @property
    def effective_gpu_mix(self) -> tuple[str, ...]:
        """GPU types cycled on scale-out (defaults to the fleet's GPU)."""
        return self.gpu_mix or (self.gpu,)
