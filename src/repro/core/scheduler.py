"""Prompt Scheduler and Worker Selector (blocks C/D/E of Fig. 3, Eq. 3).

For each incoming prompt the scheduler asks the classifier for the prompt's
optimal approximation level, shifts it through the PASM to a level the
cluster can actually absorb, and then picks the concrete worker at that
level with the smallest expected wait (queue length x per-request latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classifier.trainer import TrainedPredictor
from repro.cluster.cluster import GpuCluster
from repro.cluster.worker import Worker
from repro.core.oda import ShiftMap
from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt
from repro.workloads.tenants import TenantRuntime


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one prompt."""

    predicted_rank: int
    assigned_rank: int
    worker_id: int
    strategy: Strategy


class WorkerSelector:
    """Implements Eq. 3: pick the worker minimising queued work.

    The backlog estimate is batch-aware: a worker that batches amortises its
    queue over the Fig. 14 speed-up of its level, so at equal queue depth a
    batching worker is cheaper than a batch-size-1 one.  With batching
    disabled the estimate reduces to ``outstanding * level.latency_s``.
    """

    def select(
        self,
        candidates: list[Worker],
        prefer=None,
        tolerance_s: float = 0.0,
    ) -> Worker:
        """Worker with the smallest expected completion time for a new request.

        ``prefer`` (a ``worker_id -> bool`` predicate) marks workers placed
        near the cache shard the request is likely to hit; the cheapest
        preferred worker wins as long as its backlog is within
        ``tolerance_s`` of the global minimum.  Locality never overrides a
        real load imbalance — past the tolerance the plain Eq. 3 choice
        stands.
        """
        if not candidates:
            raise ValueError("no candidate workers")
        best = min(candidates, key=lambda w: (w.estimated_backlog_s(), w.worker_id))
        if prefer is None:
            return best
        preferred = [w for w in candidates if prefer(w.worker_id)]
        if not preferred:
            return best
        near = min(preferred, key=lambda w: (w.estimated_backlog_s(), w.worker_id))
        if near.estimated_backlog_s() <= best.estimated_backlog_s() + tolerance_s:
            return near
        return best


class PromptScheduler:
    """Routes prompts to workers using the classifier and the PASM."""

    def __init__(
        self,
        cluster: GpuCluster,
        num_levels: int,
        rng: np.random.Generator | None = None,
        selector: WorkerSelector | None = None,
        slo_budget_s: float | None = None,
    ) -> None:
        self.cluster = cluster
        self.num_levels = int(num_levels)
        self.rng = rng or np.random.default_rng(0)
        self.selector = selector or WorkerSelector()
        #: Latency budget used for tail-latency protection (§4.7): when the
        #: chosen worker's expected wait would blow the SLO, the prompt is
        #: escalated to a faster level that still has headroom.  None
        #: disables the protection.
        self.slo_budget_s = slo_budget_s
        self._predictor: TrainedPredictor | None = None
        self._shift_map: ShiftMap = ShiftMap.identity(num_levels)
        self._strategy: Strategy = Strategy.AC
        #: Per-tenant runtime table: budgets for SLO-class-aware protection
        #: and quality floors for routing.  Empty = anonymous workload.
        self._tenants: dict[str, TenantRuntime] = {}
        #: Per-tenant PASMs (the base map clamped at each tenant's floor),
        #: rebuilt by the allocator alongside every base map.
        self._tenant_shift_maps: dict[str, ShiftMap] = {}
        #: Counters for §5.7's switching-overhead analysis.
        self.shifted_requests = 0
        self.routed_requests = 0
        #: Requests served above a tenant's contracted level because no
        #: worker at an allowed level was healthy (capacity emergencies).
        self.floor_breaches = 0
        #: Shard-aware routing: ``(prompt, worker_id) -> bool`` marking
        #: workers near the cache shard likely to hit (installed when the
        #: distributed cache tier is on; None keeps routing byte-identical
        #: to the affinity-free scheduler).
        self._cache_affinity = None
        self._cache_affinity_tolerance_s = 0.0
        #: Routed requests that landed on a shard-preferred worker.
        self.affinity_routed = 0

    # ------------------------------------------------------------------ #
    # Configuration (updated by the Allocator / strategy switcher)
    # ------------------------------------------------------------------ #
    def set_predictor(self, predictor: TrainedPredictor | None) -> None:
        """Install the classifier for the active strategy (None = agnostic)."""
        self._predictor = predictor

    def set_shift_map(self, shift_map: ShiftMap) -> None:
        """Install a freshly computed PASM.

        Clamped per-tenant variants are derived immediately so routing never
        mixes a fresh base map with stale tenant maps.
        """
        if shift_map.num_levels != self.num_levels:
            raise ValueError("PASM level count does not match the scheduler")
        self._shift_map = shift_map
        self._tenant_shift_maps = {
            name: shift_map.clamped(runtime.max_rank)
            for name, runtime in self._tenants.items()
            if runtime.max_rank is not None
        }

    def set_tenants(self, tenants: dict[str, TenantRuntime]) -> None:
        """Install the tenant runtime table (budgets and quality floors)."""
        self._tenants = dict(tenants)
        for runtime in self._tenants.values():
            if runtime.max_rank is not None and runtime.max_rank >= self.num_levels:
                raise ValueError(
                    f"tenant {runtime.name!r}: quality_floor_rank {runtime.max_rank} "
                    f"outside the {self.num_levels}-level zoo"
                )
        # Re-derive tenant maps against the current base map.
        self.set_shift_map(self._shift_map)

    def set_cache_affinity(self, prefers, tolerance_s: float) -> None:
        """Install shard-aware routing against the distributed cache tier.

        ``prefers(prompt, worker_id)`` says whether a worker sits near the
        shard the prompt's retrieval will land on; ``tolerance_s`` bounds
        how much extra backlog locality may cost.  ``None`` (or a zero
        tolerance) uninstalls the preference.
        """
        if prefers is None or tolerance_s <= 0:
            self._cache_affinity = None
            self._cache_affinity_tolerance_s = 0.0
            return
        self._cache_affinity = prefers
        self._cache_affinity_tolerance_s = float(tolerance_s)

    def set_strategy(self, strategy: Strategy) -> None:
        """Record the active approximation strategy."""
        self._strategy = Strategy(strategy)

    @property
    def strategy(self) -> Strategy:
        """The strategy new requests will be tagged with."""
        return self._strategy

    @property
    def shift_map(self) -> ShiftMap:
        """The PASM currently in force."""
        return self._shift_map

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def predict_rank(self, prompt: Prompt) -> int:
        """Classifier prediction of the prompt's optimal level.

        Falls back to the least approximate level when no classifier is
        installed (prompt-agnostic mode).
        """
        if self._predictor is None:
            return 0
        rank = self._predictor.predict_rank(prompt)
        return int(min(max(rank, 0), self.num_levels - 1))

    def _tenant_runtime(self, prompt: Prompt) -> TenantRuntime | None:
        """The routing contract for this prompt's tenant, if one exists."""
        if not self._tenants:
            return None
        return self._tenants.get(prompt.tenant)

    def route(self, prompt: Prompt) -> RoutingDecision | None:
        """Route one prompt; returns None when no healthy worker exists."""
        predicted = self.predict_rank(prompt)
        runtime = self._tenant_runtime(prompt)
        shift_map = self._shift_map
        max_rank: int | None = None
        budget_s = self.slo_budget_s
        if runtime is not None:
            shift_map = self._tenant_shift_maps.get(runtime.name, self._shift_map)
            max_rank = runtime.max_rank
            budget_s = runtime.budget_s
        assigned = shift_map.sample_target(predicted, self.rng)
        if max_rank is not None and assigned > max_rank:
            assigned = max_rank
        prefer = None
        if self._cache_affinity is not None:
            affinity = self._cache_affinity
            prefer = lambda worker_id: affinity(prompt, worker_id)  # noqa: E731
        worker = self._find_worker(assigned, max_rank=max_rank, prefer=prefer)
        if worker is None:
            return None
        worker = self._protect_slo(worker, budget_s=budget_s, max_rank=max_rank)
        if prefer is not None and prefer(worker.worker_id):
            self.affinity_routed += 1
        self.routed_requests += 1
        if worker.level.rank != predicted:
            self.shifted_requests += 1
        if max_rank is not None and worker.level.rank > max_rank:
            self.floor_breaches += 1
        return RoutingDecision(
            predicted_rank=predicted,
            assigned_rank=worker.level.rank,
            worker_id=worker.worker_id,
            strategy=worker.strategy,
        )

    def _eligible_workers(self, max_rank: int | None) -> list[Worker]:
        """Healthy workers at levels a tenant's quality floor allows.

        Falls back to the full healthy set when no allowed-level worker
        exists: serving above the contracted level beats dropping the
        request outright (the breach is counted in ``floor_breaches``).
        """
        healthy = self.cluster.healthy_workers
        if max_rank is None:
            return healthy
        allowed = [w for w in healthy if w.level.rank <= max_rank]
        return allowed or healthy

    def _find_worker(
        self, target_rank: int, max_rank: int | None = None, prefer=None
    ) -> Worker | None:
        """Worker at the target rank, or the nearest rank with healthy workers.

        Nearest is measured in rank distance with preference for slower
        (lower-rank, higher-quality) levels on ties — shifting down never
        hurts quality.  ``max_rank`` restricts candidates to a tenant's
        allowed levels when possible.
        """
        healthy = self._eligible_workers(max_rank)
        if not healthy:
            return None
        tolerance = self._cache_affinity_tolerance_s
        exact = [w for w in healthy if w.level.rank == target_rank]
        if exact:
            return self.selector.select(exact, prefer=prefer, tolerance_s=tolerance)
        by_distance = sorted(
            healthy, key=lambda w: (abs(w.level.rank - target_rank), w.level.rank)
        )
        nearest_rank = by_distance[0].level.rank
        candidates = [w for w in healthy if w.level.rank == nearest_rank]
        return self.selector.select(candidates, prefer=prefer, tolerance_s=tolerance)

    def _protect_slo(
        self,
        worker: Worker,
        budget_s: float | None = None,
        max_rank: int | None = None,
    ) -> Worker:
        """Escalate to a faster worker when the expected wait blows the SLO.

        Mirrors §4.7: "During tail latency conditions, Argus selects smaller
        variants to satisfy SLO constraints."  The escalation prefers the
        slowest (highest-quality) alternative that still fits the budget;
        when nothing fits, it falls back to the globally least-loaded worker.

        ``budget_s`` is the *request's own* latency budget (a tenant's SLO
        class, not the deployment default); None falls back to the global
        budget, and a fully unset budget disables the protection.
        ``max_rank`` keeps the escalation inside a tenant's allowed levels
        whenever such workers exist.
        """
        if budget_s is None:
            budget_s = self.slo_budget_s
        if budget_s is None:
            return worker
        budget = 0.85 * budget_s
        if worker.expected_wait_s() <= budget:
            return worker
        healthy = self._eligible_workers(max_rank)
        if not healthy:
            return worker
        fitting = [w for w in healthy if w.expected_wait_s() <= budget]
        if fitting:
            # Among workers that meet the budget, keep as much quality as
            # possible (lowest rank), breaking ties by shortest wait.
            return min(fitting, key=lambda w: (w.level.rank, w.expected_wait_s(), w.worker_id))
        return min(healthy, key=lambda w: (w.expected_wait_s(), w.worker_id))

    @property
    def shift_fraction(self) -> float:
        """Fraction of routed requests that were shifted off their optimal level."""
        if self.routed_requests == 0:
            return 0.0
        return self.shifted_requests / self.routed_requests
