"""Prompt Scheduler and Worker Selector (blocks C/D/E of Fig. 3, Eq. 3).

For each incoming prompt the scheduler asks the classifier for the prompt's
optimal approximation level, shifts it through the PASM to a level the
cluster can actually absorb, and then picks the concrete worker at that
level with the smallest expected wait (queue length x per-request latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classifier.trainer import TrainedPredictor
from repro.cluster.cluster import GpuCluster
from repro.cluster.worker import Worker
from repro.core.oda import ShiftMap
from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one prompt."""

    predicted_rank: int
    assigned_rank: int
    worker_id: int
    strategy: Strategy


class WorkerSelector:
    """Implements Eq. 3: pick the worker minimising queued work.

    The backlog estimate is batch-aware: a worker that batches amortises its
    queue over the Fig. 14 speed-up of its level, so at equal queue depth a
    batching worker is cheaper than a batch-size-1 one.  With batching
    disabled the estimate reduces to ``outstanding * level.latency_s``.
    """

    def select(self, candidates: list[Worker]) -> Worker:
        """Worker with the smallest expected completion time for a new request."""
        if not candidates:
            raise ValueError("no candidate workers")
        return min(candidates, key=lambda w: (w.estimated_backlog_s(), w.worker_id))


class PromptScheduler:
    """Routes prompts to workers using the classifier and the PASM."""

    def __init__(
        self,
        cluster: GpuCluster,
        num_levels: int,
        rng: np.random.Generator | None = None,
        selector: WorkerSelector | None = None,
        slo_budget_s: float | None = None,
    ) -> None:
        self.cluster = cluster
        self.num_levels = int(num_levels)
        self.rng = rng or np.random.default_rng(0)
        self.selector = selector or WorkerSelector()
        #: Latency budget used for tail-latency protection (§4.7): when the
        #: chosen worker's expected wait would blow the SLO, the prompt is
        #: escalated to a faster level that still has headroom.  None
        #: disables the protection.
        self.slo_budget_s = slo_budget_s
        self._predictor: TrainedPredictor | None = None
        self._shift_map: ShiftMap = ShiftMap.identity(num_levels)
        self._strategy: Strategy = Strategy.AC
        #: Counters for §5.7's switching-overhead analysis.
        self.shifted_requests = 0
        self.routed_requests = 0

    # ------------------------------------------------------------------ #
    # Configuration (updated by the Allocator / strategy switcher)
    # ------------------------------------------------------------------ #
    def set_predictor(self, predictor: TrainedPredictor | None) -> None:
        """Install the classifier for the active strategy (None = agnostic)."""
        self._predictor = predictor

    def set_shift_map(self, shift_map: ShiftMap) -> None:
        """Install a freshly computed PASM."""
        if shift_map.num_levels != self.num_levels:
            raise ValueError("PASM level count does not match the scheduler")
        self._shift_map = shift_map

    def set_strategy(self, strategy: Strategy) -> None:
        """Record the active approximation strategy."""
        self._strategy = Strategy(strategy)

    @property
    def strategy(self) -> Strategy:
        """The strategy new requests will be tagged with."""
        return self._strategy

    @property
    def shift_map(self) -> ShiftMap:
        """The PASM currently in force."""
        return self._shift_map

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def predict_rank(self, prompt: Prompt) -> int:
        """Classifier prediction of the prompt's optimal level.

        Falls back to the least approximate level when no classifier is
        installed (prompt-agnostic mode).
        """
        if self._predictor is None:
            return 0
        rank = self._predictor.predict_rank(prompt)
        return int(min(max(rank, 0), self.num_levels - 1))

    def route(self, prompt: Prompt) -> RoutingDecision | None:
        """Route one prompt; returns None when no healthy worker exists."""
        predicted = self.predict_rank(prompt)
        assigned = self._shift_map.sample_target(predicted, self.rng)
        worker = self._find_worker(assigned)
        if worker is None:
            return None
        worker = self._protect_slo(worker)
        self.routed_requests += 1
        if worker.level.rank != predicted:
            self.shifted_requests += 1
        return RoutingDecision(
            predicted_rank=predicted,
            assigned_rank=worker.level.rank,
            worker_id=worker.worker_id,
            strategy=worker.strategy,
        )

    def _find_worker(self, target_rank: int) -> Worker | None:
        """Worker at the target rank, or the nearest rank with healthy workers.

        Nearest is measured in rank distance with preference for slower
        (lower-rank, higher-quality) levels on ties — shifting down never
        hurts quality.
        """
        healthy = self.cluster.healthy_workers
        if not healthy:
            return None
        exact = [w for w in healthy if w.level.rank == target_rank]
        if exact:
            return self.selector.select(exact)
        by_distance = sorted(
            healthy, key=lambda w: (abs(w.level.rank - target_rank), w.level.rank)
        )
        nearest_rank = by_distance[0].level.rank
        candidates = [w for w in healthy if w.level.rank == nearest_rank]
        return self.selector.select(candidates)

    def _protect_slo(self, worker: Worker) -> Worker:
        """Escalate to a faster worker when the expected wait blows the SLO.

        Mirrors §4.7: "During tail latency conditions, Argus selects smaller
        variants to satisfy SLO constraints."  The escalation prefers the
        slowest (highest-quality) alternative that still fits the budget;
        when nothing fits, it falls back to the globally least-loaded worker.
        """
        if self.slo_budget_s is None:
            return worker
        budget = 0.85 * self.slo_budget_s
        if worker.expected_wait_s() <= budget:
            return worker
        healthy = self.cluster.healthy_workers
        fitting = [w for w in healthy if w.expected_wait_s() <= budget]
        if fitting:
            # Among workers that meet the budget, keep as much quality as
            # possible (lowest rank), breaking ties by shortest wait.
            return min(fitting, key=lambda w: (w.level.rank, w.expected_wait_s(), w.worker_id))
        return min(healthy, key=lambda w: (w.expected_wait_s(), w.worker_id))

    @property
    def shift_fraction(self) -> float:
        """Fraction of routed requests that were shifted off their optimal level."""
        if self.routed_requests == 0:
            return 0.0
        return self.shifted_requests / self.routed_requests
