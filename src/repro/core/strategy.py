"""Approximation-strategy switching (§4.6).

Argus runs approximate caching by default.  The switcher watches the
retrieval latencies observed by AC requests; when too many consecutive
observations are slow (or the cache is unreachable), it flips the system to
the smaller-models strategy.  While on SM it periodically probes the network
in the background and switches back once retrievals are healthy again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.models.zoo import Strategy


@dataclass(frozen=True)
class SwitchEvent:
    """Record of one strategy switch."""

    time_s: float
    from_strategy: Strategy
    to_strategy: Strategy
    reason: str


@dataclass
class StrategySwitcher:
    """Decides which approximation strategy should be active."""

    #: Retrieval latency above which an observation counts as degraded.
    retrieval_latency_threshold_s: float = 0.6
    #: Number of consecutive degraded observations that trigger AC -> SM.
    violations_to_switch: int = 20
    #: Number of consecutive healthy probes required to switch back to AC.
    probes_to_recover: int = 3
    allow_switching: bool = True

    active: Strategy = Strategy.AC
    events: list[SwitchEvent] = field(default_factory=list)
    _consecutive_violations: int = 0
    _consecutive_healthy_probes: int = 0
    _recent_latencies: deque = field(default_factory=lambda: deque(maxlen=50))

    # ------------------------------------------------------------------ #
    # Observations from the serving path
    # ------------------------------------------------------------------ #
    def observe_retrieval(self, latency_s: float | None, now_s: float) -> Strategy:
        """Record a cache-retrieval outcome from a served AC request.

        Args:
            latency_s: the observed retrieval latency, or None when the
                cache services were unreachable.
            now_s: current simulated time.

        Returns:
            The strategy that should be active after this observation.
        """
        if self.active is not Strategy.AC:
            return self.active
        degraded = latency_s is None or latency_s > self.retrieval_latency_threshold_s
        if latency_s is not None:
            self._recent_latencies.append(latency_s)
        if degraded:
            self._consecutive_violations += 1
        else:
            self._consecutive_violations = 0
        if (
            self.allow_switching
            and self._consecutive_violations >= self.violations_to_switch
        ):
            self._switch(Strategy.SM, now_s, reason="cache retrieval degraded")
        return self.active

    def observe_probe(self, latency_s: float | None, now_s: float) -> Strategy:
        """Record a background probe result while running on SM."""
        if self.active is not Strategy.SM:
            return self.active
        healthy = latency_s is not None and latency_s <= self.retrieval_latency_threshold_s
        if healthy:
            self._consecutive_healthy_probes += 1
        else:
            self._consecutive_healthy_probes = 0
        if self.allow_switching and self._consecutive_healthy_probes >= self.probes_to_recover:
            self._switch(Strategy.AC, now_s, reason="cache retrieval recovered")
        return self.active

    def force_strategy(self, strategy: Strategy, now_s: float, reason: str = "forced") -> None:
        """Force a strategy (used by ablations and tests)."""
        if Strategy(strategy) is not self.active:
            self._switch(Strategy(strategy), now_s, reason=reason)

    def _switch(self, to_strategy: Strategy, now_s: float, reason: str) -> None:
        self.events.append(
            SwitchEvent(
                time_s=now_s, from_strategy=self.active, to_strategy=to_strategy, reason=reason
            )
        )
        self.active = to_strategy
        self._consecutive_violations = 0
        self._consecutive_healthy_probes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_switches(self) -> int:
        """How many times the strategy has changed."""
        return len(self.events)

    def recent_mean_retrieval_latency(self) -> float | None:
        """Mean of recently observed retrieval latencies, None when unseen."""
        if not self._recent_latencies:
            return None
        return float(sum(self._recent_latencies) / len(self._recent_latencies))
