"""ArgusSystem: the end-to-end quality-aware serving system.

Wires together every component of Fig. 3: the per-strategy classifiers, the
Allocator (Solver + Workload Distribution Predictor + ODA), the Prompt
Scheduler with its PASM, the strategy switcher, drift-triggered classifier
retraining, and the simulated GPU cluster with approximate caching.

``ArgusSystem(prompt_aware=False)`` is the PAC ablation from §5.1: it keeps
the AC/SM switching and the load-aware solver but routes prompts agnostic of
their individual approximation tolerance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

import numpy as np

from repro.classifier.drift import DriftDetector
from repro.classifier.trainer import ClassifierTrainer, TrainedPredictor
from repro.cluster.requests import CompletedRequest
from repro.core.allocator import Allocator
from repro.core.autoscaler import Autoscaler
from repro.core.base import BaseServingSystem, Route
from repro.core.config import ArgusConfig
from repro.core.scheduler import PromptScheduler
from repro.core.strategy import StrategySwitcher
from repro.metrics.collector import ServedSample
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.quality.profiles import QualityProfiler


class ArgusSystem(BaseServingSystem):
    """Quality-aware high-throughput T2I serving (the paper's system)."""

    name = "Argus"

    #: Switch-event reason used when load (not network health) forces AC->SM.
    LOAD_SWITCH_REASON = "load exceeds AC capacity"

    def __init__(
        self,
        config: ArgusConfig | None = None,
        prompt_aware: bool = True,
        allow_strategy_switching: bool = True,
        training_dataset: PromptDataset | None = None,
        **kwargs,
    ) -> None:
        super().__init__(config=config, **kwargs)
        self.prompt_aware = bool(prompt_aware)
        if not self.prompt_aware:
            self.name = "PAC"

        # ------------------------------------------------------------ #
        # Offline phase: classifier training and per-level profiling
        # ------------------------------------------------------------ #
        dataset = training_dataset or PromptDataset.synthetic(
            count=self.config.classifier_training_prompts,
            seed=self.config.seed + 101,
        )
        self._training_prompts = dataset.prompts
        trainer = ClassifierTrainer(self.pickscore)
        self.trainer = trainer
        self.classifiers: dict[Strategy, TrainedPredictor] = {}
        if self.prompt_aware:
            self.classifiers = trainer.train_both_strategies(
                self._training_prompts,
                epochs=self.config.classifier_epochs,
                seed=self.config.seed,
            )
        profiler = QualityProfiler(self.zoo, self.pickscore)
        profiling_prompts = self._training_prompts[: self.config.profiling_prompts]
        quality_vectors = {
            strategy: profiler.quality_vector(strategy, profiling_prompts)
            for strategy in (Strategy.AC, Strategy.SM)
        }

        # ------------------------------------------------------------ #
        # Online components
        # ------------------------------------------------------------ #
        self.scheduler = PromptScheduler(
            cluster=self.cluster,
            num_levels=self.zoo.num_levels(self.config.default_strategy),
            rng=np.random.default_rng(self.config.seed + 7),
            slo_budget_s=self.config.slo.budget_s,
        )
        if self.tenant_runtimes:
            # SLO-class budgets and quality floors for per-tenant routing.
            self.scheduler.set_tenants(self.tenant_runtimes)
        if (
            self.cache is not None
            and self.config.cache_tier_enabled
            and self.config.cache_affinity_tolerance_s > 0
        ):
            # Shard-aware routing: prefer workers near the cache shard the
            # prompt's retrieval will land on, within a backlog tolerance.
            self.scheduler.set_cache_affinity(
                self.cache.worker_prefers,
                tolerance_s=self.config.cache_affinity_tolerance_s,
            )
        self.allocator = Allocator(
            config=self.config,
            zoo=self.zoo,
            cluster=self.cluster,
            scheduler=self.scheduler,
            quality_vectors=quality_vectors,
            prompt_aware=self.prompt_aware,
        )
        self.switcher = StrategySwitcher(
            retrieval_latency_threshold_s=self.config.retrieval_latency_threshold_s,
            violations_to_switch=self.config.retrieval_violations_to_switch,
            allow_switching=allow_strategy_switching,
            active=self.config.default_strategy,
        )
        self.drift_detector = DriftDetector()
        #: Per-tenant drift state (tenanted runs only): each tenant's prompt
        #: mix drifts independently, so one tenant's shift must neither hide
        #: in another's median history nor fire on its behalf.  Untenanted
        #: runs keep the single shared detector above (bit-pinned).
        self._drift_detectors: dict[str, DriftDetector] = {}
        #: Closed-loop horizontal scaler (§6); None keeps the fixed pool.
        self.autoscaler: Autoscaler | None = None
        if self.config.autoscale_enabled:
            self.autoscaler = Autoscaler(
                config=self.config,
                zoo=self.zoo,
                cluster=self.cluster,
                allocator=self.allocator,
                active_strategy=lambda: self.active_strategy,
            )
        self.retraining_events = 0
        #: True while the system runs SM purely because load outgrew AC's
        #: throughput ceiling (suppresses the probe-based switch-back).
        self._load_switched = False
        #: Debounce: one high-demand observation arms the switch, the second
        #: consecutive one fires it (filters cold-start estimate noise).
        self._load_switch_armed = False
        self._recent_prompts: deque[Prompt] = deque(maxlen=self.config.classifier_training_prompts)

        self._apply_strategy(self.config.default_strategy)
        if self.cache is not None and self.config.cache_warm_prompts > 0:
            warm = self._training_prompts[: self.config.cache_warm_prompts]
            if self.config.tenants:
                # Retrieval only searches the requesting tenant's namespace,
                # so warming must happen per tenant (tagged copies of the
                # warm history, capped at each tenant's quota so the warm-up
                # cannot churn its own working set out).
                for spec in self.config.tenants:
                    if not spec.name:
                        self.cache.warm(warm)
                        continue
                    count = (
                        len(warm)
                        if spec.cache_quota is None
                        else min(len(warm), spec.cache_quota)
                    )
                    self.cache.warm(
                        [replace(prompt, tenant=spec.name) for prompt in warm[:count]]
                    )
            else:
                self.cache.warm(warm)

        # Seed the affinity predictor with the training prompts so the first
        # PASM is informative rather than uniform.
        if self.prompt_aware:
            for strategy, predictor in self.classifiers.items():
                ranks = predictor.predict_ranks(
                    self._training_prompts[: self.config.affinity_lookback]
                )
                for rank in ranks:
                    self.allocator.observe_affinity(strategy, rank)

    # ------------------------------------------------------------------ #
    # Strategy handling
    # ------------------------------------------------------------------ #
    @property
    def active_strategy(self) -> Strategy:
        """The approximation strategy currently in force."""
        return self.switcher.active

    def _apply_strategy(self, strategy: Strategy) -> None:
        strategy = Strategy(strategy)
        self.scheduler.set_strategy(strategy)
        predictor = self.classifiers.get(strategy) if self.prompt_aware else None
        self.scheduler.set_predictor(predictor)

    def _on_strategy_change(self, strategy: Strategy) -> None:
        self._apply_strategy(strategy)
        self._load_switch_armed = False
        self.allocator.switching_in_progress = True
        self.allocator.recalibrate(self.engine.now, strategy)

    # ------------------------------------------------------------------ #
    # BaseServingSystem hooks
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Install the periodic allocation / probing loop (clock-agnostic)."""
        self.allocator.recalibrate(self.runtime.now(), self.active_strategy)
        if self.autoscaler is not None:
            self.autoscaler.install(self.runtime)

        def tick() -> None:
            now = self.runtime.now()
            was_switching = self.allocator.switching_in_progress
            if (
                self.active_strategy is Strategy.SM
                and self.cache is not None
                and not self._load_switched
            ):
                probe = self.cache.probe_network(now)
                previous = self.switcher.active
                self.switcher.observe_probe(probe, now)
                if self.switcher.active is not previous:
                    self._on_strategy_change(self.switcher.active)
                    return
            record = self.allocator.recalibrate(now, self.active_strategy)
            if self._consider_load_switch(record):
                return
            if was_switching:
                self.allocator.switching_in_progress = False

        # The first re-calibration runs a few seconds in (once some arrivals
        # have been observed) so a cold start under load does not wait a full
        # interval before approximating; after that, ticks follow the
        # configured interval.
        def first_tick() -> None:
            tick()
            self.runtime.schedule_every(
                self.config.reallocation_interval_s, tick, name="argus-allocator"
            )

        self.runtime.schedule_in(
            min(10.0, self.config.reallocation_interval_s), first_tick, name="argus-allocator-warmup"
        )

    def observe_arrival(self, now: float, prompt: Prompt) -> None:
        """Feed the load estimator and watch for backlog build-up."""
        self.allocator.observe_arrival(now)
        self._maybe_recalibrate_on_backlog(now)

    def _maybe_recalibrate_on_backlog(self, now: float) -> None:
        """Out-of-band recalibration when queues outgrow the last plan.

        The periodic tick reacts within a minute; a sharp spike can queue
        hundreds of requests in that window.  When the backlog exceeds the
        configured per-worker threshold, re-solve immediately (rate-limited
        so a sustained overload does not thrash the solver).
        """
        threshold = self.config.backlog_recalibration_per_worker
        if threshold <= 0:
            return
        # Cheapest check first: this runs on every arrival.
        last = self.allocator.last_record
        if last is not None and now - last.time_s < self.config.backlog_recalibration_min_gap_s:
            return
        if not self.cluster.healthy_workers:
            return
        if self.cluster.total_queued_requests() <= self.cluster.backlog_slack(threshold):
            return
        record = self.allocator.recalibrate(now, self.active_strategy)
        self._consider_load_switch(record)

    def _cluster_ceiling_qpm(self, strategy: Strategy) -> float:
        """Max sustainable QPM with every healthy worker at the fastest level.

        Heterogeneity-aware: each worker contributes its own GPU's speed (on
        a homogeneous reference fleet this is exactly ``peak x num_workers``).
        """
        return self.cluster.fleet_ceiling_qpm(strategy)

    def _consider_load_switch(self, record) -> bool:
        """Load-driven strategy switching (the §4.6 switch, capacity edition).

        AC's throughput ceiling (everything runs on the SD-XL base) is below
        SM's (Tiny-SD workers).  When the solver reports the target load is
        infeasible under AC, switch to SM — the model loads happen in the
        background, so the switch is hitless — and switch back once the load
        estimate again fits comfortably under the AC ceiling.
        """
        if not self.switcher.allow_switching:
            return False
        now = self.engine.now
        ac_ceiling = self._cluster_ceiling_qpm(Strategy.AC)
        if self.active_strategy is Strategy.AC:
            # Hysteresis high side: the raw demand (no safety padding) must
            # press against AC's ceiling before giving up AC quality.
            if record.demand_qpm <= 0.95 * ac_ceiling:
                self._load_switch_armed = False
                return False
            if self._cluster_ceiling_qpm(Strategy.SM) <= ac_ceiling * 1.01:
                return False
            if not self._load_switch_armed:
                self._load_switch_armed = True
                return False
            self._load_switch_armed = False
            self._load_switched = True
            self.switcher.force_strategy(Strategy.SM, now, reason=self.LOAD_SWITCH_REASON)
            self._on_strategy_change(Strategy.SM)
            return True
        # Hysteresis low side: return to AC once demand clearly fits again.
        if self._load_switched and record.demand_qpm <= 0.85 * ac_ceiling:
            self._load_switched = False
            if self.cache is not None:
                probe = self.cache.probe_network(now)
                if probe is None or probe > self.config.retrieval_latency_threshold_s:
                    # The cache network degraded while we were on SM for load
                    # reasons: stay on SM and let the regular probe-recovery
                    # gate (now re-enabled) decide when AC is safe again.
                    return False
            self.switcher.force_strategy(Strategy.AC, now, reason="load fits AC again")
            self._on_strategy_change(Strategy.AC)
            return True
        return False

    def route(self, prompt: Prompt) -> Route | None:
        """Classifier + PASM + worker-selector routing."""
        decision = self.scheduler.route(prompt)
        if decision is None:
            return None
        weight = 1.0
        if self.tenant_runtimes:
            runtime = self.tenant_runtimes.get(prompt.tenant)
            if runtime is not None:
                weight = runtime.weight
        self.allocator.observe_affinity(
            self.active_strategy, decision.predicted_rank, weight=weight
        )
        return Route(
            worker_id=decision.worker_id,
            predicted_rank=decision.predicted_rank,
            assigned_rank=decision.assigned_rank,
            strategy=decision.strategy,
        )

    def on_sample(self, sample: ServedSample, completed: CompletedRequest) -> None:
        """React to a completion: drift detection and retrieval monitoring."""
        self._recent_prompts.append(completed.request.prompt)

        if self.prompt_aware:
            detector = self._drift_detector_for(completed.request.prompt.tenant)
            drift = detector.observe(sample.pickscore)
            if drift is not None:
                self._retrain_classifiers(detector)

        attempted_retrieval = (
            completed.request.strategy is Strategy.AC
            and (completed.retrieval_failed or completed.retrieval_latency_s > 0.0)
        )
        if attempted_retrieval:
            previous = self.switcher.active
            observed = None if completed.retrieval_failed else completed.retrieval_latency_s
            self.switcher.observe_retrieval(observed, self.engine.now)
            if self.switcher.active is not previous:
                self._on_strategy_change(self.switcher.active)

    def _drift_detector_for(self, tenant: str) -> DriftDetector:
        """The drift detector observing ``tenant``'s completions.

        Untenanted runs share the single :attr:`drift_detector` (the
        bit-pinned original path); tenanted runs key detector state by
        tenant so each tenant's PickScore history is compared only against
        its own past.
        """
        if not self.config.tenants:
            return self.drift_detector
        detector = self._drift_detectors.get(tenant)
        if detector is None:
            detector = self._drift_detectors[tenant] = DriftDetector()
        return detector

    # ------------------------------------------------------------------ #
    # Classifier retraining (off the critical path)
    # ------------------------------------------------------------------ #
    def _retrain_classifiers(self, detector: DriftDetector | None = None) -> None:
        prompts = list(self._recent_prompts)
        if len(prompts) < 50 or not self.prompt_aware:
            return
        self.retraining_events += 1
        for strategy in (Strategy.AC, Strategy.SM):
            self.classifiers[strategy] = self.trainer.train(
                prompts,
                strategy,
                epochs=max(4, self.config.classifier_epochs // 2),
                seed=self.config.seed + self.retraining_events,
            )
        self._apply_strategy(self.active_strategy)
        # Retraining is global (the classifiers are shared) but only the
        # detector that fired resets: the other tenants' windows keep
        # accumulating evidence against their own history.
        (detector or self.drift_detector).reset()

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the benchmarks
    # ------------------------------------------------------------------ #
    def shift_fraction(self) -> float:
        """Fraction of requests shifted off their predicted optimal level."""
        return self.scheduler.shift_fraction

    def num_strategy_switches(self) -> int:
        """How many AC<->SM switches occurred during the run."""
        return self.switcher.num_switches

    def drift_events(self) -> dict[str, int]:
        """Drift events observed, keyed by tenant ("" = shared detector)."""
        if not self.config.tenants:
            return {"": self.drift_detector.num_drift_events}
        return {
            name: detector.num_drift_events
            for name, detector in sorted(self._drift_detectors.items())
        }
