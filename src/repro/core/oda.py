"""Optimised Distribution Aligner (ODA) and the PASM (§4.3, Algorithm 1).

ODA takes the affinity distribution ``f(l)`` (how many prompts would ideally
run at each approximation level) and the feasible load distribution ``g(l)``
(how much load each level can actually absorb, from the Solver) and computes
the Probabilistic Approximation Shift Map: for each affinity level, the
probabilities with which its prompts should be redirected to the available
levels so that the realised load matches ``g`` while the expected quality
degradation (Eq. 2) is minimised.

Key property (the paper's optimality argument): shifting a prompt to a
*slower* (less approximate) level never degrades quality, while shifting to
a *faster* level degrades quality super-linearly in the rank gap — so
deficits at fast levels are filled from the *nearest* slower levels first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quality.degradation import DegradationProfile

_EPSILON = 1e-12


@dataclass(frozen=True)
class ShiftMap:
    """The Probabilistic Approximation Shift Map (PASM).

    ``matrix[a, t]`` is the probability that a prompt whose affinity
    (classifier-predicted optimal level) is rank ``a`` gets served at rank
    ``t``.  Rows sum to one.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("PASM must be a square matrix")
        if np.any(matrix < -1e-9):
            raise ValueError("PASM probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError("every PASM row must sum to 1")

    @property
    def num_levels(self) -> int:
        """Number of approximation levels covered."""
        return self.matrix.shape[0]

    @classmethod
    def identity(cls, num_levels: int) -> "ShiftMap":
        """PASM that never shifts any prompt."""
        return cls(matrix=np.eye(num_levels))

    @classmethod
    def load_proportional(cls, load_distribution: np.ndarray) -> "ShiftMap":
        """Prompt-agnostic PASM: every prompt is routed by load share alone.

        This is the "random redistribution" baseline of Fig. 10 and the PAC
        ablation's routing rule.
        """
        load_distribution = np.asarray(load_distribution, dtype=np.float64)
        if load_distribution.sum() <= 0:
            raise ValueError("load distribution must have positive mass")
        normalized = load_distribution / load_distribution.sum()
        matrix = np.tile(normalized, (len(normalized), 1))
        return cls(matrix=matrix)

    def clamped(self, max_rank: int) -> "ShiftMap":
        """PASM with every target above ``max_rank`` folded onto ``max_rank``.

        This is the per-tenant quality-floor transform: a tenant contracted
        to level ``max_rank`` keeps the base map's probabilities for allowed
        targets, and any probability mass the base map would push to more
        approximate levels lands on its contracted level instead.  Rows
        still sum to one.
        """
        if max_rank < 0:
            raise ValueError("max_rank must be >= 0")
        if max_rank >= self.num_levels - 1:
            return self
        matrix = self.matrix.copy()
        matrix[:, max_rank] += matrix[:, max_rank + 1 :].sum(axis=1)
        matrix[:, max_rank + 1 :] = 0.0
        return ShiftMap(matrix=matrix)

    def probability(self, affinity_rank: int, target_rank: int) -> float:
        """P(target | affinity)."""
        return float(self.matrix[affinity_rank, target_rank])

    def sample_target(self, affinity_rank: int, rng: np.random.Generator) -> int:
        """Draw a target level for one prompt with the given affinity.

        Inverse-CDF sampling with the per-row CDF cached on the map: this
        runs once per routed request, and ``Generator.choice`` re-derives
        the CDF (and re-validates ``p``) on every call.  The draw consumes
        one uniform exactly like ``choice`` does, so the sampled stream is
        unchanged.
        """
        cdfs = self.__dict__.get("_row_cdfs")
        if cdfs is None:
            cdfs = {}
            self.__dict__["_row_cdfs"] = cdfs
        cdf = cdfs.get(affinity_rank)
        if cdf is None:
            row = self.matrix[affinity_rank]
            p = row / row.sum()
            cdf = p.cumsum()
            cdf /= cdf[-1]
            cdfs[affinity_rank] = cdf
        return int(cdf.searchsorted(rng.random(), side="right"))

    def resulting_distribution(self, affinity_distribution: np.ndarray) -> np.ndarray:
        """The level distribution realised when ``affinity_distribution`` is
        pushed through the PASM."""
        affinity_distribution = np.asarray(affinity_distribution, dtype=np.float64)
        return affinity_distribution @ self.matrix

    def expected_degradation(
        self, affinity_distribution: np.ndarray, degradation: DegradationProfile
    ) -> float:
        """Expected per-prompt quality loss D_N (the Eq. 2 objective)."""
        affinity_distribution = np.asarray(affinity_distribution, dtype=np.float64)
        total = 0.0
        for affinity in range(self.num_levels):
            for target in range(self.num_levels):
                if target <= affinity:
                    continue
                total += (
                    self.matrix[affinity, target]
                    * affinity_distribution[affinity]
                    * degradation.loss(target, affinity)
                )
        return float(total)


class OptimizedDistributionAligner:
    """Computes the PASM from the affinity and load distributions."""

    def align(self, affinity: np.ndarray, load: np.ndarray) -> ShiftMap:
        """Run Algorithm 1 and return the PASM.

        Args:
            affinity: f(l), fraction of prompts whose optimal level is l.
            load: g(l), fraction of the load the Solver assigned to level l.

        Both arrays are normalised defensively; they must be the same length.
        """
        f = self._normalize(affinity)
        g = self._normalize(load)
        if f.shape != g.shape:
            raise ValueError("affinity and load distributions must have equal length")
        num_levels = len(f)

        # flow[a, t]: mass of prompts with original affinity a currently
        # parked at level t.  Moving mass between levels moves it from every
        # affinity proportionally, which reproduces the probability
        # composition at the end of Algorithm 1.
        flow = np.diag(f).astype(np.float64)
        current = f.copy()

        def move(src: int, dst: int, amount: float) -> None:
            if amount <= _EPSILON or current[src] <= _EPSILON:
                return
            amount = min(amount, current[src])
            fraction = amount / current[src]
            moved = flow[:, src] * fraction
            flow[:, src] -= moved
            flow[:, dst] += moved
            current[src] -= amount
            current[dst] += amount

        # Iterate from the most approximate (fastest) level towards the
        # least approximate; rank r-1 is the immediately slower level.
        for rank in range(num_levels - 1, 0, -1):
            if current[rank] > g[rank] + _EPSILON:
                # Surplus affinity: push the excess one step towards the
                # slower neighbour.  No quality degradation.
                move(rank, rank - 1, current[rank] - g[rank])
            elif current[rank] < g[rank] - _EPSILON:
                # Deficit: pull prompts up from the nearest slower levels.
                deficit = g[rank] - current[rank]
                step = 1
                while deficit > _EPSILON and rank - step >= 0:
                    source = rank - step
                    shift = min(current[source], deficit)
                    move(source, rank, shift)
                    deficit -= shift
                    step += 1

        matrix = np.zeros((num_levels, num_levels), dtype=np.float64)
        for affinity_rank in range(num_levels):
            if f[affinity_rank] > _EPSILON:
                matrix[affinity_rank] = flow[affinity_rank] / f[affinity_rank]
            else:
                matrix[affinity_rank, affinity_rank] = 1.0
        # Clean up numerical dust and renormalise each row.
        matrix[matrix < 0] = 0.0
        matrix /= matrix.sum(axis=1, keepdims=True)
        return ShiftMap(matrix=matrix)

    @staticmethod
    def _normalize(distribution: np.ndarray) -> np.ndarray:
        distribution = np.asarray(distribution, dtype=np.float64).copy()
        if distribution.ndim != 1 or len(distribution) == 0:
            raise ValueError("distribution must be a non-empty 1-D array")
        if np.any(distribution < -1e-12):
            raise ValueError("distribution values must be non-negative")
        total = distribution.sum()
        if total <= 0:
            raise ValueError("distribution must have positive mass")
        return distribution / total
