"""The Allocator's Solver (Eq. 1).

Given the expected load ``R_t`` (QPM), the profiled average quality ``q_l``
and peak per-worker throughput ``peak_l`` of every approximation level, and
the cluster size, the Solver decides how many workers run each level and how
much load each level serves, maximising overall quality subject to meeting
the load.

Two equivalent solvers are provided:

* :meth:`AllocationSolver.solve_ilp` — the literal Eq. 1 formulation with
  binary placement variables, solved by :mod:`repro.ilp` (the Gurobi role).
* :meth:`AllocationSolver.solve` — an exact enumeration/greedy solver
  specialised to the structure of the problem (workers are identical, so
  only per-level counts matter).  This is the default at runtime because it
  is faster and scales to large clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

import numpy as np

from repro.ilp import BranchAndBoundSolver, IlpProblem


@dataclass(frozen=True)
class AllocationPlan:
    """Output of the Solver: worker counts and load split across levels."""

    #: Number of workers assigned to each approximation level (index = rank).
    workers_per_level: tuple[int, ...]
    #: Load (QPM) routed to each level.
    qpm_per_level: tuple[float, ...]
    #: Whether the plan can serve the full target load.
    feasible: bool
    #: Target load the plan was computed for (QPM).
    target_qpm: float
    #: Quality-weighted objective value (sum of q_l * share_l).
    expected_quality: float

    @property
    def num_levels(self) -> int:
        """Number of approximation levels in the plan."""
        return len(self.workers_per_level)

    @property
    def total_workers(self) -> int:
        """Total workers placed by the plan."""
        return int(sum(self.workers_per_level))

    @property
    def total_capacity_qpm(self) -> float:
        """Total load actually allocated across levels."""
        return float(sum(self.qpm_per_level))

    def load_distribution(self) -> np.ndarray:
        """Normalised load share per level (the g(l) distribution for ODA)."""
        total = sum(self.qpm_per_level)
        if total <= 0:
            dist = np.zeros(self.num_levels)
            dist[0] = 1.0
            return dist
        return np.asarray(self.qpm_per_level) / total

    def worker_assignment(self, worker_ids: list[int]) -> dict[int, int]:
        """Map concrete worker ids to level ranks, slowest levels first."""
        assignment: dict[int, int] = {}
        index = 0
        for rank, count in enumerate(self.workers_per_level):
            for _ in range(int(count)):
                if index >= len(worker_ids):
                    return assignment
                assignment[worker_ids[index]] = rank
                index += 1
        # Any leftover workers (plan smaller than cluster) go to the slowest level.
        while index < len(worker_ids):
            assignment[worker_ids[index]] = 0
            index += 1
        return assignment


class AllocationSolver:
    """Solves the per-minute load-allocation problem."""

    def __init__(self, enumerate_limit: int = 5_000) -> None:
        #: Maximum number of worker-count compositions to enumerate before
        #: falling back to the greedy solver.  The default covers the paper's
        #: 8-worker cluster exactly (1287 compositions) and keeps the solve
        #: comfortably under the 100 ms budget for larger clusters, where the
        #: greedy upgrade heuristic takes over.
        self.enumerate_limit = int(enumerate_limit)

    # ------------------------------------------------------------------ #
    # Default solver: exact enumeration with greedy fallback
    # ------------------------------------------------------------------ #
    def solve(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
        speed_factors: list[float] | None = None,
    ) -> AllocationPlan:
        """Compute the quality-maximal allocation meeting ``target_qpm``.

        ``speed_factors`` makes the capacity model heterogeneity-aware: one
        relative GPU speed per worker (``peak_qpm`` is calibrated for speed
        1.0).  Level ``l``'s capacity then becomes ``peak_l x sum of the
        speeds assigned to it`` instead of ``count_l x peak_l``.  Workers
        are assigned to levels fastest-GPU-first in rank order, matching
        :meth:`AllocationPlan.worker_assignment` fed speed-sorted ids.  On a
        homogeneous fleet (all speeds 1.0, or None) this is exactly the
        uniform solve.
        """
        quality = np.asarray(quality, dtype=np.float64)
        peak_qpm = np.asarray(peak_qpm, dtype=np.float64)
        self._validate(target_qpm, quality, peak_qpm, num_workers)
        if speed_factors is not None:
            if len(speed_factors) != num_workers:
                raise ValueError("speed_factors must list one speed per worker")
            if any(s <= 0 for s in speed_factors):
                raise ValueError("speed factors must be positive")
            if any(s != 1.0 for s in speed_factors):
                return self._solve_heterogeneous(
                    target_qpm, quality, peak_qpm, list(speed_factors)
                )
        num_levels = len(quality)

        if self._num_compositions(num_workers, num_levels) <= self.enumerate_limit:
            counts = self._best_counts_enumerated(target_qpm, quality, peak_qpm, num_workers)
        else:
            counts = self._best_counts_greedy(target_qpm, quality, peak_qpm, num_workers)
        qpm_per_level, feasible = self._fill_load(target_qpm, quality, peak_qpm, counts)
        expected_quality = self._expected_quality(quality, qpm_per_level)
        return AllocationPlan(
            workers_per_level=tuple(int(c) for c in counts),
            qpm_per_level=tuple(float(q) for q in qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=expected_quality,
        )

    # ------------------------------------------------------------------ #
    # Heterogeneous fleets (per-worker capacity, Eq. 1 generalised)
    # ------------------------------------------------------------------ #
    def _solve_heterogeneous(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        speed_factors: list[float],
    ) -> AllocationPlan:
        speeds = sorted(speed_factors, reverse=True)
        num_workers = len(speeds)
        num_levels = len(quality)
        # prefix[i] = total speed of the i fastest workers, so the chunk of
        # workers assigned to a level contributes prefix[end] - prefix[start].
        prefix = [0.0]
        for speed in speeds:
            prefix.append(prefix[-1] + speed)

        def level_capacities(counts: list[int]) -> list[float]:
            capacities = []
            start = 0
            for level in range(num_levels):
                end = start + counts[level]
                capacities.append(peak_qpm[level] * (prefix[end] - prefix[start]))
                start = end
            return capacities

        if self._num_compositions(num_workers, num_levels) <= self.enumerate_limit:
            counts = self._enumerate_best_counts(
                target_qpm, quality, num_workers, level_capacities
            )
        else:
            # Large fleets: run the greedy upgrade heuristic in mean-speed
            # units, then price the resulting counts with the true per-worker
            # speeds.
            mean_speed = sum(speeds) / num_workers
            counts = self._best_counts_greedy(
                target_qpm, quality, peak_qpm * mean_speed, num_workers
            )
        qpm_per_level, feasible = self._fill_capacity(
            target_qpm, quality, level_capacities(counts)
        )
        return AllocationPlan(
            workers_per_level=tuple(int(c) for c in counts),
            qpm_per_level=tuple(float(q) for q in qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=self._expected_quality(quality, qpm_per_level),
        )

    # ------------------------------------------------------------------ #
    # ILP formulation (Eq. 1 verbatim)
    # ------------------------------------------------------------------ #
    def solve_ilp(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> AllocationPlan:
        """Solve Eq. 1 with binary placement variables via branch-and-bound.

        The formulation follows the paper: ``x[l, w] ∈ {0, 1}`` places level
        ``l`` on worker ``w``; ``lam[w] >= 0`` is the QPM routed to worker
        ``w``; each worker runs at most one level; a worker's load may not
        exceed the peak throughput of its level; total load equals the
        target (or the total capacity when the target is infeasible).
        """
        quality = np.asarray(quality, dtype=np.float64)
        peak_qpm = np.asarray(peak_qpm, dtype=np.float64)
        self._validate(target_qpm, quality, peak_qpm, num_workers)
        num_levels = len(quality)
        max_capacity = float(peak_qpm.max() * num_workers)
        demand = min(float(target_qpm), max_capacity)
        feasible = target_qpm <= max_capacity + 1e-9

        problem = IlpProblem(name="argus-allocation", maximize=True)
        for level in range(num_levels):
            for worker in range(num_workers):
                problem.add_binary(f"x_{level}_{worker}")
        for worker in range(num_workers):
            problem.add_variable(f"lam_{worker}", lower=0.0, upper=float(peak_qpm.max()))

        # Objective: sum_l q_l * g(l) where g(l) = sum_w assigned lam_w.  The
        # product x * lam is linearised by bounding lam_w by the peak of its
        # assigned level and crediting quality through per-level load
        # variables y_{l,w} <= min(lam_w, peak_l * x_{l,w}).
        objective: dict[str, float] = {}
        for level in range(num_levels):
            for worker in range(num_workers):
                name = f"y_{level}_{worker}"
                problem.add_variable(name, lower=0.0, upper=float(peak_qpm[level]))
                objective[name] = float(quality[level])
                problem.add_constraint(
                    {name: 1.0, f"x_{level}_{worker}": -float(peak_qpm[level])},
                    "<=",
                    0.0,
                    name=f"cap_{level}_{worker}",
                )
                problem.add_constraint(
                    {name: 1.0, f"lam_{worker}": -1.0}, "<=", 0.0, name=f"link_{level}_{worker}"
                )
        problem.set_objective(objective)

        for worker in range(num_workers):
            problem.add_constraint(
                {f"x_{level}_{worker}": 1.0 for level in range(num_levels)},
                "<=",
                1.0,
                name=f"one_level_w{worker}",
            )
            problem.add_constraint(
                dict(
                    {f"lam_{worker}": 1.0},
                    **{
                        f"x_{level}_{worker}": -float(peak_qpm[level])
                        for level in range(num_levels)
                    },
                ),
                "<=",
                0.0,
                name=f"lam_cap_w{worker}",
            )
        problem.add_constraint(
            {f"lam_{worker}": 1.0 for worker in range(num_workers)},
            "==",
            demand,
            name="meet_demand",
        )

        solution = BranchAndBoundSolver().solve(problem)
        if not solution.is_optimal:
            # Extremely rare; fall back to the specialised solver.
            return self.solve(target_qpm, quality, peak_qpm, num_workers)

        counts = [0] * num_levels
        qpm_per_level = [0.0] * num_levels
        for worker in range(num_workers):
            for level in range(num_levels):
                if solution.value(f"x_{level}_{worker}") > 0.5:
                    counts[level] += 1
                    qpm_per_level[level] += solution.value(f"y_{level}_{worker}")
                    break
        expected_quality = self._expected_quality(quality, qpm_per_level)
        return AllocationPlan(
            workers_per_level=tuple(counts),
            qpm_per_level=tuple(qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=expected_quality,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(
        target_qpm: float, quality: np.ndarray, peak_qpm: np.ndarray, num_workers: int
    ) -> None:
        if target_qpm < 0:
            raise ValueError("target_qpm must be non-negative")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if quality.shape != peak_qpm.shape or quality.ndim != 1 or len(quality) == 0:
            raise ValueError("quality and peak_qpm must be 1-D arrays of equal length")
        if np.any(peak_qpm <= 0):
            raise ValueError("peak throughputs must be positive")

    @staticmethod
    def _num_compositions(num_workers: int, num_levels: int) -> int:
        from math import comb

        return comb(num_workers + num_levels - 1, num_levels - 1)

    def _best_counts_enumerated(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> list[int]:
        num_levels = len(quality)
        return self._enumerate_best_counts(
            target_qpm,
            quality,
            num_workers,
            lambda counts: [counts[l] * peak_qpm[l] for l in range(num_levels)],
        )

    def _enumerate_best_counts(
        self,
        target_qpm: float,
        quality: np.ndarray,
        num_workers: int,
        capacity_fn,
    ) -> list[int]:
        """Exhaustive search over per-level worker counts.

        ``capacity_fn`` maps a counts composition to per-level capacities —
        uniform ``count x peak`` for homogeneous fleets, speed-prefix sums
        for heterogeneous ones — so both solve paths share one search loop.
        """
        num_levels = len(quality)
        best_counts: list[int] | None = None
        best_key: tuple[float, float] | None = None
        for combo in combinations_with_replacement(range(num_levels), num_workers):
            counts = [0] * num_levels
            for level in combo:
                counts[level] += 1
            qpm_per_level, feasible = self._fill_capacity(
                target_qpm, quality, capacity_fn(counts)
            )
            expected_quality = self._expected_quality(quality, qpm_per_level)
            served = sum(qpm_per_level)
            # Prefer plans that serve the target; among those, highest quality.
            key = (served if not feasible else target_qpm, expected_quality)
            if best_key is None or key > best_key:
                best_key = key
                best_counts = counts
        assert best_counts is not None
        return best_counts

    def _best_counts_greedy(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> list[int]:
        """Greedy for large clusters: start slow, upgrade until feasible."""
        num_levels = len(quality)
        counts = [0] * num_levels
        counts[0] = num_workers
        levels_by_speed = np.argsort(peak_qpm)  # slowest first

        def capacity(c: list[int]) -> float:
            return float(sum(c[l] * peak_qpm[l] for l in range(num_levels)))

        while capacity(counts) < target_qpm:
            upgraded = False
            # Upgrade one worker from the slowest occupied level to the next
            # faster level (smallest quality sacrifice per capacity gained).
            for level in levels_by_speed:
                if counts[level] > 0:
                    faster = [l for l in range(num_levels) if peak_qpm[l] > peak_qpm[level]]
                    if not faster:
                        continue
                    next_level = min(faster, key=lambda l: peak_qpm[l])
                    counts[level] -= 1
                    counts[next_level] += 1
                    upgraded = True
                    break
            if not upgraded:
                break
        return counts

    @staticmethod
    def _fill_load(
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        counts: list[int],
    ) -> tuple[list[float], bool]:
        """Distribute the target load across levels, best quality first."""
        num_levels = len(quality)
        capacity = [counts[l] * peak_qpm[l] for l in range(num_levels)]
        return AllocationSolver._fill_capacity(target_qpm, quality, capacity)

    @staticmethod
    def _fill_capacity(
        target_qpm: float,
        quality: np.ndarray,
        capacity: list[float],
    ) -> tuple[list[float], bool]:
        """Distribute the target load across per-level capacities, best
        quality first (the heterogeneity-aware core of ``_fill_load``)."""
        num_levels = len(quality)
        total_capacity = sum(capacity)
        feasible = total_capacity + 1e-9 >= target_qpm
        remaining = min(target_qpm, total_capacity)
        qpm_per_level = [0.0] * num_levels
        for level in sorted(range(num_levels), key=lambda l: -quality[l]):
            take = min(remaining, capacity[level])
            qpm_per_level[level] = take
            remaining -= take
            if remaining <= 1e-12:
                break
        return qpm_per_level, feasible

    @staticmethod
    def _expected_quality(quality: np.ndarray, qpm_per_level: list[float]) -> float:
        total = sum(qpm_per_level)
        if total <= 0:
            return 0.0
        shares = np.asarray(qpm_per_level) / total
        return float(np.dot(np.asarray(quality), shares))
