"""The Allocator's Solver (Eq. 1).

Given the expected load ``R_t`` (QPM), the profiled average quality ``q_l``
and peak per-worker throughput ``peak_l`` of every approximation level, and
the cluster size, the Solver decides how many workers run each level and how
much load each level serves, maximising overall quality subject to meeting
the load.

Two equivalent solvers are provided:

* :meth:`AllocationSolver.solve_ilp` — the literal Eq. 1 formulation with
  binary placement variables, solved by :mod:`repro.ilp` (the Gurobi role).
* :meth:`AllocationSolver.solve` — an exact enumeration/greedy solver
  specialised to the structure of the problem (workers are identical, so
  only per-level counts matter).  This is the default at runtime because it
  is faster and scales to large clusters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations_with_replacement

import numpy as np

from repro.ilp import BranchAndBoundSolver, IlpProblem


@lru_cache(maxsize=64)
def _compositions_matrix(num_workers: int, num_levels: int) -> np.ndarray:
    """All per-level worker-count compositions, one row per composition.

    Rows follow ``combinations_with_replacement`` order so vectorized and
    scalar enumeration agree on tie-breaking (first composition wins).
    """
    rows = np.zeros(
        (AllocationSolver._num_compositions(num_workers, num_levels), num_levels),
        dtype=np.int64,
    )
    for row, combo in enumerate(
        combinations_with_replacement(range(num_levels), num_workers)
    ):
        for level in combo:
            rows[row, level] += 1
    rows.setflags(write=False)
    return rows


@dataclass(frozen=True)
class AllocationPlan:
    """Output of the Solver: worker counts and load split across levels."""

    #: Number of workers assigned to each approximation level (index = rank).
    workers_per_level: tuple[int, ...]
    #: Load (QPM) routed to each level.
    qpm_per_level: tuple[float, ...]
    #: Whether the plan can serve the full target load.
    feasible: bool
    #: Target load the plan was computed for (QPM).
    target_qpm: float
    #: Quality-weighted objective value (sum of q_l * share_l).
    expected_quality: float

    @property
    def num_levels(self) -> int:
        """Number of approximation levels in the plan."""
        return len(self.workers_per_level)

    @property
    def total_workers(self) -> int:
        """Total workers placed by the plan."""
        return int(sum(self.workers_per_level))

    @property
    def total_capacity_qpm(self) -> float:
        """Total load actually allocated across levels."""
        return float(sum(self.qpm_per_level))

    def load_distribution(self) -> np.ndarray:
        """Normalised load share per level (the g(l) distribution for ODA)."""
        total = sum(self.qpm_per_level)
        if total <= 0:
            dist = np.zeros(self.num_levels)
            dist[0] = 1.0
            return dist
        return np.asarray(self.qpm_per_level) / total

    def worker_assignment(self, worker_ids: list[int]) -> dict[int, int]:
        """Map concrete worker ids to level ranks, slowest levels first."""
        assignment: dict[int, int] = {}
        index = 0
        for rank, count in enumerate(self.workers_per_level):
            for _ in range(int(count)):
                if index >= len(worker_ids):
                    return assignment
                assignment[worker_ids[index]] = rank
                index += 1
        # Any leftover workers (plan smaller than cluster) go to the slowest level.
        while index < len(worker_ids):
            assignment[worker_ids[index]] = 0
            index += 1
        return assignment


class AllocationSolver:
    """Solves the per-minute load-allocation problem."""

    def __init__(
        self,
        enumerate_limit: int = 5_000,
        cache_size: int = 512,
        cache_quantum_qpm: float = 0.0,
    ) -> None:
        #: Maximum number of worker-count compositions to enumerate before
        #: falling back to the greedy solver.  The default covers the paper's
        #: 8-worker cluster exactly (1287 compositions) and keeps the solve
        #: comfortably under the 100 ms budget for larger clusters, where the
        #: greedy upgrade heuristic takes over.
        self.enumerate_limit = int(enumerate_limit)
        #: Memoisation of :meth:`solve` on a (target-bucket, profile
        #: signature, fleet signature) key, so per-tick recalibrations and
        #: autoscaler what-if probes stop re-running the composition
        #: enumeration when nothing changed.  Any change to the quality /
        #: peak profiles, worker count or per-worker speeds changes the key,
        #: which is how invalidation happens.
        self.cache_size = int(cache_size)
        #: Optional target-QPM bucketing for the cache key.  0 (default)
        #: caches on the exact target only, which is hit-for-hit identical
        #: to an uncached solver.  A positive quantum rounds the target UP
        #: to the next multiple before solving, trading a slightly
        #: conservative plan for far more cache hits under drifting load.
        self.cache_quantum_qpm = float(cache_quantum_qpm)
        self._cache: OrderedDict[tuple, AllocationPlan] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def clear_cache(self) -> None:
        """Drop all memoised plans (profiling / test hook)."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # Default solver: exact enumeration with greedy fallback
    # ------------------------------------------------------------------ #
    def solve(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
        speed_factors: list[float] | None = None,
        signature: tuple | None = None,
    ) -> AllocationPlan:
        """Compute the quality-maximal allocation meeting ``target_qpm``.

        ``speed_factors`` makes the capacity model heterogeneity-aware: one
        relative GPU speed per worker (``peak_qpm`` is calibrated for speed
        1.0).  Level ``l``'s capacity then becomes ``peak_l x sum of the
        speeds assigned to it`` instead of ``count_l x peak_l``.  Workers
        are assigned to levels fastest-GPU-first in rank order, matching
        :meth:`AllocationPlan.worker_assignment` fed speed-sorted ids.  On a
        homogeneous fleet (all speeds 1.0, or None) this is exactly the
        uniform solve.

        ``signature`` is an opaque hashable tag folded into the memo key —
        callers whose *interpretation* of a plan depends on context the
        numeric inputs do not capture (e.g. the tenant contract set, whose
        quality floors reshape the PASM built from the plan) pass it so
        plans never leak between contexts sharing one solver.
        """
        quality = np.asarray(quality, dtype=np.float64)
        peak_qpm = np.asarray(peak_qpm, dtype=np.float64)
        self._validate(target_qpm, quality, peak_qpm, num_workers)
        if speed_factors is not None:
            if len(speed_factors) != num_workers:
                raise ValueError("speed_factors must list one speed per worker")
            if any(s <= 0 for s in speed_factors):
                raise ValueError("speed factors must be positive")
            if all(s == 1.0 for s in speed_factors):
                speed_factors = None

        if self.cache_quantum_qpm > 0:
            quantum = self.cache_quantum_qpm
            target_qpm = float(np.ceil(target_qpm / quantum) * quantum)
        key = (
            float(target_qpm),
            quality.tobytes(),
            peak_qpm.tobytes(),
            int(num_workers),
            None if speed_factors is None else tuple(speed_factors),
            signature,
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.cache_misses += 1

        if speed_factors is not None:
            plan = self._solve_heterogeneous(
                target_qpm, quality, peak_qpm, list(speed_factors)
            )
            self._cache_store(key, plan)
            return plan
        num_levels = len(quality)

        if self._num_compositions(num_workers, num_levels) <= self.enumerate_limit:
            counts = self._best_counts_enumerated(target_qpm, quality, peak_qpm, num_workers)
        else:
            counts = self._best_counts_greedy(target_qpm, quality, peak_qpm, num_workers)
        qpm_per_level, feasible = self._fill_load(target_qpm, quality, peak_qpm, counts)
        expected_quality = self._expected_quality(quality, qpm_per_level)
        plan = AllocationPlan(
            workers_per_level=tuple(int(c) for c in counts),
            qpm_per_level=tuple(float(q) for q in qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=expected_quality,
        )
        self._cache_store(key, plan)
        return plan

    def _cache_store(self, key: tuple, plan: AllocationPlan) -> None:
        self._cache[key] = plan
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Heterogeneous fleets (per-worker capacity, Eq. 1 generalised)
    # ------------------------------------------------------------------ #
    def _solve_heterogeneous(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        speed_factors: list[float],
    ) -> AllocationPlan:
        speeds = sorted(speed_factors, reverse=True)
        num_workers = len(speeds)
        num_levels = len(quality)
        # prefix[i] = total speed of the i fastest workers, so the chunk of
        # workers assigned to a level contributes prefix[end] - prefix[start].
        prefix = [0.0]
        for speed in speeds:
            prefix.append(prefix[-1] + speed)

        def level_capacities(counts: list[int]) -> list[float]:
            capacities = []
            start = 0
            for level in range(num_levels):
                end = start + counts[level]
                capacities.append(peak_qpm[level] * (prefix[end] - prefix[start]))
                start = end
            return capacities

        if self._num_compositions(num_workers, num_levels) <= self.enumerate_limit:
            compositions = _compositions_matrix(num_workers, num_levels)
            prefix_arr = np.asarray(prefix, dtype=np.float64)
            cum = np.cumsum(compositions, axis=1)
            start = cum - compositions
            cap_matrix = np.asarray(peak_qpm) * (prefix_arr[cum] - prefix_arr[start])
            best_row = self._best_composition_vectorized(target_qpm, quality, cap_matrix)
            counts = [int(c) for c in compositions[best_row]]
        else:
            # Large fleets: run the greedy upgrade heuristic in mean-speed
            # units, then price the resulting counts with the true per-worker
            # speeds.
            mean_speed = sum(speeds) / num_workers
            counts = self._best_counts_greedy(
                target_qpm, quality, peak_qpm * mean_speed, num_workers
            )
        qpm_per_level, feasible = self._fill_capacity(
            target_qpm, quality, level_capacities(counts)
        )
        return AllocationPlan(
            workers_per_level=tuple(int(c) for c in counts),
            qpm_per_level=tuple(float(q) for q in qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=self._expected_quality(quality, qpm_per_level),
        )

    # ------------------------------------------------------------------ #
    # ILP formulation (Eq. 1 verbatim)
    # ------------------------------------------------------------------ #
    def solve_ilp(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> AllocationPlan:
        """Solve Eq. 1 with binary placement variables via branch-and-bound.

        The formulation follows the paper: ``x[l, w] ∈ {0, 1}`` places level
        ``l`` on worker ``w``; ``lam[w] >= 0`` is the QPM routed to worker
        ``w``; each worker runs at most one level; a worker's load may not
        exceed the peak throughput of its level; total load equals the
        target (or the total capacity when the target is infeasible).
        """
        quality = np.asarray(quality, dtype=np.float64)
        peak_qpm = np.asarray(peak_qpm, dtype=np.float64)
        self._validate(target_qpm, quality, peak_qpm, num_workers)
        num_levels = len(quality)
        max_capacity = float(peak_qpm.max() * num_workers)
        demand = min(float(target_qpm), max_capacity)
        feasible = target_qpm <= max_capacity + 1e-9

        problem = IlpProblem(name="argus-allocation", maximize=True)
        for level in range(num_levels):
            for worker in range(num_workers):
                problem.add_binary(f"x_{level}_{worker}")
        for worker in range(num_workers):
            problem.add_variable(f"lam_{worker}", lower=0.0, upper=float(peak_qpm.max()))

        # Objective: sum_l q_l * g(l) where g(l) = sum_w assigned lam_w.  The
        # product x * lam is linearised by bounding lam_w by the peak of its
        # assigned level and crediting quality through per-level load
        # variables y_{l,w} <= min(lam_w, peak_l * x_{l,w}).
        objective: dict[str, float] = {}
        for level in range(num_levels):
            for worker in range(num_workers):
                name = f"y_{level}_{worker}"
                problem.add_variable(name, lower=0.0, upper=float(peak_qpm[level]))
                objective[name] = float(quality[level])
                problem.add_constraint(
                    {name: 1.0, f"x_{level}_{worker}": -float(peak_qpm[level])},
                    "<=",
                    0.0,
                    name=f"cap_{level}_{worker}",
                )
                problem.add_constraint(
                    {name: 1.0, f"lam_{worker}": -1.0}, "<=", 0.0, name=f"link_{level}_{worker}"
                )
        problem.set_objective(objective)

        for worker in range(num_workers):
            problem.add_constraint(
                {f"x_{level}_{worker}": 1.0 for level in range(num_levels)},
                "<=",
                1.0,
                name=f"one_level_w{worker}",
            )
            problem.add_constraint(
                dict(
                    {f"lam_{worker}": 1.0},
                    **{
                        f"x_{level}_{worker}": -float(peak_qpm[level])
                        for level in range(num_levels)
                    },
                ),
                "<=",
                0.0,
                name=f"lam_cap_w{worker}",
            )
        problem.add_constraint(
            {f"lam_{worker}": 1.0 for worker in range(num_workers)},
            "==",
            demand,
            name="meet_demand",
        )

        solution = BranchAndBoundSolver().solve(problem)
        if not solution.is_optimal:
            # Extremely rare; fall back to the specialised solver.
            return self.solve(target_qpm, quality, peak_qpm, num_workers)

        counts = [0] * num_levels
        qpm_per_level = [0.0] * num_levels
        for worker in range(num_workers):
            for level in range(num_levels):
                if solution.value(f"x_{level}_{worker}") > 0.5:
                    counts[level] += 1
                    qpm_per_level[level] += solution.value(f"y_{level}_{worker}")
                    break
        expected_quality = self._expected_quality(quality, qpm_per_level)
        return AllocationPlan(
            workers_per_level=tuple(counts),
            qpm_per_level=tuple(qpm_per_level),
            feasible=feasible,
            target_qpm=float(target_qpm),
            expected_quality=expected_quality,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(
        target_qpm: float, quality: np.ndarray, peak_qpm: np.ndarray, num_workers: int
    ) -> None:
        if target_qpm < 0:
            raise ValueError("target_qpm must be non-negative")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if quality.shape != peak_qpm.shape or quality.ndim != 1 or len(quality) == 0:
            raise ValueError("quality and peak_qpm must be 1-D arrays of equal length")
        if np.any(peak_qpm <= 0):
            raise ValueError("peak throughputs must be positive")

    @staticmethod
    def _num_compositions(num_workers: int, num_levels: int) -> int:
        from math import comb

        return comb(num_workers + num_levels - 1, num_levels - 1)

    def _best_counts_enumerated(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> list[int]:
        compositions = _compositions_matrix(num_workers, len(quality))
        cap_matrix = compositions * np.asarray(peak_qpm, dtype=np.float64)
        best_row = self._best_composition_vectorized(target_qpm, quality, cap_matrix)
        return [int(c) for c in compositions[best_row]]

    @staticmethod
    def _best_composition_vectorized(
        target_qpm: float, quality: np.ndarray, cap_matrix: np.ndarray
    ) -> int:
        """Row of ``cap_matrix`` with the best (served, quality) key.

        Vectorized form of the exhaustive composition search: the greedy
        best-quality-first fill runs once per *level* over all compositions
        at once instead of once per composition.  Arithmetic is ordered to
        match the scalar ``_fill_capacity`` / ``_expected_quality`` pass
        exactly (sequential level accumulation, identical guard epsilons),
        and ties keep the first composition, so the selected row is the one
        the scalar loop would pick.
        """
        num_comps, num_levels = cap_matrix.shape
        total = np.zeros(num_comps)
        for level in range(num_levels):
            total = total + cap_matrix[:, level]
        feasible = total + 1e-9 >= target_qpm
        remaining = np.minimum(target_qpm, total)
        served = np.zeros(num_comps)
        quality_acc = np.zeros(num_comps)
        fill_order = sorted(range(num_levels), key=lambda l: -quality[l])
        takes = np.zeros((num_comps, num_levels))
        for position, level in enumerate(fill_order):
            take = np.minimum(remaining, cap_matrix[:, level])
            if position:
                # The scalar loop stops filling once remaining <= 1e-12.
                take = np.where(remaining > 1e-12, take, 0.0)
            takes[:, level] = take
            remaining = remaining - take
        for level in range(num_levels):
            served = served + takes[:, level]
        safe_served = np.where(served > 0, served, 1.0)
        for level in range(num_levels):
            quality_acc = quality_acc + quality[level] * (takes[:, level] / safe_served)
        quality_acc = np.where(served > 0, quality_acc, 0.0)
        # Prefer plans that serve the target; among those, highest quality;
        # exact ties keep the lowest row (== first enumeration order).  The
        # served accumulation above is bit-identical to the scalar pass, but
        # the quality accumulation order is not, so near-ties are re-scored
        # with the exact scalar formula before deciding.
        primary = np.where(feasible, target_qpm, served)
        best_primary = primary.max()
        candidates = primary == best_primary
        best_quality = quality_acc[candidates].max()
        scale = max(abs(float(best_quality)), 1.0)
        near = candidates & (quality_acc >= best_quality - 1e-9 * scale)
        rows = np.flatnonzero(near)
        if len(rows) == 1:
            return int(rows[0])
        best_row = int(rows[0])
        best_exact: float | None = None
        for row in rows:
            exact = AllocationSolver._expected_quality(quality, list(takes[row]))
            if best_exact is None or exact > best_exact:
                best_exact = exact
                best_row = int(row)
        return best_row

    def _enumerate_best_counts_scalar(
        self,
        target_qpm: float,
        quality: np.ndarray,
        num_workers: int,
        capacity_fn,
    ) -> list[int]:
        """Reference scalar form of the composition search.

        Kept (unused on the hot path) so the equivalence tests and the perf
        harness can check and time the vectorized search against the
        original per-composition loop.
        """
        num_levels = len(quality)
        best_counts: list[int] | None = None
        best_key: tuple[float, float] | None = None
        for combo in combinations_with_replacement(range(num_levels), num_workers):
            counts = [0] * num_levels
            for level in combo:
                counts[level] += 1
            qpm_per_level, feasible = self._fill_capacity(
                target_qpm, quality, capacity_fn(counts)
            )
            expected_quality = self._expected_quality(quality, qpm_per_level)
            served = sum(qpm_per_level)
            # Prefer plans that serve the target; among those, highest quality.
            key = (served if not feasible else target_qpm, expected_quality)
            if best_key is None or key > best_key:
                best_key = key
                best_counts = counts
        assert best_counts is not None
        return best_counts

    def _best_counts_greedy(
        self,
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        num_workers: int,
    ) -> list[int]:
        """Greedy for large clusters: start slow, upgrade until feasible.

        Capacity is maintained incrementally — each upgrade moves one worker
        between two levels, so the fleet capacity changes by exactly the
        peak-throughput delta.  O(1) per upgrade instead of the O(levels)
        full recomputation per iteration.
        """
        num_levels = len(quality)
        counts = [0] * num_levels
        counts[0] = num_workers
        levels_by_speed = np.argsort(peak_qpm)  # slowest first
        # Next strictly faster level for each level (lowest peak among the
        # faster ones, first index on ties); None at the fastest levels.
        next_faster: list[int | None] = []
        for level in range(num_levels):
            faster = [l for l in range(num_levels) if peak_qpm[l] > peak_qpm[level]]
            next_faster.append(min(faster, key=lambda l: peak_qpm[l]) if faster else None)

        capacity = float(num_workers * peak_qpm[0])
        while capacity < target_qpm:
            upgraded = False
            # Upgrade one worker from the slowest occupied level to the next
            # faster level (smallest quality sacrifice per capacity gained).
            for level in levels_by_speed:
                if counts[level] > 0:
                    next_level = next_faster[level]
                    if next_level is None:
                        continue
                    counts[level] -= 1
                    counts[next_level] += 1
                    capacity += float(peak_qpm[next_level] - peak_qpm[level])
                    upgraded = True
                    break
            if not upgraded:
                break
        return counts

    @staticmethod
    def _fill_load(
        target_qpm: float,
        quality: np.ndarray,
        peak_qpm: np.ndarray,
        counts: list[int],
    ) -> tuple[list[float], bool]:
        """Distribute the target load across levels, best quality first."""
        num_levels = len(quality)
        capacity = [counts[l] * peak_qpm[l] for l in range(num_levels)]
        return AllocationSolver._fill_capacity(target_qpm, quality, capacity)

    @staticmethod
    def _fill_capacity(
        target_qpm: float,
        quality: np.ndarray,
        capacity: list[float],
    ) -> tuple[list[float], bool]:
        """Distribute the target load across per-level capacities, best
        quality first (the heterogeneity-aware core of ``_fill_load``)."""
        num_levels = len(quality)
        total_capacity = sum(capacity)
        feasible = total_capacity + 1e-9 >= target_qpm
        remaining = min(target_qpm, total_capacity)
        qpm_per_level = [0.0] * num_levels
        for level in sorted(range(num_levels), key=lambda l: -quality[l]):
            take = min(remaining, capacity[level])
            qpm_per_level[level] = take
            remaining -= take
            if remaining <= 1e-12:
                break
        return qpm_per_level, feasible

    @staticmethod
    def _expected_quality(quality: np.ndarray, qpm_per_level: list[float]) -> float:
        total = sum(qpm_per_level)
        if total <= 0:
            return 0.0
        shares = np.asarray(qpm_per_level) / total
        return float(np.dot(np.asarray(quality), shares))
