"""Workload Distribution Predictor and load estimator (block B of Fig. 3).

The predictor keeps a look-back window of the classifier's optimal-level
predictions and aggregates them into the affinity histogram ``f(l)`` that
ODA aligns against the solver's load distribution ``g(l)``.  The load
estimator tracks recent arrivals to produce the target QPM ``R_t`` the
solver plans for.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class WorkloadDistributionPredictor:
    """Sliding-window estimator of the prompt affinity distribution f(l)."""

    def __init__(self, num_levels: int, lookback: int = 1000) -> None:
        if num_levels <= 0:
            raise ValueError("num_levels must be positive")
        if lookback <= 0:
            raise ValueError("lookback must be positive")
        self.num_levels = int(num_levels)
        self.lookback = int(lookback)
        #: (rank, weight) pairs in arrival order, bounded by the lookback.
        self._window: deque[tuple[int, float]] = deque(maxlen=self.lookback)

    def observe(self, predicted_rank: int, weight: float = 1.0) -> None:
        """Record one classifier prediction.

        ``weight`` scales the observation's mass in the affinity histogram
        (tenant-weighted planning: a heavier tenant's prompts pull the PASM
        proportionally harder).  The default 1.0 reproduces the unweighted
        histogram exactly.
        """
        if not 0 <= predicted_rank < self.num_levels:
            raise ValueError(f"rank {predicted_rank} outside [0, {self.num_levels - 1}]")
        if weight <= 0:
            raise ValueError("observation weight must be positive")
        self._window.append((int(predicted_rank), float(weight)))

    def observe_many(self, predicted_ranks: list[int]) -> None:
        """Record several predictions at once (e.g. warm-up history)."""
        for rank in predicted_ranks:
            self.observe(rank)

    @property
    def num_observations(self) -> int:
        """Number of predictions currently in the window."""
        return len(self._window)

    def affinity_distribution(self) -> np.ndarray:
        """Current estimate of f(l); uniform when no data has been seen.

        Observations contribute their weight; with all-1.0 weights the
        accumulated masses are exact integers, so this is bit-identical to
        the original unweighted count histogram.
        """
        counts = np.zeros(self.num_levels, dtype=np.float64)
        for rank, weight in self._window:
            counts[rank] += weight
        if counts.sum() == 0:
            return np.full(self.num_levels, 1.0 / self.num_levels)
        return counts / counts.sum()

    def prediction_error(self, true_distribution: np.ndarray) -> float:
        """L2 error against a ground-truth distribution (§5.7 reports <=0.01)."""
        true_distribution = np.asarray(true_distribution, dtype=np.float64)
        if true_distribution.shape != (self.num_levels,):
            raise ValueError("distribution length mismatch")
        return float(np.linalg.norm(self.affinity_distribution() - true_distribution))

    def reset(self) -> None:
        """Clear the window (used when the strategy switches)."""
        self._window.clear()


class LoadEstimator:
    """Estimates the near-term offered load (QPM) from recent arrivals."""

    def __init__(
        self,
        window_minutes: int = 5,
        safety_factor: float = 1.1,
        ewma_alpha: float = 0.5,
    ) -> None:
        if window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        if safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1.0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.window_minutes = int(window_minutes)
        self.safety_factor = float(safety_factor)
        self.ewma_alpha = float(ewma_alpha)
        self._minute_counts: deque[tuple[int, int]] = deque(maxlen=self.window_minutes)
        self._current_minute: int | None = None
        self._current_count = 0
        self._ewma: float | None = None
        self._last_arrival_s = 0.0
        self._first_arrival_s: float | None = None
        #: Timestamps of arrivals within the trailing 60 s (sliding window).
        self._recent: deque[float] = deque()

    def observe_arrival(self, time_s: float) -> None:
        """Record one arrival at simulated time ``time_s``."""
        minute = int(time_s // 60)
        if self._current_minute is None:
            self._current_minute = minute
        while minute > self._current_minute:
            self._roll_minute()
        self._current_count += 1
        self._last_arrival_s = float(time_s)
        if self._first_arrival_s is None:
            self._first_arrival_s = float(time_s)
        self._recent.append(float(time_s))
        cutoff = time_s - 60.0
        while self._recent and self._recent[0] <= cutoff:
            self._recent.popleft()

    def _advance_to(self, now_s: float) -> None:
        """Age estimator state to ``now_s`` (idle minutes count as zero)."""
        cutoff = now_s - 60.0
        while self._recent and self._recent[0] <= cutoff:
            self._recent.popleft()
        if self._current_minute is not None:
            while int(now_s // 60) > self._current_minute:
                self._roll_minute()

    def _roll_minute(self) -> None:
        assert self._current_minute is not None
        self._minute_counts.append((self._current_minute, self._current_count))
        count = float(self._current_count)
        self._ewma = (
            count
            if self._ewma is None
            else self.ewma_alpha * count + (1.0 - self.ewma_alpha) * self._ewma
        )
        self._current_minute += 1
        self._current_count = 0

    def estimated_qpm(self, now_s: float | None = None) -> float:
        """Predicted load for the next interval, with the safety factor.

        Uses the max of the EWMA, the most recent complete minute and a
        sliding 60-second arrival count, so the estimate reacts to upward
        spikes within seconds (no waiting for a minute boundary) while the
        full-width sliding window keeps short Poisson bursts from reading as
        sustained load.

        Pass ``now_s`` to age the estimate against the clock: without it,
        state only advances on arrivals, so an idle valley would leave the
        estimate pinned at the last observed rate indefinitely.
        """
        if now_s is not None:
            self._advance_to(now_s)
        candidates: list[float] = []
        if self._ewma is not None:
            candidates.append(self._ewma)
        if self._minute_counts:
            candidates.append(float(self._minute_counts[-1][1]))
        if self._recent and self._first_arrival_s is not None:
            observed_span = self._last_arrival_s - self._first_arrival_s
            if observed_span >= 60.0:
                # A full window of history: the count over the trailing 60 s
                # is the rate in QPM directly.
                candidates.append(float(len(self._recent)))
            else:
                # Cold start: scale the short observation span up, floored so
                # a handful of early arrivals cannot explode the estimate.
                candidates.append(len(self._recent) * 60.0 / max(observed_span, 5.0))
        if not candidates:
            return 0.0
        return max(candidates) * self.safety_factor

    def reset(self) -> None:
        """Forget all history."""
        self._minute_counts.clear()
        self._current_minute = None
        self._current_count = 0
        self._ewma = None
        self._first_arrival_s = None
        self._recent.clear()
