"""Wall-clock runtime: model time mapped onto the asyncio event loop.

``time_scale`` is *model seconds per wall second*: at 1.0 the gateway runs
in real time; at 60.0 one wall second covers a simulated minute, which is
how the load generator replays a 15-minute scenario trace in seconds while
every control loop (admission pumps, allocator ticks, autoscaler epochs)
still fires at its configured *model*-time cadence.  All public times —
``now()``, schedule delays, sleep durations — are model seconds; division
by ``time_scale`` happens only at the loop boundary.
"""

from __future__ import annotations

import asyncio
from typing import Callable


class _WallTask:
    """Cancellable handle over one ``loop.call_later`` timer."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle | None = None) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class WallClockRuntime:
    """:class:`~repro.runtime.base.Runtime` over the asyncio event loop."""

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = float(time_scale)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._origin = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Pin the loop and zero the model clock (call once, inside the loop)."""
        self._loop = loop or asyncio.get_running_loop()
        self._origin = self._loop.time()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("WallClockRuntime.start() must run before scheduling")
        return self._loop

    # ------------------------------------------------------------------ #
    # Runtime protocol
    # ------------------------------------------------------------------ #
    def now(self) -> float:
        """Model seconds since :meth:`start`."""
        return (self._require_loop().time() - self._origin) * self.time_scale

    def schedule_in(self, delay_s: float, fn: Callable[[], None], name: str = "") -> _WallTask:
        loop = self._require_loop()
        handle = loop.call_later(max(0.0, delay_s) / self.time_scale, fn)
        return _WallTask(handle)

    def schedule_at(self, time_s: float, fn: Callable[[], None], name: str = "") -> _WallTask:
        return self.schedule_in(time_s - self.now(), fn, name=name)

    def schedule_every(
        self,
        interval_s: float,
        fn: Callable[[], None],
        name: str = "",
        start_delay_s: float | None = None,
    ) -> _WallTask:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        loop = self._require_loop()
        task = _WallTask()
        first_delay = interval_s if start_delay_s is None else start_delay_s

        def tick() -> None:
            if task.cancelled:
                return
            fn()
            task._handle = loop.call_later(interval_s / self.time_scale, tick)

        task._handle = loop.call_later(max(0.0, first_delay) / self.time_scale, tick)
        return task

    async def sleep(self, duration_s: float) -> None:
        await asyncio.sleep(max(0.0, duration_s) / self.time_scale)
