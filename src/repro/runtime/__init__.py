"""Clock-agnostic runtime abstraction (simulated or wall-clock time).

The control plane — admission, autoscaler, allocator tick loops — schedules
against the :class:`Runtime` protocol; :class:`SimRuntime` runs it on the
discrete-event engine bit-identically to before, :class:`WallClockRuntime`
runs the very same objects on asyncio wall time for the live gateway.
"""

from repro.runtime.base import Runtime, ScheduledTask, as_runtime
from repro.runtime.sim import SimRuntime
from repro.runtime.wall import WallClockRuntime

__all__ = [
    "Runtime",
    "ScheduledTask",
    "SimRuntime",
    "WallClockRuntime",
    "as_runtime",
]
