"""The clock-agnostic runtime contract the control plane is written against.

The scheduler, admission controller, autoscaler tick loops and the gateway
all talk to a :class:`Runtime` instead of a concrete clock: ``now()`` is the
current *model time* in seconds, ``schedule_*`` arranges future callbacks,
and ``sleep`` suspends an async task for a model-time duration.  Two
implementations exist:

- :class:`~repro.runtime.sim.SimRuntime` delegates to the discrete-event
  :class:`~repro.simulation.engine.SimulationEngine` — same heap, same
  sequence numbers, bit-identical behaviour to calling the engine directly.
- :class:`~repro.runtime.wall.WallClockRuntime` maps model time onto the
  asyncio event loop's wall clock, optionally time-compressed, so the same
  control-plane objects drive live traffic.

Callbacks take **no arguments** (unlike engine callbacks, which receive the
engine); read the time via ``runtime.now()`` inside the callback.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class ScheduledTask(Protocol):
    """Cancellable handle returned by the ``schedule_*`` family."""

    def cancel(self) -> None:
        """Prevent the callback from running (no-op once it has run)."""


@runtime_checkable
class Runtime(Protocol):
    """What the control plane needs from a clock: read it, schedule on it."""

    def now(self) -> float:
        """Current model time in seconds."""
        ...

    def schedule_at(
        self, time_s: float, fn: Callable[[], None], name: str = ""
    ) -> ScheduledTask:
        """Run ``fn`` at absolute model time ``time_s``."""
        ...

    def schedule_in(
        self, delay_s: float, fn: Callable[[], None], name: str = ""
    ) -> ScheduledTask:
        """Run ``fn`` after ``delay_s`` model seconds."""
        ...

    def schedule_every(
        self,
        interval_s: float,
        fn: Callable[[], None],
        name: str = "",
        start_delay_s: float | None = None,
    ) -> ScheduledTask:
        """Run ``fn`` every ``interval_s`` model seconds until cancelled."""
        ...

    async def sleep(self, duration_s: float) -> None:
        """Suspend the calling task for ``duration_s`` model seconds."""
        ...


def as_runtime(source) -> Runtime:
    """Coerce an engine or runtime into a :class:`Runtime`.

    Accepts a :class:`~repro.simulation.engine.SimulationEngine` (wrapped in
    a :class:`~repro.runtime.sim.SimRuntime`) or any object already
    satisfying the protocol (returned as-is).  This is what lets refactored
    call sites such as ``Autoscaler.install`` keep accepting the engine they
    always took.
    """
    # Local import: repro.simulation must not depend on this package.
    from repro.simulation.engine import SimulationEngine

    if isinstance(source, SimulationEngine):
        from repro.runtime.sim import SimRuntime

        return SimRuntime(source)
    if isinstance(source, Runtime):
        return source
    raise TypeError(f"cannot build a Runtime from {type(source).__name__}")
