"""Simulated-time runtime: a thin veneer over the discrete-event engine.

Every call delegates straight to the engine's ``schedule_*`` family, with
the no-argument runtime callback wrapped as an engine callback.  The wrapper
adds nothing else — same heap, same sequence counter, same tie-breaking —
so control-plane code moved from ``engine.schedule_in(d, cb)`` to
``runtime.schedule_in(d, cb)`` is *bit-identical* to before, which is the
property the fig16 hex-identity pins rely on.
"""

from __future__ import annotations

from typing import Callable

from repro.simulation.engine import Event, SimulationEngine


class SimRuntime:
    """:class:`~repro.runtime.base.Runtime` over a :class:`SimulationEngine`."""

    def __init__(self, engine: SimulationEngine) -> None:
        self.engine = engine

    def now(self) -> float:
        return self.engine.now

    def schedule_at(self, time_s: float, fn: Callable[[], None], name: str = "") -> Event:
        return self.engine.schedule_at(time_s, lambda _engine: fn(), name=name)

    def schedule_in(self, delay_s: float, fn: Callable[[], None], name: str = "") -> Event:
        return self.engine.schedule_in(delay_s, lambda _engine: fn(), name=name)

    def schedule_every(
        self,
        interval_s: float,
        fn: Callable[[], None],
        name: str = "",
        start_delay_s: float | None = None,
    ) -> Event:
        """Periodic scheduling via a self-rescheduling event chain.

        Mirrors ``SimulationEngine.schedule_every`` exactly (one live heap
        entry, rescheduled after each firing) but returns a live handle:
        cancelling it stops the chain at the next firing, which the engine's
        own ``schedule_every`` cannot do.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        first_delay = interval_s if start_delay_s is None else start_delay_s
        chain = _RepeatingEvent()

        def tick(engine: SimulationEngine) -> None:
            if chain.cancelled:
                return
            fn()
            chain.event = engine.schedule_in(interval_s, tick, name=name)

        chain.event = self.engine.schedule_in(first_delay, tick, name=name)
        return chain

    async def sleep(self, duration_s: float) -> None:
        """Not supported: simulated time advances by draining the engine.

        Coroutine-style control flow belongs to the wall-clock runtime; in
        simulation the same logic must be expressed as scheduled callbacks
        (which is how every existing control loop is written).
        """
        raise NotImplementedError(
            "SimRuntime cannot sleep: simulated time only advances through "
            "engine.run(); use schedule_in/schedule_every callbacks instead"
        )


class _RepeatingEvent:
    """Handle for a self-rescheduling event chain."""

    __slots__ = ("event", "cancelled")

    def __init__(self) -> None:
        self.event: Event | None = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()
