"""Drift detection and retraining trigger (§4.1, Fig. 18).

Argus retrains the classifier only when significant data drift is detected:
the median PickScore of the current window falling below the moving average
of previous windows.  Retraining happens off the critical path and reuses
images generated during normal operation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DriftEvent:
    """Record of one detected drift episode."""

    window_index: int
    window_median: float
    moving_average: float

    @property
    def deficit(self) -> float:
        """How far the window median fell below the moving average."""
        return self.moving_average - self.window_median


@dataclass
class DriftDetector:
    """Sliding-window median-vs-moving-average drift detector."""

    window_size: int = 400
    history_windows: int = 5
    #: Relative slack: drift fires when median < (1 - tolerance) * moving avg.
    tolerance: float = 0.05
    #: Minimum completed windows before drift can fire at all.
    warmup_windows: int = 2

    _current: list[float] = field(default_factory=list, repr=False)
    _window_medians: deque = field(default_factory=deque, repr=False)
    _windows_seen: int = field(default=0, repr=False)
    events: list[DriftEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0.0 <= self.tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        self._window_medians = deque(maxlen=self.history_windows)

    # ------------------------------------------------------------------ #
    # Online updates
    # ------------------------------------------------------------------ #
    def observe(self, pickscore: float) -> DriftEvent | None:
        """Record one served request's PickScore.

        Returns a :class:`DriftEvent` when this observation completes a
        window whose median is significantly below the moving average of
        prior windows; otherwise None.
        """
        self._current.append(float(pickscore))
        if len(self._current) < self.window_size:
            return None
        return self._close_window()

    def observe_many(self, pickscores: list[float]) -> list[DriftEvent]:
        """Record a batch of observations, returning any drift events."""
        events = []
        for score in pickscores:
            event = self.observe(score)
            if event is not None:
                events.append(event)
        return events

    def _close_window(self) -> DriftEvent | None:
        values = sorted(self._current)
        median = values[len(values) // 2]
        self._current = []
        self._windows_seen += 1

        event = None
        if len(self._window_medians) >= self.warmup_windows:
            moving_average = sum(self._window_medians) / len(self._window_medians)
            if median < (1.0 - self.tolerance) * moving_average:
                event = DriftEvent(
                    window_index=self._windows_seen,
                    window_median=median,
                    moving_average=moving_average,
                )
                self.events.append(event)
        self._window_medians.append(median)
        return event

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def windows_seen(self) -> int:
        """Number of completed observation windows."""
        return self._windows_seen

    @property
    def num_drift_events(self) -> int:
        """Number of drift episodes detected so far."""
        return len(self.events)

    def reset(self) -> None:
        """Forget all state (e.g. right after retraining)."""
        self._current = []
        self._window_medians.clear()
