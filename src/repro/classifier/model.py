"""Multinomial logistic-regression classifier trained with mini-batch SGD."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves recorded during training."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def final_train_loss(self) -> float:
        """Loss after the last epoch (inf when never trained)."""
        return self.train_loss[-1] if self.train_loss else float("inf")

    @property
    def final_validation_accuracy(self) -> float:
        """Validation accuracy after the last epoch (0 when never trained)."""
        return self.validation_accuracy[-1] if self.validation_accuracy else 0.0


class SoftmaxClassifier:
    """Softmax regression with L2 regularisation."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        learning_rate: float = 0.25,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if num_features <= 0 or num_classes <= 1:
            raise ValueError("need at least one feature and two classes")
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.01, size=(num_features, num_classes))
        self.bias = np.zeros(num_classes)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def logits(self, features: np.ndarray) -> np.ndarray:
        """Raw class scores for a feature matrix of shape (n, d)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities via a numerically stable softmax."""
        scores = self.logits(features)
        scores -= scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class for each row."""
        return np.argmax(self.predict_proba(features), axis=1)

    def predict_one(self, features: np.ndarray) -> int:
        """Most likely class for a single feature vector."""
        return int(self.predict(np.atleast_2d(features))[0])

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss plus the L2 penalty."""
        probabilities = self.predict_proba(features)
        labels = np.asarray(labels, dtype=np.int64)
        n = len(labels)
        if n == 0:
            return 0.0
        picked = probabilities[np.arange(n), labels]
        nll = -np.log(np.clip(picked, 1e-12, None)).mean()
        return float(nll + 0.5 * self.l2 * np.sum(self.weights ** 2))

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of rows classified correctly."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) == 0:
            return 0.0
        return float((self.predict(features) == labels).mean())

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        seed: int = 0,
    ) -> TrainingHistory:
        """Train with mini-batch SGD, recording loss/accuracy per epoch."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        if features.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        rng = np.random.default_rng(seed)
        n = features.shape[0]

        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                self._sgd_step(features[batch], labels[batch])
            self.history.train_loss.append(self.loss(features, labels))
            self.history.train_accuracy.append(self.accuracy(features, labels))
            if validation is not None:
                val_x, val_y = validation
                self.history.validation_loss.append(self.loss(val_x, val_y))
                self.history.validation_accuracy.append(self.accuracy(val_x, val_y))
        return self.history

    def _sgd_step(self, features: np.ndarray, labels: np.ndarray) -> None:
        n = features.shape[0]
        probabilities = self.predict_proba(features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n), labels] = 1.0
        error = probabilities - one_hot
        grad_w = features.T @ error / n + self.l2 * self.weights
        grad_b = error.mean(axis=0)
        self.weights -= self.learning_rate * grad_w
        self.bias -= self.learning_rate * grad_b

    # ------------------------------------------------------------------ #
    # Persistence helpers
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Serializable snapshot of the model parameters."""
        return {
            "weights": self.weights.copy(),
            "bias": self.bias.copy(),
            "num_features": self.num_features,
            "num_classes": self.num_classes,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore parameters from :meth:`state_dict` output."""
        weights = np.asarray(state["weights"], dtype=np.float64)
        bias = np.asarray(state["bias"], dtype=np.float64)
        if weights.shape != (self.num_features, self.num_classes):
            raise ValueError("weight shape mismatch")
        if bias.shape != (self.num_classes,):
            raise ValueError("bias shape mismatch")
        self.weights = weights.copy()
        self.bias = bias.copy()
