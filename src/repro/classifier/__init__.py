"""The approximation-level predictor (the paper's BERT-based classifier).

Given a prompt, the classifier predicts which approximation level is optimal
(fastest level that still produces an optimal-quality image).  One classifier
is trained per strategy (AC and SM).  Ours is a multinomial logistic
regression over the features in :mod:`repro.prompts.features`; it plays the
same role in the serving pipeline and reaches the same accuracy regime.
"""

from repro.classifier.model import SoftmaxClassifier, TrainingHistory
from repro.classifier.trainer import ClassifierTrainer, LabeledPrompts, TrainedPredictor
from repro.classifier.drift import DriftDetector, DriftEvent

__all__ = [
    "ClassifierTrainer",
    "DriftDetector",
    "DriftEvent",
    "LabeledPrompts",
    "SoftmaxClassifier",
    "TrainedPredictor",
    "TrainingHistory",
]
