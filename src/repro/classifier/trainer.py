"""Training pipeline for the approximation-level predictor.

Labels come from the quality substrate: for each training prompt we compute
PickScores at every level and label the prompt with its optimal level (§4.1).
The trainer builds a :class:`TrainedPredictor` which the Argus scheduler uses
at serving time, and exposes the loss→PickScore relationship benchmarked in
Fig. 19.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classifier.model import SoftmaxClassifier, TrainingHistory
from repro.models.zoo import Strategy
from repro.prompts.features import PromptFeaturizer
from repro.prompts.generator import Prompt
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel


@dataclass(frozen=True)
class LabeledPrompts:
    """Featurised prompts with their optimal-level labels."""

    strategy: Strategy
    prompts: tuple[Prompt, ...]
    features: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.prompts)


@dataclass
class TrainedPredictor:
    """A trained classifier bound to its featurizer and strategy."""

    strategy: Strategy
    classifier: SoftmaxClassifier
    featurizer: PromptFeaturizer
    history: TrainingHistory
    #: Rank memo keyed by prompt content hash.  The prediction is a pure
    #: function of the prompt text and the (frozen-after-fit) weights, so
    #: repeated prompts — dataset cycling dominates long traces — skip the
    #: featurize + matmul entirely.  Retraining builds a fresh predictor,
    #: which empties the memo automatically.
    _rank_memo: dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def predict_rank(self, prompt: Prompt | str) -> int:
        """Predicted optimal approximation rank for one prompt."""
        if isinstance(prompt, Prompt):
            key = prompt.content_hash()
            rank = self._rank_memo.get(key)
            if rank is None:
                rank = self.classifier.predict_one(self.featurizer.featurize(prompt))
                self._rank_memo[key] = rank
            return rank
        features = self.featurizer.featurize(prompt)
        return self.classifier.predict_one(features)

    def predict_ranks(self, prompts: list[Prompt]) -> list[int]:
        """Predicted optimal ranks for a batch of prompts."""
        if not prompts:
            return []
        features = self.featurizer.featurize_batch(list(prompts))
        return [int(r) for r in self.classifier.predict(features)]

    def accuracy_against(self, labeled: LabeledPrompts) -> float:
        """Accuracy against ground-truth optimal levels."""
        return self.classifier.accuracy(labeled.features, labeled.labels)


class ClassifierTrainer:
    """Builds labels from the quality model and trains per-strategy predictors."""

    def __init__(
        self,
        pickscore: PickScoreModel,
        featurizer: PromptFeaturizer | None = None,
        selector: OptimalModelSelector | None = None,
    ) -> None:
        self.pickscore = pickscore
        self.featurizer = featurizer or PromptFeaturizer()
        self.selector = selector or OptimalModelSelector(pickscore)

    # ------------------------------------------------------------------ #
    # Label construction
    # ------------------------------------------------------------------ #
    def build_labels(self, prompts: list[Prompt], strategy: Strategy | str) -> LabeledPrompts:
        """Compute optimal-level labels for a prompt sample."""
        strategy = Strategy(strategy)
        features = self.featurizer.featurize_batch(list(prompts))
        labels = np.array(
            [self.selector.optimal_rank(p, strategy) for p in prompts], dtype=np.int64
        )
        return LabeledPrompts(
            strategy=strategy, prompts=tuple(prompts), features=features, labels=labels
        )

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(
        self,
        prompts: list[Prompt],
        strategy: Strategy | str,
        epochs: int = 30,
        validation_fraction: float = 0.2,
        seed: int = 0,
    ) -> TrainedPredictor:
        """Train a predictor for ``strategy`` on ``prompts``."""
        strategy = Strategy(strategy)
        labeled = self.build_labels(prompts, strategy)
        n = len(labeled)
        if n < 10:
            raise ValueError("need at least 10 prompts to train the classifier")
        cut = int(round(n * (1.0 - validation_fraction)))
        cut = max(1, min(n - 1, cut))
        train_x, val_x = labeled.features[:cut], labeled.features[cut:]
        train_y, val_y = labeled.labels[:cut], labeled.labels[cut:]

        classifier = SoftmaxClassifier(
            num_features=self.featurizer.dim,
            num_classes=self.pickscore.num_levels,
            seed=seed,
        )
        history = classifier.fit(
            train_x, train_y, epochs=epochs, validation=(val_x, val_y), seed=seed
        )
        return TrainedPredictor(
            strategy=strategy,
            classifier=classifier,
            featurizer=self.featurizer,
            history=history,
        )

    def train_both_strategies(
        self, prompts: list[Prompt], epochs: int = 30, seed: int = 0
    ) -> dict[Strategy, TrainedPredictor]:
        """Train the AC and SM predictors on the same prompt sample."""
        return {
            strategy: self.train(prompts, strategy, epochs=epochs, seed=seed)
            for strategy in (Strategy.AC, Strategy.SM)
        }

    # ------------------------------------------------------------------ #
    # Fig. 19: loss vs. achieved PickScore
    # ------------------------------------------------------------------ #
    def loss_vs_pickscore_curve(
        self,
        prompts: list[Prompt],
        strategy: Strategy | str,
        epoch_checkpoints: tuple[int, ...] = (1, 3, 6, 12, 24),
        eval_prompts: list[Prompt] | None = None,
        seed: int = 0,
    ) -> list[dict[str, float]]:
        """Train with increasing epoch budgets and measure achieved quality.

        For each checkpoint the classifier routes ``eval_prompts`` to its
        predicted level and the mean PickScore of those assignments is
        recorded, reproducing the loss-down / PickScore-up trend of Fig. 19.
        """
        strategy = Strategy(strategy)
        eval_prompts = eval_prompts or prompts
        curve = []
        for epochs in epoch_checkpoints:
            predictor = self.train(prompts, strategy, epochs=epochs, seed=seed)
            ranks = predictor.predict_ranks(eval_prompts)
            scores = [
                self.pickscore.score(p, strategy, rank)
                for p, rank in zip(eval_prompts, ranks)
            ]
            curve.append(
                {
                    "epochs": float(epochs),
                    "train_loss": predictor.history.final_train_loss,
                    "validation_accuracy": predictor.history.final_validation_accuracy,
                    "mean_pickscore": float(np.mean(scores)),
                }
            )
        return curve
