"""Model zoo and performance models for diffusion-based T2I variants.

This package holds the static knowledge Argus needs about the models it can
serve: which variants exist, how large they are, how long they take on each
GPU, how their internal components break down into FLOPs (Table 3 of the
paper), how badly they batch (Fig. 14), and where they sit on a roofline plot
(Fig. 15).
"""

from repro.models.batching import BatchingModel, batching_speedup_curve
from repro.models.components import (
    ComponentProfile,
    MODEL_COMPONENT_PROFILES,
    arithmetic_intensity,
    component_profiles_for,
)
from repro.models.gpus import GPU_SPECS, GpuSpec
from repro.models.latency import LatencyModel
from repro.models.roofline import RooflineModel, RooflinePoint
from repro.models.variants import (
    AC_LEVELS,
    AcLevel,
    ModelVariant,
    SM_VARIANTS,
    ac_level_by_skip,
    variant_by_name,
)
from repro.models.zoo import ModelZoo

__all__ = [
    "AC_LEVELS",
    "AcLevel",
    "BatchingModel",
    "ComponentProfile",
    "GPU_SPECS",
    "GpuSpec",
    "LatencyModel",
    "MODEL_COMPONENT_PROFILES",
    "ModelVariant",
    "ModelZoo",
    "RooflineModel",
    "RooflinePoint",
    "SM_VARIANTS",
    "ac_level_by_skip",
    "arithmetic_intensity",
    "batching_speedup_curve",
    "component_profiles_for",
    "variant_by_name",
]
