"""Per-component FLOP and arithmetic-intensity profiles (Table 3).

The paper breaks each diffusion model into a text encoder, a UNet (invoked
once per denoising step) and a VAE decoder, and reports parameters, size,
FLOPs and arithmetic intensity for each.  These numbers feed the roofline
model (Fig. 15) and the compute-bound argument behind the no-batching design
decision.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentProfile:
    """Performance profile of one component of a diffusion model."""

    model: str
    component: str
    parameters_billion: float
    size_gib: float
    flops_billion: float
    arithmetic_intensity: float
    #: How many times the component runs per generated image.
    invocations_per_image: int = 1

    @property
    def total_flops_billion(self) -> float:
        """FLOPs contributed per image across all invocations."""
        return self.flops_billion * self.invocations_per_image

    @property
    def bytes_moved(self) -> float:
        """Approximate bytes of memory traffic per invocation."""
        if self.arithmetic_intensity <= 0:
            return 0.0
        return self.flops_billion * 1e9 / self.arithmetic_intensity


#: Table 3 of the paper, verbatim (UNet runs once per denoising step).
MODEL_COMPONENT_PROFILES: tuple[ComponentProfile, ...] = (
    ComponentProfile("Tiny-SD", "text_encoder", 0.123, 0.229, 7.208, 29.287),
    ComponentProfile("Tiny-SD", "unet", 0.323, 0.602, 409.334, 632.890, invocations_per_image=50),
    ComponentProfile("Tiny-SD", "vae_decoder", 0.050, 0.092, 2481.078, 25066.363),
    ComponentProfile("Small-SD", "text_encoder", 0.123, 0.229, 7.208, 29.287),
    ComponentProfile("Small-SD", "unet", 0.579, 1.079, 446.639, 385.442, invocations_per_image=50),
    ComponentProfile("Small-SD", "vae_decoder", 0.050, 0.092, 2481.078, 25066.363),
    ComponentProfile("SD-2.0", "text_encoder", 0.340, 0.634, 24.482, 35.962),
    ComponentProfile("SD-2.0", "unet", 0.866, 1.613, 676.668, 390.726, invocations_per_image=50),
    ComponentProfile("SD-2.0", "vae_decoder", 0.050, 0.092, 2481.078, 25066.363),
    ComponentProfile("SD-XL", "text_encoder", 0.123, 0.229, 7.208, 29.287),
    ComponentProfile("SD-XL", "unet", 2.567, 4.782, 11958.197, 2328.796, invocations_per_image=50),
    ComponentProfile("SD-XL", "vae_decoder", 0.050, 0.092, 2481.078, 25066.363),
)


def component_profiles_for(model: str) -> list[ComponentProfile]:
    """Return all component profiles for ``model`` (case-insensitive)."""
    matches = [p for p in MODEL_COMPONENT_PROFILES if p.model.lower() == model.lower()]
    if not matches:
        known = sorted({p.model for p in MODEL_COMPONENT_PROFILES})
        raise KeyError(f"no component profile for model {model!r}; known: {known}")
    return matches


def arithmetic_intensity(model: str) -> float:
    """FLOP-weighted arithmetic intensity of a full image generation."""
    profiles = component_profiles_for(model)
    total_flops = sum(p.total_flops_billion for p in profiles)
    total_bytes = sum(p.bytes_moved * p.invocations_per_image for p in profiles) / 1e9
    if total_bytes == 0:
        return 0.0
    return total_flops / total_bytes


def total_flops_per_image(model: str) -> float:
    """Total billions of FLOPs required to generate one image."""
    return sum(p.total_flops_billion for p in component_profiles_for(model))
